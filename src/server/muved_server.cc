#include "server/muved_server.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <initializer_list>
#include <limits>
#include <thread>
#include <utility>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/logging.h"
#include "common/simd/simd.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/search_options.h"
#include "data/diab.h"
#include "data/nba.h"
#include "data/toy.h"
#include "server/protocol.h"
#include "sql/parser.h"
#include "storage/csv.h"
#include "storage/ingest.h"
#include "storage/predicate.h"

namespace muve::server {

namespace {

using common::Result;
using common::Status;

// ---------------------------------------------------------------------------
// Strict request-field decoding.
//
// Every field is checked for type AND range, unknown fields are
// rejected, and every diagnostic names the offending field — the wire
// mirror of the CLI's flag parsing.  Numbers already passed the shared
// strict parser inside ParseJson; these helpers add the per-field
// semantics.
// ---------------------------------------------------------------------------

Status CheckAllowedFields(const JsonValue& request,
                          std::initializer_list<std::string_view> allowed) {
  for (const auto& [key, value] : request.members()) {
    (void)value;
    bool known = false;
    for (std::string_view name : allowed) {
      if (key == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("unknown request field \"" + key + "\"");
    }
  }
  return Status::OK();
}

// Optional string field; `*out` is left alone when absent.
Status GetString(const JsonValue& request, std::string_view name,
                 std::string* out) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return Status::OK();
  if (!field->is_string()) {
    return Status::InvalidArgument(std::string(name) + ": expected a string");
  }
  *out = field->string_value();
  return Status::OK();
}

// Optional integer field with an inclusive range; `*out` untouched when
// absent.  A double-typed JSON number is rejected: ids, k, and budgets
// must arrive as integers.
Status GetInt64(const JsonValue& request, std::string_view name, int64_t* out,
                int64_t min_value, int64_t max_value) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return Status::OK();
  if (!field->is_int()) {
    return Status::InvalidArgument(std::string(name) +
                                   ": expected an integer");
  }
  const int64_t value = field->int_value();
  if (value < min_value || value > max_value) {
    return Status::InvalidArgument(
        std::string(name) + ": expected an integer in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) +
        "], got " + std::to_string(value));
  }
  *out = value;
  return Status::OK();
}

Status GetDouble(const JsonValue& request, std::string_view name, double* out,
                 double min_value, double max_value) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return Status::OK();
  if (!field->is_number()) {
    return Status::InvalidArgument(std::string(name) + ": expected a number");
  }
  const double value = field->number_value();
  if (!(value >= min_value && value <= max_value)) {
    return Status::InvalidArgument(std::string(name) + ": out of range");
  }
  *out = value;
  return Status::OK();
}

Status GetBool(const JsonValue& request, std::string_view name, bool* out) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return Status::OK();
  if (!field->is_bool()) {
    return Status::InvalidArgument(std::string(name) + ": expected a bool");
  }
  *out = field->bool_value();
  return Status::OK();
}

// Optional "weights": [alpha_D, alpha_A, alpha_S], each in [0, 1].
Status GetWeights(const JsonValue& request, std::string_view name,
                  core::Weights* out, bool* present) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr) return Status::OK();
  if (!field->is_array() || field->array().size() != 3) {
    return Status::InvalidArgument(
        std::string(name) + ": expected an array of 3 numbers [D, A, S]");
  }
  double w[3];
  for (size_t i = 0; i < 3; ++i) {
    const JsonValue& e = field->array()[i];
    if (!e.is_number() || !(e.number_value() >= 0.0) ||
        !(e.number_value() <= 1.0)) {
      return Status::InvalidArgument(std::string(name) +
                                     ": each weight must be in [0, 1]");
    }
    w[i] = e.number_value();
  }
  *out = core::Weights{w[0], w[1], w[2]};
  if (present != nullptr) *present = true;
  return Status::OK();
}

Result<core::SearchOptions> SchemeByName(const std::string& scheme) {
  core::SearchOptions options;
  const std::string lower = common::ToLower(scheme);
  if (lower == "linear-linear") {
    options.horizontal = core::HorizontalStrategy::kLinear;
    options.vertical = core::VerticalStrategy::kLinear;
  } else if (lower == "hc-linear") {
    options.horizontal = core::HorizontalStrategy::kHillClimbing;
    options.vertical = core::VerticalStrategy::kLinear;
  } else if (lower == "muve-linear") {
    options.horizontal = core::HorizontalStrategy::kMuve;
    options.vertical = core::VerticalStrategy::kLinear;
  } else if (lower == "muve-muve") {
    options.horizontal = core::HorizontalStrategy::kMuve;
    options.vertical = core::VerticalStrategy::kMuve;
  } else {
    return Status::InvalidArgument("scheme: unknown \"" + scheme + "\"");
  }
  return options;
}

Result<core::ProbeOrderPolicy> ProbeOrderByName(const std::string& name) {
  const std::string lower = common::ToLower(name);
  if (lower == "priority") return core::ProbeOrderPolicy::kPriorityRule;
  if (lower == "deviation-first") {
    return core::ProbeOrderPolicy::kDeviationFirst;
  }
  if (lower == "accuracy-first") {
    return core::ProbeOrderPolicy::kAccuracyFirst;
  }
  return Status::InvalidArgument("probe_order: unknown \"" + name + "\"");
}

JsonValue SerializeViews(const std::vector<core::ScoredView>& views) {
  JsonValue array = JsonValue::Array();
  for (const core::ScoredView& sv : views) {
    JsonValue v = JsonValue::Object();
    v.Set("dimension", JsonValue::String(sv.view.dimension));
    v.Set("measure", JsonValue::String(sv.view.measure));
    v.Set("function",
          JsonValue::String(storage::AggregateName(sv.view.function)));
    v.Set("bins", JsonValue::Int(sv.bins));
    v.Set("utility", JsonValue::Double(sv.utility));
    v.Set("deviation", JsonValue::Double(sv.deviation));
    v.Set("accuracy", JsonValue::Double(sv.accuracy));
    v.Set("usability", JsonValue::Double(sv.usability));
    array.Append(std::move(v));
  }
  return array;
}

// Deterministic counters only — wall-clock and dispatch-level live in
// the opt-in "timings" block, so the default recommend payload is
// byte-identical across SIMD dispatch levels (for configurations the
// engine itself makes deterministic).
JsonValue SerializeStats(const core::ExecStats& stats) {
  JsonValue s = JsonValue::Object();
  s.Set("rows_scanned", JsonValue::Int(stats.rows_scanned));
  s.Set("build_rows_scanned", JsonValue::Int(stats.build_rows_scanned));
  s.Set("probe_rows_scanned", JsonValue::Int(stats.probe_rows_scanned));
  s.Set("base_builds", JsonValue::Int(stats.base_builds));
  s.Set("base_cache_hits", JsonValue::Int(stats.base_cache_hits));
  s.Set("fused_builds", JsonValue::Int(stats.fused_builds));
  s.Set("fused_coalesced", JsonValue::Int(stats.fused_coalesced));
  s.Set("chunks_skipped", JsonValue::Int(stats.chunks_skipped));
  s.Set("candidates_considered", JsonValue::Int(stats.candidates_considered));
  s.Set("fully_probed", JsonValue::Int(stats.fully_probed));
  s.Set("views_searched", JsonValue::Int(stats.views_searched));
  s.Set("num_workers", JsonValue::Int(stats.num_workers));
  return s;
}

JsonValue SerializeCompleteness(const core::ExecCompleteness& c) {
  JsonValue out = JsonValue::Object();
  out.Set("status", JsonValue::String(common::StatusCodeName(c.status)));
  out.Set("views_fully_searched", JsonValue::Int(c.views_fully_searched));
  out.Set("bins_pruned", JsonValue::Int(c.bins_pruned_by_deadline));
  return out;
}

// Canonical result-cache key: the registry entry's epoch-qualified
// prefix plus every RESOLVED parameter that can shape the response body.
// Session defaults are resolved before this point, so two sessions with
// different spellings of one request share a key.
std::string ResultCacheKey(const std::string& entry_key,
                           const core::SearchOptions& options, int64_t k,
                           int64_t threads) {
  char weights[128];
  std::snprintf(weights, sizeof(weights), "%.17g,%.17g,%.17g",
                options.weights.deviation, options.weights.accuracy,
                options.weights.usability);
  std::string key = entry_key;
  key += '\x01';
  key += options.SchemeName();
  key += '\x01';
  key += std::to_string(k);
  key += '\x01';
  key += weights;
  key += '\x01';
  key += std::to_string(static_cast<int>(options.distance));
  key += '\x01';
  key += std::to_string(static_cast<int>(options.probe_order));
  key += '\x01';
  key += std::to_string(threads);
  return key;
}

// Required array-of-nonempty-strings field (create's dims/measures).
Status GetStringArray(const JsonValue& request, std::string_view name,
                      std::vector<std::string>* out) {
  const JsonValue* field = request.Find(name);
  if (field == nullptr || !field->is_array() || field->array().empty()) {
    return Status::InvalidArgument(std::string(name) +
                                   ": expected a non-empty string array");
  }
  out->clear();
  for (const JsonValue& item : field->array()) {
    if (!item.is_string() || item.string_value().empty()) {
      return Status::InvalidArgument(std::string(name) +
                                     ": expected a non-empty string array");
    }
    out->push_back(item.string_value());
  }
  return Status::OK();
}

// Peak resident set size of this process, in bytes.  VmHWM from
// /proc/self/status where available (Linux), getrusage otherwise.
int64_t PeakRssBytes() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.compare(0, 6, "VmHWM:") == 0) {
      return std::atoll(line.c_str() + 6) * 1024;
    }
  }
  struct rusage usage {};
  if (getrusage(RUSAGE_SELF, &usage) == 0) {
    return static_cast<int64_t>(usage.ru_maxrss) * 1024;
  }
  return 0;
}

}  // namespace

// Per-session protocol state: the session *is* the connection.
struct MuvedServer::Session {
  std::string dataset;    // current dataset ("" until a `use`)
  std::string predicate;  // "" = the dataset's built-in predicate
  int64_t default_k = 5;
  core::Weights default_weights = core::Weights::PaperDefault();
  std::string default_scheme = "muve-muve";
};

struct MuvedServer::Connection {
  int fd = -1;
  std::thread thread;
  std::atomic<bool> done{false};

  // The in-flight request's cancel token, if any; Stop() trips it so a
  // long-deadline search cannot stall shutdown.
  std::mutex cancel_mu;
  std::shared_ptr<common::CancellationToken> active_cancel;

  // The handler thread never close()s the socket itself — it only
  // shutdown()s (FIN) and marks done.  The fd number stays allocated
  // until the owner joins the thread and destroys the Connection, so
  // Stop()'s shutdown(conn->fd) can never hit a recycled descriptor.
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }
};

MuvedServer::MuvedServer(ServerOptions options)
    : options_(std::move(options)) {
  // The built-ins enter the catalog like any created table, carrying
  // their paper workloads as specs.  Table::Clone shares chunks, so the
  // registrations cost O(columns), not O(rows).
  const std::pair<const char*, data::Dataset> builtins[] = {
      {"toy", data::MakeToyDataset()},
      {"nba", data::MakeNbaDataset()},
      {"diab", data::MakeDiabDataset()},
  };
  for (const auto& [name, ds] : builtins) {
    WorkloadSpec spec;
    spec.dimensions = ds.dimensions;
    spec.measures = ds.measures;
    spec.functions = ds.functions;
    spec.categorical_dimensions = ds.categorical_dimensions;
    spec.default_predicate = ds.query_predicate_sql;
    const Status st =
        RegisterDataset(name, ds.table->Clone(), std::move(spec));
    MUVE_CHECK(st.ok()) << st.ToString();
  }
}

Status MuvedServer::RegisterDataset(const std::string& name,
                                    storage::Table table,
                                    WorkloadSpec spec) {
  MUVE_RETURN_IF_ERROR(catalog_.Create(name, std::move(table)));
  std::lock_guard<std::mutex> lock(specs_mu_);
  specs_[name] = std::move(spec);
  return Status::OK();
}

MuvedServer::~MuvedServer() { Stop(); }

Status MuvedServer::Start() {
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::IoError(std::string("socket: ") + std::strerror(errno));
  }
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(options_.port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError("bind 127.0.0.1:" + std::to_string(options_.port) +
                           ": " + std::strerror(err));
  }
  if (::listen(listen_fd_, 64) != 0) {
    const int err = errno;
    ::close(listen_fd_);
    listen_fd_ = -1;
    return Status::IoError(std::string("listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) ==
      0) {
    port_ = ntohs(addr.sin_port);
  }
  started_at_ = std::chrono::steady_clock::now();
  started_ = true;
  accept_thread_ = std::thread([this] { AcceptLoop(); });
  return Status::OK();
}

void MuvedServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      const int err = errno;
      if (stopping_.load(std::memory_order_acquire)) break;
      // A connection aborted between listen and accept is the CLIENT's
      // failure; fd/buffer exhaustion from a burst is transient.  Neither
      // may retire the accept thread — that would leave a daemon that
      // looks alive but can never take another connection.
      if (err == EINTR || err == ECONNABORTED) continue;
      if (err == EMFILE || err == ENFILE || err == ENOBUFS ||
          err == ENOMEM) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
        continue;
      }
      break;  // listen socket gone (EBADF/EINVAL after Stop) or fatal
    }
    if (stopping_.load(std::memory_order_acquire)) {
      ::close(fd);
      break;
    }
    // Chaos site: an injected error here simulates the accept path
    // failing after the kernel handed over a socket (delay simulates a
    // slow accept thread under load).
    switch (MUVE_FAILPOINT("server.accept")) {
      case common::FailpointAction::kError:
      case common::FailpointAction::kOom:
        ::close(fd);
        continue;
      default:
        break;
    }
    {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.connections_accepted;
    }
    int64_t reaped_now = 0;
    bool shed = false;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      // Reap finished handlers so a long-lived daemon doesn't accumulate
      // one dead thread object (and one fd) per past connection.
      for (auto it = conns_.begin(); it != conns_.end();) {
        if ((*it)->done.load(std::memory_order_acquire)) {
          if ((*it)->thread.joinable()) (*it)->thread.join();
          it = conns_.erase(it);
          ++reaped_now;
        } else {
          ++it;
        }
      }
      shed = options_.max_connections > 0 &&
             static_cast<int>(conns_.size()) >= options_.max_connections;
      if (!shed) {
        auto conn = std::make_unique<Connection>();
        conn->fd = fd;
        Connection* raw = conn.get();
        conn->thread = std::thread([this, raw] { HandleConnection(raw); });
        conns_.push_back(std::move(conn));
      }
    }
    if (shed) {
      // Close-after-error: one typed shed frame, then the socket closes.
      // The write is bounded (a hostile connector that never reads must
      // not pin the ONLY accept thread) and best-effort — a peer that
      // missed the frame still sees a prompt close.
      const int shed_write_ms =
          options_.write_timeout_ms > 0 ? options_.write_timeout_ms : 100;
      (void)WriteMessage(
          fd,
          OverloadedResponse(
              Status::Unavailable("overloaded: connection limit reached"),
              RetryAfterHintMs()),
          shed_write_ms);
      ::close(fd);
    }
    if (reaped_now > 0 || shed) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      counters_.connections_reaped += reaped_now;
      if (shed) ++counters_.connections_shed;
    }
  }
}

void MuvedServer::HandleConnection(Connection* conn) {
  Session session;
  const FrameTimeouts timeouts{options_.idle_timeout_ms,
                               options_.frame_timeout_ms};
  // Best-effort close-after-error: one bounded-write error frame before
  // the drop, so a live-but-slow client learns WHY it was cut off.  The
  // bound keeps a hostile never-reading peer from turning its own
  // eviction into a thread pin.
  const int goodbye_write_ms =
      options_.write_timeout_ms > 0 ? options_.write_timeout_ms : 100;
  while (!stopping_.load(std::memory_order_acquire)) {
    // Chaos site: injected error = the read path failing hard (delay =
    // a handler stalled before its read, holding the session open).
    switch (MUVE_FAILPOINT("server.read")) {
      case common::FailpointAction::kError:
      case common::FailpointAction::kOom:
        goto drop;
      default:
        break;
    }
    {
      std::string payload;
      FrameTimeoutKind timeout_kind = FrameTimeoutKind::kNone;
      const Status read_status =
          ReadFrame(conn->fd, &payload, timeouts, &timeout_kind);
      if (!read_status.ok()) {
        if (timeout_kind == FrameTimeoutKind::kIdle) {
          // Silent between frames past idle_timeout_ms: reclaim the
          // session.  The peer was not mid-request, so no error frame is
          // owed — just a prompt FIN.
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.idle_timeouts;
          goto drop;
        }
        if (timeout_kind == FrameTimeoutKind::kMidFrame) {
          // Started a frame but never finished it (slowloris / stalled
          // client): the stream is torn, disconnect within the window.
          {
            std::lock_guard<std::mutex> lock(counters_mu_);
            ++counters_.frame_timeouts;
          }
          (void)WriteMessage(conn->fd, ErrorResponse(read_status),
                             goodbye_write_ms);
          goto drop;
        }
        // kParseError = a malformed frame header (bad length prefix): the
        // stream cannot be resynchronized, so answer with a protocol
        // error and drop the connection — the server itself lives on.
        if (read_status.code() == common::StatusCode::kParseError) {
          (void)WriteMessage(conn->fd, ErrorResponse(read_status),
                             goodbye_write_ms);
        }
        goto drop;  // clean EOF (kNotFound), I/O error, or unsyncable frame
      }
      JsonValue response;
      auto parsed = ParseJson(payload);
      if (!parsed.ok()) {
        // Malformed JSON inside a well-framed payload: the framing is
        // intact, so report the error and KEEP the session alive.
        response = ErrorResponse(parsed.status());
      } else {
        // A throw below (failpoint-injected or a genuine bug) must cost
        // this request, not the whole daemon: the RAII slot guard has
        // already released any admission slot on unwind, so answering
        // `internal` and keeping the session alive is safe.
        try {
          response = Dispatch(*parsed, &session, conn);
        } catch (const std::exception& e) {
          response = ErrorResponse(Status::Internal(
              std::string("unhandled exception in request handler: ") +
              e.what()));
        }
      }
      {
        std::lock_guard<std::mutex> lock(counters_mu_);
        ++counters_.requests_served;
        const JsonValue* ok = response.Find("ok");
        if (ok == nullptr || !ok->is_bool() || !ok->bool_value()) {
          ++counters_.errors_returned;
        }
      }
      // Chaos site: injected error = the response write failing (delay =
      // a slow write path, e.g. a congested peer).
      switch (MUVE_FAILPOINT("server.write")) {
        case common::FailpointAction::kError:
        case common::FailpointAction::kOom:
          goto drop;
        default:
          break;
      }
      const Status write_status =
          WriteMessage(conn->fd, response, options_.write_timeout_ms);
      if (!write_status.ok()) {
        if (write_status.code() == common::StatusCode::kDeadlineExceeded) {
          std::lock_guard<std::mutex> lock(counters_mu_);
          ++counters_.write_timeouts;
        }
        goto drop;
      }
    }
  }
drop:
  ::shutdown(conn->fd, SHUT_RDWR);  // FIN now; the fd closes at reap/Stop
  conn->done.store(true, std::memory_order_release);
}

JsonValue MuvedServer::Dispatch(const JsonValue& request, Session* session,
                                Connection* conn) {
  if (!request.is_object()) {
    return ErrorResponse(
        Status::InvalidArgument("request must be a JSON object"));
  }
  const JsonValue* op = request.Find("op");
  if (op == nullptr || !op->is_string()) {
    return ErrorResponse(
        Status::InvalidArgument("request needs a string \"op\" field"));
  }
  const std::string& name = op->string_value();
  if (name == "ping") return HandlePing(request);
  if (name == "use") return HandleUse(request, session);
  if (name == "defaults") return HandleDefaults(request, session);
  if (name == "recommend") return HandleRecommend(request, session, conn);
  if (name == "health") return HandleHealth(request);
  if (name == "stats") return HandleStats(request);
  if (name == "invalidate") return HandleInvalidate(request);
  if (name == "create") return HandleCreate(request);
  if (name == "append") return HandleAppend(request);
  if (name == "drop") return HandleDrop(request);
  if (name == "shutdown") {
    if (!options_.allow_shutdown_op) {
      return ErrorResponse(
          Status::InvalidArgument("shutdown op disabled on this server"));
    }
    return HandleShutdown(session);
  }
  return ErrorResponse(Status::InvalidArgument("unknown op \"" + name + "\""));
}

JsonValue MuvedServer::HandlePing(const JsonValue& request) {
  if (Status st = CheckAllowedFields(request, {"op"}); !st.ok()) {
    return ErrorResponse(st);
  }
  JsonValue response = OkResponse("pong");
  response.Set("simd",
               JsonValue::String(common::simd::ActiveLevelName()));
  response.Set("max_concurrent", JsonValue::Int(options_.max_concurrent));
  return response;
}

JsonValue MuvedServer::HandleUse(const JsonValue& request, Session* session) {
  if (Status st = CheckAllowedFields(request, {"op", "dataset", "predicate"});
      !st.ok()) {
    return ErrorResponse(st);
  }
  std::string dataset;
  std::string predicate;
  if (Status st = GetString(request, "dataset", &dataset); !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetString(request, "predicate", &predicate); !st.ok()) {
    return ErrorResponse(st);
  }
  if (dataset.empty()) {
    return ErrorResponse(Status::InvalidArgument("use: dataset is required"));
  }
  auto entry = GetRecommender(dataset, predicate);
  if (!entry.ok()) return ErrorResponse(entry.status());
  const core::Recommender& rec = *entry->recommender;
  session->dataset = dataset;
  session->predicate = predicate;
  JsonValue response = OkResponse("use");
  response.Set("dataset", JsonValue::String(dataset));
  response.Set("rows", JsonValue::Int(static_cast<int64_t>(
                           rec.dataset().table->num_rows())));
  response.Set("target_rows", JsonValue::Int(static_cast<int64_t>(
                                  rec.dataset().target_rows.size())));
  response.Set("views", JsonValue::Int(static_cast<int64_t>(
                            rec.space().views().size())));
  response.Set("binned_views", JsonValue::Int(rec.space().TotalBinnedViews()));
  return response;
}

JsonValue MuvedServer::HandleDefaults(const JsonValue& request,
                                      Session* session) {
  if (Status st = CheckAllowedFields(request, {"op", "k", "weights", "scheme"});
      !st.ok()) {
    return ErrorResponse(st);
  }
  int64_t k = session->default_k;
  core::Weights weights = session->default_weights;
  std::string scheme = session->default_scheme;
  if (Status st = GetInt64(request, "k", &k, 1, 1000000); !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetWeights(request, "weights", &weights, nullptr);
      !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetString(request, "scheme", &scheme); !st.ok()) {
    return ErrorResponse(st);
  }
  if (auto probe = SchemeByName(scheme); !probe.ok()) {
    return ErrorResponse(probe.status());
  }
  session->default_k = k;
  session->default_weights = weights;
  session->default_scheme = scheme;
  JsonValue response = OkResponse("defaults");
  response.Set("k", JsonValue::Int(k));
  JsonValue w = JsonValue::Array();
  w.Append(JsonValue::Double(weights.deviation));
  w.Append(JsonValue::Double(weights.accuracy));
  w.Append(JsonValue::Double(weights.usability));
  response.Set("weights", std::move(w));
  response.Set("scheme", JsonValue::String(common::ToLower(scheme)));
  return response;
}

JsonValue MuvedServer::HandleRecommend(const JsonValue& request,
                                       Session* session, Connection* conn) {
  // Starts at decode so time spent parsing, building a cold recommender,
  // and above all WAITING AT THE ADMISSION GATE is charged against the
  // request's own deadline — a request that queued its whole budget away
  // executes with none left and degrades immediately, instead of running
  // a full search its client has already given up on.
  common::Stopwatch request_timer;
  if (Status st = CheckAllowedFields(
          request, {"op", "dataset", "predicate", "scheme", "k", "weights",
                    "distance", "probe_order", "deadline_ms", "max_rows",
                    "threads", "include_timings"});
      !st.ok()) {
    return ErrorResponse(st);
  }
  std::string dataset = session->dataset;
  std::string predicate = session->predicate;
  std::string scheme = session->default_scheme;
  if (Status st = GetString(request, "dataset", &dataset); !st.ok()) {
    return ErrorResponse(st);
  }
  if (request.Find("dataset") != nullptr) {
    // An explicit dataset resets the predicate unless one rides along.
    predicate.clear();
  }
  if (Status st = GetString(request, "predicate", &predicate); !st.ok()) {
    return ErrorResponse(st);
  }
  if (dataset.empty()) {
    return ErrorResponse(Status::InvalidArgument(
        "recommend: no dataset (send {\"op\":\"use\",...} first or pass "
        "\"dataset\")"));
  }
  if (Status st = GetString(request, "scheme", &scheme); !st.ok()) {
    return ErrorResponse(st);
  }
  auto options = SchemeByName(scheme);
  if (!options.ok()) return ErrorResponse(options.status());

  options->weights = session->default_weights;
  if (Status st = GetWeights(request, "weights", &options->weights, nullptr);
      !st.ok()) {
    return ErrorResponse(st);
  }
  int64_t k = session->default_k;
  if (Status st = GetInt64(request, "k", &k, 1, 1000000); !st.ok()) {
    return ErrorResponse(st);
  }
  options->k = static_cast<int>(k);

  std::string distance;
  if (Status st = GetString(request, "distance", &distance); !st.ok()) {
    return ErrorResponse(st);
  }
  if (!distance.empty()) {
    auto kind = core::DistanceKindFromName(distance);
    if (!kind.ok()) return ErrorResponse(kind.status());
    options->distance = *kind;
  }
  std::string probe_order;
  if (Status st = GetString(request, "probe_order", &probe_order); !st.ok()) {
    return ErrorResponse(st);
  }
  if (!probe_order.empty()) {
    auto policy = ProbeOrderByName(probe_order);
    if (!policy.ok()) return ErrorResponse(policy.status());
    options->probe_order = *policy;
  }
  double deadline_ms = -1.0;
  if (Status st = GetDouble(request, "deadline_ms", &deadline_ms, 0.0, 1e12);
      !st.ok()) {
    return ErrorResponse(st);
  }
  options->deadline_ms = deadline_ms;
  int64_t max_rows = 0;
  if (Status st = GetInt64(request, "max_rows", &max_rows, 0,
                           std::numeric_limits<int64_t>::max());
      !st.ok()) {
    return ErrorResponse(st);
  }
  options->max_rows_scanned = max_rows;
  int64_t threads = 1;
  if (Status st = GetInt64(request, "threads", &threads, 1,
                           options_.max_request_threads);
      !st.ok()) {
    return ErrorResponse(st);
  }
  options->num_threads = static_cast<int>(threads);
  bool include_timings = false;
  if (Status st = GetBool(request, "include_timings", &include_timings);
      !st.ok()) {
    return ErrorResponse(st);
  }

  auto entry = GetRecommender(dataset, predicate);
  if (!entry.ok()) return ErrorResponse(entry.status());

  // Result cache: only unbounded, timing-free requests participate — a
  // deadline or row budget makes the response depend on wall-clock, and
  // a timings block is wall-clock by definition.  A hit re-serializes
  // the FIRST response's JsonValue through the canonical writer, so the
  // wire bytes are identical, and skips admission entirely (it costs no
  // execution slot).
  const bool cacheable = options_.enable_result_cache && deadline_ms < 0.0 &&
                         max_rows == 0 && !include_timings;
  std::string result_key;
  if (cacheable) {
    result_key = ResultCacheKey(entry->key, *options, k, threads);
    JsonValue cached;
    if (LookupResult(result_key, &cached)) {
      std::lock_guard<std::mutex> lock(counters_mu_);
      ++counters_.result_cache_hits;
      return cached;
    }
  }

  // Cross-request base-histogram sharing: every request on this registry
  // entry probes identical row sets, so they may share one store.
  if (options_.enable_shared_base_cache) {
    options->shared_base_cache = entry->base_cache;
  }

  // Bounded, deadline-aware admission (DESIGN.md §14).  The remaining
  // budget is what is left of deadline_ms after decode/registry work; a
  // request with none left that would have to queue is shed typed.
  const double remaining_ms =
      deadline_ms < 0.0
          ? -1.0
          : std::max(0.0, deadline_ms - request_timer.ElapsedMillis());
  double queue_ms = 0.0;
  int64_t queue_depth = 0;
  switch (AdmitRequest(remaining_ms, &queue_ms, &queue_depth)) {
    case Admission::kAdmitted:
      break;
    case Admission::kRejectedStopping:
      return ErrorResponse(
          Status::Cancelled("server is shutting down; request not admitted"));
    case Admission::kShedQueueFull:
      return OverloadedResponse(
          Status::Unavailable("overloaded: admission queue is full"),
          RetryAfterHintMs());
    case Admission::kShedDeadline:
      return OverloadedResponse(
          Status::Unavailable(
              "overloaded: request deadline already spent before admission"),
          RetryAfterHintMs());
    case Admission::kShedQueueTimeout:
      return OverloadedResponse(
          Status::Unavailable(
              "overloaded: no execution slot freed within queue timeout"),
          RetryAfterHintMs());
  }

  // Admitted.  Re-charge the wait against the deadline so the engine
  // sees only what the client has left, and hold the slot through an
  // RAII guard — a throw anywhere below (failpoint-injected or real)
  // releases it on unwind instead of wedging the gate one slot smaller
  // forever.
  if (options->deadline_ms >= 0.0) {
    options->deadline_ms =
        std::max(0.0, deadline_ms - request_timer.ElapsedMillis());
  }

  // Shutdown must not wait out a long deadline: every in-flight request
  // carries a token Stop() can trip.
  auto cancel = std::make_shared<common::CancellationToken>();
  options->cancel_token = cancel;
  {
    std::lock_guard<std::mutex> lock(conn->cancel_mu);
    conn->active_cancel = cancel;
  }

  common::Result<core::Recommendation> rec =
      Status::Internal("recommend did not run");
  double exec_ms = 0.0;
  {
    SlotGuard slot(this);
    // Deterministic unwind path: armed with throw, this exercises
    // exactly the leak the RAII guard exists to prevent (the engine
    // catches its own worker throws, so nothing else reaches here).
    switch (MUVE_FAILPOINT("server.recommend")) {
      case common::FailpointAction::kThrow:
        throw common::FailpointError("server.recommend");
      case common::FailpointAction::kError:
        rec = Status::Internal("failpoint server.recommend");
        break;
      default: {
        common::Stopwatch exec_timer;
        rec = entry->recommender->Recommend(*options);
        exec_ms = exec_timer.ElapsedMillis();
        break;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(conn->cancel_mu);
    conn->active_cancel.reset();
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.recommends_executed;
  }
  if (!rec.ok()) return ErrorResponse(rec.status());
  rec->stats.queue_ms = queue_ms;
  rec->stats.queue_depth_on_admit = queue_depth;

  JsonValue response = OkResponse("recommend");
  response.Set("dataset", JsonValue::String(dataset));
  response.Set("scheme", JsonValue::String(rec->scheme));
  response.Set("k", JsonValue::Int(k));
  response.Set("degraded",
               JsonValue::Bool(rec->stats.completeness.degraded));
  response.Set("completeness", SerializeCompleteness(rec->stats.completeness));
  response.Set("views", SerializeViews(rec->views));
  response.Set("stats", SerializeStats(rec->stats));
  // Store before the (never-cached) timings block would be attached.  A
  // degraded response is excluded belt-and-braces: unbounded runs only
  // degrade when shutdown cancellation catches them mid-flight, and that
  // partial top-k must not outlive the shutdown that caused it.
  if (cacheable && !rec->stats.completeness.degraded) {
    StoreResult(result_key, response);
  }
  if (include_timings) {
    JsonValue timings = JsonValue::Object();
    timings.Set("queue_ms", JsonValue::Double(queue_ms));
    timings.Set("queue_depth", JsonValue::Int(queue_depth));
    timings.Set("exec_ms", JsonValue::Double(exec_ms));
    timings.Set("cost_ms", JsonValue::Double(rec->stats.TotalCostMillis()));
    timings.Set("simd", JsonValue::String(rec->stats.simd_dispatch));
    response.Set("timings", std::move(timings));
  }
  return response;
}

JsonValue MuvedServer::HandleShutdown(Session* session) {
  (void)session;
  RequestStop();
  return OkResponse("shutdown");
}

Result<MuvedServer::RegistryEntry> MuvedServer::GetRecommender(
    const std::string& dataset, const std::string& predicate) {
  // Resolve the table FIRST, so the diagnostic for an unknown name
  // matches what a predicate-free request would get.
  MUVE_ASSIGN_OR_RETURN(const storage::Catalog::Snapshot snap,
                        catalog_.Get(dataset));
  WorkloadSpec spec;
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    spec = specs_.at(dataset);  // Create/Drop keep specs_ in step
  }
  // Canonicalize the predicate: registry, selection cache and result
  // cache all key on the canonical form under the table's current
  // data_epoch, so operand-permuted spellings of one WHERE clause share
  // a recommender and its caches.  "" (the table's default workload)
  // keys as the empty canonical.
  std::string canonical;
  sql::SelectStatement stmt;
  if (!predicate.empty()) {
    MUVE_ASSIGN_OR_RETURN(
        stmt, sql::ParseSelect("SELECT * FROM t WHERE " + predicate));
    canonical = storage::CanonicalPredicateKey(*stmt.where);
  }
  const std::string key = dataset + '\x01' +
                          std::to_string(snap.data_epoch) + '\x01' +
                          canonical;
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (const RegistryEntry& entry : registry_) {
      if (entry.key == key) return entry;
    }
  }
  // Build outside the registry lock: a cold build must not block a
  // concurrent session's cache hit on another dataset.  Two sessions
  // racing the same cold key both build; first insert wins and the loser
  // adopts it.
  const std::string effective_predicate =
      predicate.empty() ? spec.default_predicate : predicate;
  if (effective_predicate.empty()) {
    return Status::InvalidArgument(
        "table '" + dataset +
        "' has no default predicate; pass \"predicate\"");
  }
  data::Dataset base;
  base.name = dataset;
  base.table = snap.table;
  base.dimensions = spec.dimensions;
  base.measures = spec.measures;
  base.functions = spec.functions;
  base.categorical_dimensions = spec.categorical_dimensions;
  base.query_predicate_sql = effective_predicate;
  sql::SelectStatement bound;
  if (predicate.empty()) {
    MUVE_ASSIGN_OR_RETURN(bound, sql::ParseSelect("SELECT * FROM t WHERE " +
                                                  effective_predicate));
  } else {
    bound = std::move(stmt);
  }
  const int64_t rows_total = static_cast<int64_t>(base.table->num_rows());
  {
    common::Stopwatch setup_timer;
    std::shared_ptr<const storage::RowSet> cached;
    if (options_.enable_selection_cache) cached = selection_cache_.Get(key);
    if (cached != nullptr) {
      base.target_rows = *cached;
    } else {
      storage::FilterStats filter_stats;
      MUVE_ASSIGN_OR_RETURN(
          base.target_rows,
          storage::Filter(*base.table, bound.where.get(), nullptr,
                          &filter_stats));
      base.chunks_skipped = filter_stats.chunks_skipped;
      if (options_.enable_selection_cache && !base.target_rows.empty()) {
        selection_cache_.Put(key, std::make_shared<const storage::RowSet>(
                                      base.target_rows));
      }
    }
    if (base.target_rows.empty()) {
      return Status::InvalidArgument("predicate selects no rows: " +
                                     effective_predicate);
    }
    base.all_rows = storage::AllRows(base.table->num_rows());
    base.predicate_rows_filtered =
        rows_total - static_cast<int64_t>(base.target_rows.size());
    base.setup_time_ms = setup_timer.ElapsedMillis();
  }
  if (!predicate.empty()) base.name += " WHERE " + predicate;
  MUVE_ASSIGN_OR_RETURN(core::Recommender built,
                        core::Recommender::Create(std::move(base)));
  RegistryEntry entry;
  entry.key = key;
  entry.dataset = dataset;
  entry.recommender =
      std::make_shared<const core::Recommender>(std::move(built));
  // The base cache is keyed under base_epoch, NOT data_epoch: appends
  // bump data_epoch (new registry entry, new selection/result keys) but
  // preserve base_epoch, so the rebuilt entry adopts the same store —
  // whose histograms the append path has already delta-patched.
  entry.base_cache = GetOrCreateBaseCache(dataset, snap.base_epoch,
                                          canonical, effective_predicate);
  std::lock_guard<std::mutex> lock(registry_mu_);
  for (const RegistryEntry& existing : registry_) {
    if (existing.key == key) return existing;  // lost the race; adopt
  }
  registry_.push_back(entry);
  if (registry_.size() > options_.max_recommenders) {
    registry_.erase(registry_.begin());  // oldest first
  }
  return entry;
}

std::shared_ptr<storage::BaseHistogramCache> MuvedServer::GetOrCreateBaseCache(
    const std::string& dataset, uint64_t base_epoch,
    const std::string& canonical, const std::string& predicate_sql) {
  const std::string key =
      dataset + '\x01' + std::to_string(base_epoch) + '\x01' + canonical;
  std::lock_guard<std::mutex> lock(base_caches_mu_);
  auto it = base_caches_.find(key);
  if (it != base_caches_.end()) return it->second.cache;
  SharedBaseCache shared;
  shared.cache = std::make_shared<storage::BaseHistogramCache>();
  shared.dataset = dataset;
  shared.predicate_sql = predicate_sql;
  auto cache = shared.cache;
  base_caches_.emplace(key, std::move(shared));
  return cache;
}

bool MuvedServer::LookupResult(const std::string& key, JsonValue* response) {
  std::lock_guard<std::mutex> lock(results_mu_);
  auto it = results_.find(key);
  if (it == results_.end()) return false;
  results_lru_.splice(results_lru_.begin(), results_lru_, it->second.lru_it);
  *response = it->second.response;
  return true;
}

void MuvedServer::StoreResult(const std::string& key,
                              const JsonValue& response) {
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    auto it = results_.find(key);
    if (it != results_.end()) return;  // first store wins; racers agree anyway
    results_lru_.push_front(key);
    results_.emplace(key, ResultEntry{response, results_lru_.begin()});
    while (results_.size() > options_.result_cache_entries) {
      results_.erase(results_lru_.back());
      results_lru_.pop_back();
    }
  }
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.result_cache_stores;
}

JsonValue MuvedServer::HandleHealth(const JsonValue& request) {
  if (Status st = CheckAllowedFields(request, {"op"}); !st.ok()) {
    return ErrorResponse(st);
  }
  // Deliberately gate-free: health never touches the admission gate's
  // condition variable, so it answers instantly even when every
  // execution slot is busy and the queue is full — exactly when an
  // operator most needs to see the numbers below.
  JsonValue response = OkResponse("health");
  response.Set("uptime_ms", JsonValue::Int(UptimeMs()));
  response.Set("stopping",
               JsonValue::Bool(stopping_.load(std::memory_order_acquire)));
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    response.Set("in_flight", JsonValue::Int(in_flight_));
    response.Set("queue_depth", JsonValue::Int(queued_));
  }
  response.Set("max_concurrent", JsonValue::Int(options_.max_concurrent));
  response.Set("max_queue", JsonValue::Int(options_.max_queue));
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    response.Set("connections_live",
                 JsonValue::Int(static_cast<int64_t>(conns_.size())));
  }
  return response;
}

JsonValue MuvedServer::HandleStats(const JsonValue& request) {
  if (Status st = CheckAllowedFields(request, {"op"}); !st.ok()) {
    return ErrorResponse(st);
  }
  JsonValue response = OkResponse("stats");
  response.Set("uptime_ms", JsonValue::Int(UptimeMs()));
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    response.Set("connections_accepted",
                 JsonValue::Int(counters_.connections_accepted));
    response.Set("requests_served", JsonValue::Int(counters_.requests_served));
    response.Set("errors_returned", JsonValue::Int(counters_.errors_returned));
    response.Set("recommends_executed",
                 JsonValue::Int(counters_.recommends_executed));
    response.Set("result_cache_hits",
                 JsonValue::Int(counters_.result_cache_hits));
    response.Set("result_cache_stores",
                 JsonValue::Int(counters_.result_cache_stores));
    JsonValue admission = JsonValue::Object();
    admission.Set("offered", JsonValue::Int(counters_.requests_offered));
    admission.Set("admitted", JsonValue::Int(counters_.requests_admitted));
    admission.Set("shed_queue_full",
                  JsonValue::Int(counters_.requests_shed_queue_full));
    admission.Set("shed_timeout",
                  JsonValue::Int(counters_.requests_shed_timeout));
    admission.Set("shed_deadline",
                  JsonValue::Int(counters_.requests_shed_deadline));
    admission.Set("rejected_stopping",
                  JsonValue::Int(counters_.requests_rejected_stopping));
    admission.Set("queue_peak_depth",
                  JsonValue::Int(counters_.queue_peak_depth));
    response.Set("admission", std::move(admission));
    JsonValue conns = JsonValue::Object();
    conns.Set("shed", JsonValue::Int(counters_.connections_shed));
    conns.Set("reaped", JsonValue::Int(counters_.connections_reaped));
    conns.Set("idle_timeouts", JsonValue::Int(counters_.idle_timeouts));
    conns.Set("frame_timeouts", JsonValue::Int(counters_.frame_timeouts));
    conns.Set("write_timeouts", JsonValue::Int(counters_.write_timeouts));
    response.Set("connections", std::move(conns));
    JsonValue ingest = JsonValue::Object();
    ingest.Set("tables_created", JsonValue::Int(counters_.tables_created));
    ingest.Set("tables_dropped", JsonValue::Int(counters_.tables_dropped));
    ingest.Set("appends", JsonValue::Int(counters_.appends_executed));
    ingest.Set("rows_ingested", JsonValue::Int(counters_.rows_ingested));
    ingest.Set("delta_merges", JsonValue::Int(counters_.delta_merges));
    ingest.Set("chunks_skipped",
               JsonValue::Int(counters_.ingest_chunks_skipped));
    response.Set("ingest", std::move(ingest));
  }
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    response.Set("in_flight", JsonValue::Int(in_flight_));
    response.Set("queue_depth", JsonValue::Int(queued_));
  }
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    response.Set("connections_live",
                 JsonValue::Int(static_cast<int64_t>(conns_.size())));
  }
  {
    const storage::SelectionCache::Stats sel = selection_cache_.TotalStats();
    JsonValue s = JsonValue::Object();
    s.Set("lookups", JsonValue::Int(sel.lookups));
    s.Set("hits", JsonValue::Int(sel.hits));
    s.Set("misses", JsonValue::Int(sel.misses));
    s.Set("insertions", JsonValue::Int(sel.insertions));
    s.Set("evictions", JsonValue::Int(sel.evictions));
    s.Set("bytes", JsonValue::Int(sel.bytes));
    response.Set("selection_cache", std::move(s));
  }
  {
    // Aggregate across every resident registry entry's shared store.
    storage::BaseHistogramCache::CacheStats total;
    {
      std::lock_guard<std::mutex> lock(registry_mu_);
      for (const RegistryEntry& entry : registry_) {
        const auto s = entry.base_cache->TotalStats();
        total.lookups += s.lookups;
        total.hits += s.hits;
        total.misses += s.misses;
        total.builds += s.builds;
        total.evictions += s.evictions;
        total.bytes += s.bytes;
      }
    }
    JsonValue b = JsonValue::Object();
    b.Set("lookups", JsonValue::Int(total.lookups));
    b.Set("hits", JsonValue::Int(total.hits));
    b.Set("misses", JsonValue::Int(total.misses));
    b.Set("builds", JsonValue::Int(total.builds));
    b.Set("evictions", JsonValue::Int(total.evictions));
    b.Set("bytes", JsonValue::Int(total.bytes));
    response.Set("base_cache", std::move(b));
  }
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    response.Set("result_cache_entries",
                 JsonValue::Int(static_cast<int64_t>(results_.size())));
  }
  {
    // Per-table residency: rows, epochs, and an estimate of the chunk
    // storage each table pins (Table::ApproxBytes over its snapshot),
    // plus the process's peak RSS for the operator's capacity picture.
    JsonValue tables = JsonValue::Object();
    int64_t resident_total = 0;
    for (const std::string& name : catalog_.List()) {
      auto snap = catalog_.Get(name);
      if (!snap.ok()) continue;  // racing drop
      const int64_t bytes =
          static_cast<int64_t>(snap->table->ApproxBytes());
      resident_total += bytes;
      JsonValue t = JsonValue::Object();
      t.Set("rows", JsonValue::Int(
                        static_cast<int64_t>(snap->table->num_rows())));
      t.Set("data_epoch",
            JsonValue::Int(static_cast<int64_t>(snap->data_epoch)));
      t.Set("resident_bytes", JsonValue::Int(bytes));
      tables.Set(name, std::move(t));
    }
    response.Set("tables", std::move(tables));
    JsonValue memory = JsonValue::Object();
    memory.Set("peak_rss_bytes", JsonValue::Int(PeakRssBytes()));
    memory.Set("tables_resident_bytes", JsonValue::Int(resident_total));
    response.Set("memory", std::move(memory));
  }
  return response;
}

void MuvedServer::PurgeDataset(const std::string& dataset, bool keep_bases) {
  const std::string prefix = dataset + '\x01';
  {
    std::lock_guard<std::mutex> lock(registry_mu_);
    for (auto it = registry_.begin(); it != registry_.end();) {
      if (it->dataset == dataset) {
        it = registry_.erase(it);
      } else {
        ++it;
      }
    }
  }
  {
    std::lock_guard<std::mutex> lock(results_mu_);
    for (auto it = results_.begin(); it != results_.end();) {
      if (it->first.compare(0, prefix.size(), prefix) == 0) {
        results_lru_.erase(it->second.lru_it);
        it = results_.erase(it);
      } else {
        ++it;
      }
    }
  }
  if (!keep_bases) {
    std::lock_guard<std::mutex> lock(base_caches_mu_);
    for (auto it = base_caches_.begin(); it != base_caches_.end();) {
      if (it->second.dataset == dataset) {
        it = base_caches_.erase(it);
      } else {
        ++it;
      }
    }
  }
}

JsonValue MuvedServer::HandleInvalidate(const JsonValue& request) {
  if (Status st = CheckAllowedFields(request, {"op", "dataset"}); !st.ok()) {
    return ErrorResponse(st);
  }
  std::string dataset;
  if (Status st = GetString(request, "dataset", &dataset); !st.ok()) {
    return ErrorResponse(st);
  }
  // Bump the epochs FIRST: from here on, no new request can key into the
  // old generation.  Then drop what is resident — in-flight requests
  // holding old shared_ptrs finish safely on the old snapshot; their
  // results are stored (if at all) under the old epochs' keys, which are
  // now unreachable and age out of the LRU.  Unlike append, invalidate
  // refreshes base_epoch too, so even the delta-patchable base
  // histograms are discarded.
  auto bumped = catalog_.Invalidate(dataset);
  if (!bumped.ok()) return ErrorResponse(bumped.status());
  PurgeDataset(dataset, /*keep_bases=*/false);
  JsonValue response = OkResponse("invalidate");
  response.Set("dataset", JsonValue::String(dataset));
  response.Set("epoch",
               JsonValue::Int(static_cast<int64_t>(bumped->data_epoch)));
  return response;
}

JsonValue MuvedServer::HandleCreate(const JsonValue& request) {
  if (Status st = CheckAllowedFields(
          request, {"op", "table", "csv", "dims", "measures", "predicate"});
      !st.ok()) {
    return ErrorResponse(st);
  }
  std::string table_name;
  std::string csv;
  std::string predicate;
  if (Status st = GetString(request, "table", &table_name); !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetString(request, "csv", &csv); !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetString(request, "predicate", &predicate); !st.ok()) {
    return ErrorResponse(st);
  }
  if (table_name.empty()) {
    return ErrorResponse(Status::InvalidArgument("create: table is required"));
  }
  if (csv.empty()) {
    return ErrorResponse(Status::InvalidArgument("create: csv is required"));
  }
  WorkloadSpec spec;
  if (Status st = GetStringArray(request, "dims", &spec.dimensions);
      !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetStringArray(request, "measures", &spec.measures);
      !st.ok()) {
    return ErrorResponse(st);
  }
  spec.functions = {storage::AggregateFunction::kSum,
                    storage::AggregateFunction::kAvg};
  spec.default_predicate = predicate;
  // Validate the default predicate's syntax now, at create time — a
  // typo must not surface only on the first recommend.
  if (!predicate.empty()) {
    auto parsed = sql::ParseSelect("SELECT * FROM t WHERE " + predicate);
    if (!parsed.ok()) return ErrorResponse(parsed.status());
  }
  auto parsed_table = storage::ReadCsvString(csv);
  if (!parsed_table.ok()) return ErrorResponse(parsed_table.status());
  // Dimensions and measures must name numeric columns: views bin
  // dimensions and aggregate measure moments.
  for (const std::string& dim : spec.dimensions) {
    auto col = parsed_table->ColumnByName(dim);
    if (!col.ok()) return ErrorResponse(col.status());
    if ((*col)->type() == storage::ValueType::kString) {
      return ErrorResponse(Status::InvalidArgument(
          "dims: column '" + dim + "' is a string column"));
    }
  }
  for (const std::string& mea : spec.measures) {
    auto col = parsed_table->ColumnByName(mea);
    if (!col.ok()) return ErrorResponse(col.status());
    if ((*col)->type() == storage::ValueType::kString) {
      return ErrorResponse(Status::InvalidArgument(
          "measures: column '" + mea + "' is a string column"));
    }
  }
  const int64_t rows = static_cast<int64_t>(parsed_table->num_rows());
  const int64_t cols = static_cast<int64_t>(parsed_table->num_columns());
  if (Status st = RegisterDataset(table_name, std::move(*parsed_table),
                                  std::move(spec));
      !st.ok()) {
    return ErrorResponse(st);
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.tables_created;
  }
  JsonValue response = OkResponse("create");
  response.Set("table", JsonValue::String(table_name));
  response.Set("rows", JsonValue::Int(rows));
  response.Set("columns", JsonValue::Int(cols));
  response.Set("data_epoch", JsonValue::Int(1));
  return response;
}

JsonValue MuvedServer::HandleAppend(const JsonValue& request) {
  if (Status st = CheckAllowedFields(request, {"op", "table", "csv"});
      !st.ok()) {
    return ErrorResponse(st);
  }
  std::string table_name;
  std::string csv;
  if (Status st = GetString(request, "table", &table_name); !st.ok()) {
    return ErrorResponse(st);
  }
  if (Status st = GetString(request, "csv", &csv); !st.ok()) {
    return ErrorResponse(st);
  }
  if (table_name.empty()) {
    return ErrorResponse(Status::InvalidArgument("append: table is required"));
  }
  if (csv.empty()) {
    return ErrorResponse(Status::InvalidArgument("append: csv is required"));
  }
  // One append at a time server-wide: the catalog publish and the
  // delta-patch below form one unit, so patches land in publish order
  // and the rebuild-vs-delta association stays deterministic.
  std::lock_guard<std::mutex> ingest_lock(ingest_mu_);
  auto snap = catalog_.Get(table_name);
  if (!snap.ok()) return ErrorResponse(snap.status());
  // The appended rows must arrive under the table's own schema — header
  // names and cell types are enforced, not re-inferred.
  storage::CsvOptions csv_options;
  csv_options.schema = snap->table->schema();
  auto rows = storage::ReadCsvString(csv, csv_options);
  if (!rows.ok()) return ErrorResponse(rows.status());
  if (rows->num_rows() == 0) {
    return ErrorResponse(Status::InvalidArgument("append: csv has no rows"));
  }
  auto result = catalog_.Append(table_name, *rows);
  if (!result.ok()) return ErrorResponse(result.status());
  // data_epoch-keyed state (registry snapshots, selection vectors,
  // cached results) is stale; base caches stay — they are about to be
  // patched in place under the preserved base_epoch.
  PurgeDataset(table_name, /*keep_bases=*/true);

  WorkloadSpec spec;
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    auto it = specs_.find(table_name);
    // A racing drop between the append and here leaves nothing to
    // patch; the appended version is orphaned along with the table.
    if (it == specs_.end()) {
      JsonValue response = OkResponse("append");
      response.Set("table", JsonValue::String(table_name));
      response.Set("rows_appended", JsonValue::Int(static_cast<int64_t>(
                                        result->rows_appended)));
      return response;
    }
    spec = it->second;
  }
  std::vector<std::pair<std::string, SharedBaseCache>> targets;
  {
    std::lock_guard<std::mutex> lock(base_caches_mu_);
    for (const auto& [key, shared] : base_caches_) {
      if (shared.dataset == table_name) targets.emplace_back(key, shared);
    }
  }
  storage::IngestDeltaStats ingest_stats;
  std::vector<std::string> failed;
  for (const auto& [key, shared] : targets) {
    sql::SelectStatement stmt;
    storage::IngestDeltaRequest delta;
    delta.table = result->snapshot.table.get();
    delta.rows_before = result->rows_before;
    delta.rows_appended = result->rows_appended;
    delta.dimensions = spec.dimensions;
    delta.measures = spec.measures;
    if (!shared.predicate_sql.empty()) {
      auto parsed =
          sql::ParseSelect("SELECT * FROM t WHERE " + shared.predicate_sql);
      if (!parsed.ok() ||
          !parsed->where->Bind(result->snapshot.table->schema()).ok()) {
        failed.push_back(key);
        continue;
      }
      stmt = std::move(*parsed);
      delta.target_predicate = stmt.where.get();
    }
    delta.cache = shared.cache.get();
    if (!storage::ApplyAppendDeltas(delta, &ingest_stats).ok()) {
      // The cache may now mix patched and unpatched entries; drop it
      // wholesale — the next recommend rebuilds cold and correct.
      failed.push_back(key);
    }
  }
  if (!failed.empty()) {
    std::lock_guard<std::mutex> lock(base_caches_mu_);
    for (const std::string& key : failed) base_caches_.erase(key);
  }
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.appends_executed;
    counters_.rows_ingested +=
        static_cast<int64_t>(result->rows_appended);
    counters_.delta_merges += ingest_stats.delta_merges;
    counters_.ingest_chunks_skipped += ingest_stats.chunks_skipped;
  }
  JsonValue response = OkResponse("append");
  response.Set("table", JsonValue::String(table_name));
  response.Set("rows_appended", JsonValue::Int(static_cast<int64_t>(
                                    result->rows_appended)));
  response.Set("rows_total",
               JsonValue::Int(static_cast<int64_t>(
                   result->snapshot.table->num_rows())));
  response.Set("data_epoch", JsonValue::Int(static_cast<int64_t>(
                                 result->snapshot.data_epoch)));
  response.Set("delta_merges", JsonValue::Int(ingest_stats.delta_merges));
  response.Set("ingest_rows", JsonValue::Int(ingest_stats.rows_scanned));
  response.Set("chunks_skipped",
               JsonValue::Int(ingest_stats.chunks_skipped));
  return response;
}

JsonValue MuvedServer::HandleDrop(const JsonValue& request) {
  if (Status st = CheckAllowedFields(request, {"op", "table"}); !st.ok()) {
    return ErrorResponse(st);
  }
  std::string table_name;
  if (Status st = GetString(request, "table", &table_name); !st.ok()) {
    return ErrorResponse(st);
  }
  if (table_name.empty()) {
    return ErrorResponse(Status::InvalidArgument("drop: table is required"));
  }
  if (Status st = catalog_.Drop(table_name); !st.ok()) {
    return ErrorResponse(st);
  }
  {
    std::lock_guard<std::mutex> lock(specs_mu_);
    specs_.erase(table_name);
  }
  PurgeDataset(table_name, /*keep_bases=*/false);
  {
    std::lock_guard<std::mutex> lock(counters_mu_);
    ++counters_.tables_dropped;
  }
  JsonValue response = OkResponse("drop");
  response.Set("table", JsonValue::String(table_name));
  return response;
}

MuvedServer::Admission MuvedServer::AdmitRequest(double remaining_deadline_ms,
                                                 double* queue_ms,
                                                 int64_t* queue_depth) {
  common::Stopwatch timer;
  Admission outcome;
  {
    std::unique_lock<std::mutex> lock(gate_mu_);
    const auto admit = [&]() -> Admission {
      if (stopping_.load(std::memory_order_acquire)) {
        return Admission::kRejectedStopping;
      }
      if (in_flight_ < options_.max_concurrent) {
        ++in_flight_;
        *queue_ms = timer.ElapsedMillis();
        *queue_depth = queued_;
        return Admission::kAdmitted;
      }
      // All slots busy: the request would have to queue.  Shed NOW when
      // queuing cannot end well — no waiting room left, or the request's
      // own deadline is already spent (it would only expire further in
      // line; the client should back off and retry instead).
      if (queued_ >= options_.max_queue) return Admission::kShedQueueFull;
      const bool bounded = remaining_deadline_ms >= 0.0;
      if (bounded && remaining_deadline_ms == 0.0) {
        return Admission::kShedDeadline;
      }
      ++queued_;
      {
        std::lock_guard<std::mutex> clock(counters_mu_);
        if (queued_ > counters_.queue_peak_depth) {
          counters_.queue_peak_depth = queued_;
        }
      }
      const auto slot_free = [this] {
        return stopping_.load(std::memory_order_acquire) ||
               in_flight_ < options_.max_concurrent;
      };
      bool woke = true;
      if (options_.queue_timeout_ms > 0) {
        woke = gate_cv_.wait_for(
            lock, std::chrono::milliseconds(options_.queue_timeout_ms),
            slot_free);
      } else {
        gate_cv_.wait(lock, slot_free);
      }
      --queued_;
      if (stopping_.load(std::memory_order_acquire)) {
        return Admission::kRejectedStopping;
      }
      if (!woke) return Admission::kShedQueueTimeout;
      ++in_flight_;
      *queue_ms = timer.ElapsedMillis();
      *queue_depth = queued_;
      return Admission::kAdmitted;
    };
    outcome = admit();
  }
  // Offered/outcome counters move together outside gate_mu_, so the soak
  // harness reads an exactly balanced ledger at any quiescent point.
  std::lock_guard<std::mutex> lock(counters_mu_);
  ++counters_.requests_offered;
  switch (outcome) {
    case Admission::kAdmitted:
      ++counters_.requests_admitted;
      break;
    case Admission::kShedQueueFull:
      ++counters_.requests_shed_queue_full;
      break;
    case Admission::kShedDeadline:
      ++counters_.requests_shed_deadline;
      break;
    case Admission::kShedQueueTimeout:
      ++counters_.requests_shed_timeout;
      break;
    case Admission::kRejectedStopping:
      ++counters_.requests_rejected_stopping;
      break;
  }
  return outcome;
}

void MuvedServer::ReleaseRequest() {
  {
    std::lock_guard<std::mutex> lock(gate_mu_);
    --in_flight_;
  }
  gate_cv_.notify_one();
}

int64_t MuvedServer::RetryAfterHintMs() const {
  // The honest hint is the gate's own patience: a client that waits at
  // least one queue-timeout window arrives after the current cohort has
  // either drained or been shed.  Deterministic (configuration-only), so
  // the overloaded frame is byte-stable for a fixed configuration.
  return std::max(1, options_.queue_timeout_ms);
}

int64_t MuvedServer::UptimeMs() const {
  if (!started_) return 0;
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now() - started_at_)
      .count();
}

void MuvedServer::RequestStop() {
  std::lock_guard<std::mutex> lock(stop_mu_);
  stop_requested_ = true;
  stop_cv_.notify_all();
}

void MuvedServer::Wait() {
  std::unique_lock<std::mutex> lock(stop_mu_);
  stop_cv_.wait(lock, [this] { return stop_requested_ || stopped_; });
}

void MuvedServer::Stop() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
    stop_cv_.notify_all();
  }
  stopping_.store(true, std::memory_order_release);
  // 1. Stop accepting.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  listen_fd_ = -1;
  // 2. Wake admission waiters (they answer `cancelled`).
  gate_cv_.notify_all();
  // 3. Drain sessions: SHUT_RD unblocks pending frame reads without
  //    cutting off in-flight responses; trip any active search's cancel
  //    token so long deadlines end at the next work boundary.
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    for (auto& conn : conns_) {
      {
        std::lock_guard<std::mutex> cancel_lock(conn->cancel_mu);
        if (conn->active_cancel != nullptr) conn->active_cancel->Cancel();
      }
      ::shutdown(conn->fd, SHUT_RD);
    }
  }
  // 4. Join every handler.
  std::vector<std::unique_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

MuvedServer::Counters MuvedServer::counters() const {
  std::lock_guard<std::mutex> lock(counters_mu_);
  return counters_;
}

}  // namespace muve::server
