#include "storage/selection_cache.h"

#include <algorithm>
#include <utility>

#include "common/logging.h"

namespace muve::storage {

namespace {

// Retained footprint of one entry: the row vector plus its key and the
// two map/list nodes referencing it.
size_t EntryBytes(const std::string& key, const RowSet& rows) {
  return rows.capacity() * sizeof(uint32_t) + 2 * key.size() +
         sizeof(SelectionCache::Options);  // node overhead, order-of
}

}  // namespace

SelectionCache::SelectionCache() : SelectionCache(Options()) {}

SelectionCache::SelectionCache(Options options) : options_(options) {
  if (options_.num_shards == 0) options_.num_shards = 1;
  per_shard_budget_ =
      std::max<size_t>(1, options_.max_bytes / options_.num_shards);
  shards_.reserve(options_.num_shards);
  for (size_t i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SelectionCache::Shard& SelectionCache::ShardFor(const std::string& key) {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

const SelectionCache::Shard& SelectionCache::ShardFor(
    const std::string& key) const {
  const size_t h = std::hash<std::string>{}(key);
  return *shards_[h % shards_.size()];
}

std::shared_ptr<const RowSet> SelectionCache::Get(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.lookups;
  const auto it = shard.entries.find(key);
  if (it == shard.entries.end()) {
    ++shard.misses;
    return nullptr;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second.lru_it);
  return it->second.rows;
}

void SelectionCache::Put(const std::string& key,
                         std::shared_ptr<const RowSet> rows) {
  MUVE_CHECK(rows != nullptr);
  Shard& shard = ShardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.entries.find(key) != shard.entries.end()) {
    return;  // first insert wins
  }
  const size_t bytes = EntryBytes(key, *rows);
  shard.lru.push_front(key);
  Shard::Entry entry;
  entry.rows = std::move(rows);
  entry.lru_it = shard.lru.begin();
  entry.bytes = bytes;
  shard.entries.emplace(key, std::move(entry));
  shard.bytes += bytes;
  ++shard.insertions;

  // Per-shard LRU eviction under the byte budget; the entry just
  // inserted (LRU front) is never evicted, so an oversized selection
  // still serves the request that filled it.
  while (shard.bytes > per_shard_budget_ && shard.entries.size() > 1) {
    const std::string& victim_key = shard.lru.back();
    const auto victim = shard.entries.find(victim_key);
    MUVE_CHECK(victim != shard.entries.end());
    shard.bytes -= victim->second.bytes;
    shard.entries.erase(victim);
    shard.lru.pop_back();
    ++shard.evictions;
  }
}

void SelectionCache::Clear() {
  for (auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->entries.clear();
    shard->lru.clear();
    shard->bytes = 0;
  }
}

SelectionCache::Stats SelectionCache::TotalStats() const {
  Stats total;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total.lookups += shard->lookups;
    total.hits += shard->hits;
    total.misses += shard->misses;
    total.insertions += shard->insertions;
    total.evictions += shard->evictions;
    total.bytes += static_cast<int64_t>(shard->bytes);
  }
  return total;
}

}  // namespace muve::storage
