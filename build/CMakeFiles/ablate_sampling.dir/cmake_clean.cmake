file(REMOVE_RECURSE
  "CMakeFiles/ablate_sampling.dir/bench/ablate_sampling.cpp.o"
  "CMakeFiles/ablate_sampling.dir/bench/ablate_sampling.cpp.o.d"
  "bench/ablate_sampling"
  "bench/ablate_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablate_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
