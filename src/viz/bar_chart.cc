#include "viz/bar_chart.h"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::viz {

namespace {

std::vector<double> MaybeNormalize(const std::vector<double>& values,
                                   bool normalize) {
  if (!normalize) return values;
  double total = 0.0;
  for (double v : values) total += std::max(v, 0.0);
  if (total <= 0.0) return std::vector<double>(values.size(), 0.0);
  std::vector<double> out(values.size());
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = std::max(values[i], 0.0) / total;
  }
  return out;
}

size_t BarLength(double value, double max_value, size_t max_width) {
  if (max_value <= 0.0 || value <= 0.0) return 0;
  return static_cast<size_t>(
      std::lround(value / max_value * static_cast<double>(max_width)));
}

}  // namespace

std::string RenderBarChart(const Series& series,
                           const BarChartOptions& options) {
  MUVE_CHECK(series.labels.size() == series.values.size())
      << "label/value size mismatch";
  const std::vector<double> values =
      MaybeNormalize(series.values, options.normalize);
  double max_value = 0.0;
  size_t label_width = 0;
  for (size_t i = 0; i < values.size(); ++i) {
    max_value = std::max(max_value, values[i]);
    label_width = std::max(label_width, series.labels[i].size());
  }
  std::ostringstream out;
  if (!series.title.empty()) out << series.title << "\n";
  for (size_t i = 0; i < values.size(); ++i) {
    const size_t len =
        BarLength(values[i], max_value, options.max_bar_width);
    out << common::PadRight(series.labels[i], label_width) << " | "
        << std::string(len, options.bar_char) << " "
        << common::FormatDouble(values[i], options.value_precision) << "\n";
  }
  return out.str();
}

std::string RenderSideBySide(const Series& left, const Series& right,
                             const BarChartOptions& options) {
  MUVE_CHECK(left.labels.size() == left.values.size());
  MUVE_CHECK(right.labels.size() == right.values.size());
  MUVE_CHECK(left.labels.size() == right.labels.size())
      << "side-by-side series must share labels";

  const std::vector<double> lv = MaybeNormalize(left.values, options.normalize);
  const std::vector<double> rv =
      MaybeNormalize(right.values, options.normalize);
  double lmax = 0.0;
  double rmax = 0.0;
  size_t label_width = 0;
  for (size_t i = 0; i < lv.size(); ++i) {
    lmax = std::max(lmax, lv[i]);
    rmax = std::max(rmax, rv[i]);
    label_width = std::max(label_width, left.labels[i].size());
  }
  const size_t half = options.max_bar_width / 2;

  std::ostringstream out;
  out << common::PadRight("", label_width) << "   "
      << common::PadRight(left.title, half + 10) << "| " << right.title
      << "\n";
  for (size_t i = 0; i < lv.size(); ++i) {
    const size_t llen = BarLength(lv[i], lmax, half);
    const size_t rlen = BarLength(rv[i], rmax, half);
    std::string lbar = std::string(llen, options.bar_char) + " " +
                       common::FormatDouble(lv[i], options.value_precision);
    out << common::PadRight(left.labels[i], label_width) << " | "
        << common::PadRight(lbar, half + 10) << "| "
        << std::string(rlen, options.bar_char) << " "
        << common::FormatDouble(rv[i], options.value_precision) << "\n";
  }
  return out.str();
}

std::vector<std::string> BinLabels(double lo, double hi, int num_bins,
                                   int precision) {
  std::vector<std::string> labels;
  labels.reserve(static_cast<size_t>(num_bins));
  const double width =
      num_bins > 0 ? (hi - lo) / static_cast<double>(num_bins) : 0.0;
  for (int b = 0; b < num_bins; ++b) {
    const double start = lo + width * b;
    const double end = b + 1 == num_bins ? hi : lo + width * (b + 1);
    const bool closed = b + 1 == num_bins;
    labels.push_back("[" + common::FormatDouble(start, precision) + ", " +
                     common::FormatDouble(end, precision) +
                     (closed ? "]" : ")"));
  }
  return labels;
}

}  // namespace muve::viz
