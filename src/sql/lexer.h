// Hand-written lexer for the MuVE SQL dialect.
//
// Notable departure from vanilla SQL: identifiers may start with a digit
// when the character run is not a valid number ("3PAr" lexes as one
// identifier), because the NBA schema the paper uses has such column names.

#ifndef MUVE_SQL_LEXER_H_
#define MUVE_SQL_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace muve::sql {

// Tokenizes `input`, appending a kEnd token.  Keywords are recognized
// case-insensitively and normalized to uppercase.
common::Result<std::vector<Token>> Tokenize(const std::string& input);

}  // namespace muve::sql

#endif  // MUVE_SQL_LEXER_H_
