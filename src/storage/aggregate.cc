#include "storage/aggregate.h"

#include "common/string_util.h"

namespace muve::storage {

const char* AggregateName(AggregateFunction f) {
  switch (f) {
    case AggregateFunction::kSum:
      return "SUM";
    case AggregateFunction::kCount:
      return "COUNT";
    case AggregateFunction::kAvg:
      return "AVG";
    case AggregateFunction::kMin:
      return "MIN";
    case AggregateFunction::kMax:
      return "MAX";
    case AggregateFunction::kStd:
      return "STD";
    case AggregateFunction::kVar:
      return "VAR";
  }
  return "?";
}

common::Result<AggregateFunction> AggregateFromName(std::string_view name) {
  const std::string upper = common::ToUpper(name);
  if (upper == "SUM") return AggregateFunction::kSum;
  if (upper == "COUNT") return AggregateFunction::kCount;
  if (upper == "AVG" || upper == "MEAN") return AggregateFunction::kAvg;
  if (upper == "MIN") return AggregateFunction::kMin;
  if (upper == "MAX") return AggregateFunction::kMax;
  if (upper == "STD" || upper == "STDDEV") return AggregateFunction::kStd;
  if (upper == "VAR" || upper == "VARIANCE") return AggregateFunction::kVar;
  return common::Status::NotFound("unknown aggregate function: " +
                                  std::string(name));
}

const std::vector<AggregateFunction>& AllAggregateFunctions() {
  static const std::vector<AggregateFunction>* kAll =
      new std::vector<AggregateFunction>{
          AggregateFunction::kSum, AggregateFunction::kCount,
          AggregateFunction::kAvg, AggregateFunction::kMin,
          AggregateFunction::kMax, AggregateFunction::kStd,
          AggregateFunction::kVar};
  return *kAll;
}

void AggregateAccumulator::Add(double value) {
  if (count_ == 0) {
    min_ = value;
    max_ = value;
  } else {
    if (value < min_) min_ = value;
    if (value > max_) max_ = value;
  }
  ++count_;
  sum_ += value;
  if (function_ == AggregateFunction::kStd ||
      function_ == AggregateFunction::kVar) {
    welford_.Add(value);
  }
}

double AggregateAccumulator::Finish() const {
  if (count_ == 0) return 0.0;
  switch (function_) {
    case AggregateFunction::kSum:
      return sum_;
    case AggregateFunction::kCount:
      return static_cast<double>(count_);
    case AggregateFunction::kAvg:
      return sum_ / static_cast<double>(count_);
    case AggregateFunction::kMin:
      return min_;
    case AggregateFunction::kMax:
      return max_;
    case AggregateFunction::kStd:
      return welford_.stddev();
    case AggregateFunction::kVar:
      return welford_.variance();
  }
  return 0.0;
}

}  // namespace muve::storage
