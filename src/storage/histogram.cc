#include "storage/histogram.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::storage {

namespace {

// Prefix-sum helper for O(1) segment mean/SSE queries:
//   SSE(i, j) = sumsq(i, j) - sum(i, j)^2 / (j - i).
class SegmentStats {
 public:
  explicit SegmentStats(const std::vector<double>& sorted) {
    prefix_sum_.resize(sorted.size() + 1, 0.0);
    prefix_sumsq_.resize(sorted.size() + 1, 0.0);
    for (size_t i = 0; i < sorted.size(); ++i) {
      prefix_sum_[i + 1] = prefix_sum_[i] + sorted[i];
      prefix_sumsq_[i + 1] = prefix_sumsq_[i] + sorted[i] * sorted[i];
    }
  }

  double Sum(size_t begin, size_t end) const {
    return prefix_sum_[end] - prefix_sum_[begin];
  }

  double Mean(size_t begin, size_t end) const {
    MUVE_DCHECK(end > begin);
    return Sum(begin, end) / static_cast<double>(end - begin);
  }

  double Sse(size_t begin, size_t end) const {
    if (end <= begin + 1) return 0.0;
    const double n = static_cast<double>(end - begin);
    const double sum = Sum(begin, end);
    const double sumsq = prefix_sumsq_[end] - prefix_sumsq_[begin];
    // Guard tiny negative values from floating-point cancellation.
    return std::max(0.0, sumsq - sum * sum / n);
  }

 private:
  std::vector<double> prefix_sum_;
  std::vector<double> prefix_sumsq_;
};

HistogramBucket MakeBucket(const std::vector<double>& sorted,
                           const SegmentStats& stats, size_t begin,
                           size_t end) {
  HistogramBucket bucket;
  bucket.begin = begin;
  bucket.end = end;
  bucket.lo = sorted[begin];
  bucket.hi = sorted[end - 1];
  bucket.mean = stats.Mean(begin, end);
  bucket.sse = stats.Sse(begin, end);
  return bucket;
}

Histogram BuildEquiWidth(const std::vector<double>& sorted,
                         const SegmentStats& stats, int num_buckets) {
  Histogram hist;
  hist.kind = Histogram::Kind::kEquiWidth;
  const double lo = sorted.front();
  const double hi = sorted.back();
  if (lo == hi || num_buckets == 1) {
    hist.buckets.push_back(MakeBucket(sorted, stats, 0, sorted.size()));
    return hist;
  }
  const double width = (hi - lo) / num_buckets;
  size_t begin = 0;
  for (int b = 0; b < num_buckets && begin < sorted.size(); ++b) {
    const double boundary = b + 1 == num_buckets
                                ? std::numeric_limits<double>::infinity()
                                : lo + width * (b + 1);
    size_t end = begin;
    while (end < sorted.size() && sorted[end] < boundary) ++end;
    if (end > begin) {
      hist.buckets.push_back(MakeBucket(sorted, stats, begin, end));
    }
    begin = end;
  }
  return hist;
}

Histogram BuildEquiDepth(const std::vector<double>& sorted,
                         const SegmentStats& stats, int num_buckets) {
  Histogram hist;
  hist.kind = Histogram::Kind::kEquiDepth;
  const size_t n = sorted.size();
  const size_t buckets = std::min<size_t>(num_buckets, n);
  size_t begin = 0;
  for (size_t b = 0; b < buckets; ++b) {
    // Evenly spread the remainder so bucket sizes differ by at most 1.
    size_t end = (n * (b + 1)) / buckets;
    if (end <= begin) end = begin + 1;
    hist.buckets.push_back(MakeBucket(sorted, stats, begin, end));
    begin = end;
  }
  return hist;
}

Histogram BuildVOptimal(const std::vector<double>& sorted,
                        const SegmentStats& stats, int num_buckets) {
  Histogram hist;
  hist.kind = Histogram::Kind::kVOptimal;
  const size_t n = sorted.size();
  const size_t b = std::min<size_t>(num_buckets, n);

  // dp[k][i]: minimum SSE of covering the first i values with k buckets.
  constexpr double kInf = std::numeric_limits<double>::infinity();
  std::vector<std::vector<double>> dp(b + 1,
                                      std::vector<double>(n + 1, kInf));
  std::vector<std::vector<size_t>> split(
      b + 1, std::vector<size_t>(n + 1, 0));
  dp[0][0] = 0.0;
  for (size_t k = 1; k <= b; ++k) {
    for (size_t i = k; i <= n; ++i) {
      // Last bucket covers [j, i); j >= k-1 so earlier buckets fit.
      for (size_t j = k - 1; j < i; ++j) {
        if (dp[k - 1][j] == kInf) continue;
        const double candidate = dp[k - 1][j] + stats.Sse(j, i);
        if (candidate < dp[k][i]) {
          dp[k][i] = candidate;
          split[k][i] = j;
        }
      }
    }
  }

  // Walk back the optimal splits.
  std::vector<size_t> boundaries;
  size_t i = n;
  for (size_t k = b; k >= 1; --k) {
    boundaries.push_back(i);
    i = split[k][i];
  }
  boundaries.push_back(0);
  std::reverse(boundaries.begin(), boundaries.end());
  for (size_t s = 0; s + 1 < boundaries.size(); ++s) {
    if (boundaries[s + 1] > boundaries[s]) {
      hist.buckets.push_back(
          MakeBucket(sorted, stats, boundaries[s], boundaries[s + 1]));
    }
  }
  return hist;
}

}  // namespace

double Histogram::TotalSse() const {
  double total = 0.0;
  for (const HistogramBucket& b : buckets) total += b.sse;
  return total;
}

std::string Histogram::ToString() const {
  std::ostringstream out;
  out << HistogramKindName(kind) << " histogram, " << buckets.size()
      << " buckets, SSE=" << common::FormatDouble(TotalSse(), 3) << ":";
  for (const HistogramBucket& b : buckets) {
    out << " [" << common::FormatDouble(b.lo, 2) << ".."
        << common::FormatDouble(b.hi, 2) << "]x" << b.count();
  }
  return out.str();
}

const char* HistogramKindName(Histogram::Kind kind) {
  switch (kind) {
    case Histogram::Kind::kEquiWidth:
      return "equi-width";
    case Histogram::Kind::kEquiDepth:
      return "equi-depth";
    case Histogram::Kind::kVOptimal:
      return "v-optimal";
  }
  return "?";
}

common::Result<Histogram> BuildHistogram(Histogram::Kind kind,
                                         std::vector<double> values,
                                         int num_buckets) {
  if (values.empty()) {
    return common::Status::InvalidArgument(
        "cannot build a histogram over an empty series");
  }
  if (num_buckets < 1) {
    return common::Status::InvalidArgument("num_buckets must be >= 1");
  }
  std::sort(values.begin(), values.end());
  const SegmentStats stats(values);
  switch (kind) {
    case Histogram::Kind::kEquiWidth:
      return BuildEquiWidth(values, stats, num_buckets);
    case Histogram::Kind::kEquiDepth:
      return BuildEquiDepth(values, stats, num_buckets);
    case Histogram::Kind::kVOptimal:
      return BuildVOptimal(values, stats, num_buckets);
  }
  return common::Status::Internal("bad histogram kind");
}

double SegmentSse(const std::vector<double>& sorted_values, size_t begin,
                  size_t end) {
  MUVE_CHECK(begin <= end && end <= sorted_values.size());
  const SegmentStats stats(sorted_values);
  return stats.Sse(begin, end);
}

}  // namespace muve::storage
