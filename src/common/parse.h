// Strict, locale-independent numeric parsing.
//
// Every place the system decodes an untrusted numeric token — CLI flag
// values, CSV cells, and `muved` protocol fields — goes through this one
// utility, so the acceptance rules are identical everywhere:
//
//   * The WHOLE token must parse: trailing junk is an error, never a
//     silent truncation ("--k=abc" and "12x" both fail, they do not
//     become 0 or 12).
//   * Out-of-range magnitudes are errors, never wrapped, saturated, or
//     undefined behavior ("99999999999999999999" fails as int64;
//     "1e400" fails as double).
//   * Parsing never consults the process locale: "1.5" means 1.5 under
//     a de_DE-style decimal-comma locale too, and "1,5" is always an
//     error, not a locale-dependent 1.5.
//   * Doubles accept decimal and scientific notation with an optional
//     leading sign ("1", "-2.5", ".5", "7.", "1e30", "+3E-2").
//     `inf`/`nan`/hex-float spellings are REJECTED by policy: none of
//     them is a meaningful histogram input, and accepting them would
//     re-open locale- and toolchain-dependent corners.
//
// Built on std::from_chars; toolchains without floating-point from_chars
// fall back to a classic-locale istringstream behind the same validator,
// so the accepted grammar does not change.

#ifndef MUVE_COMMON_PARSE_H_
#define MUVE_COMMON_PARSE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"

namespace muve::common {

// Parses `text` as a base-10 int64.  Accepts an optional leading '+' or
// '-'; rejects empty input, whitespace, trailing junk, and values outside
// [INT64_MIN, INT64_MAX].
Result<int64_t> ParseInt64Strict(std::string_view text);

// Parses `text` as a finite double, locale-independently.  Accepts
// decimal and scientific notation with an optional leading sign; rejects
// empty input, whitespace, trailing junk, inf/nan/hex spellings, and
// magnitudes that overflow double (underflow-to-subnormal-or-zero is
// rejected too: a cell whose magnitude can't survive the type is treated
// as malformed, not silently flushed).
Result<double> ParseDoubleStrict(std::string_view text);

// Flag-oriented wrappers: same strictness, plus an inclusive range check,
// with errors that name the flag —
//   "--k: expected an integer in [1, 1000000], got 'abc'".
// `flag` is whatever the caller wants the diagnostic to lead with (a CLI
// flag name, a protocol field name, a CSV column).
Result<int64_t> ParseFlagInt64(std::string_view flag, std::string_view text,
                               int64_t min_value, int64_t max_value);
Result<double> ParseFlagDouble(std::string_view flag, std::string_view text,
                               double min_value, double max_value);

}  // namespace muve::common

#endif  // MUVE_COMMON_PARSE_H_
