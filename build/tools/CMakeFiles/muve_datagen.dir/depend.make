# Empty dependencies file for muve_datagen.
# This may be replaced when dependencies are built.
