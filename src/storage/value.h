// A dynamically-typed cell value for the columnar engine.
//
// The engine is strongly typed at the column level (each column stores a
// contiguous vector of its native type); `Value` is the boundary type used
// when rows cross module boundaries: SQL literals, predicate constants,
// group keys, and aggregate results.

#ifndef MUVE_STORAGE_VALUE_H_
#define MUVE_STORAGE_VALUE_H_

#include <cstdint>
#include <functional>
#include <ostream>
#include <string>
#include <variant>

#include "common/status.h"

namespace muve::storage {

enum class ValueType {
  kNull = 0,
  kInt64,
  kDouble,
  kString,
};

const char* ValueTypeName(ValueType type);

// Null, 64-bit integer, double, or string.  Value is ordered and hashable;
// numeric values of different types compare by numeric value (1 == 1.0),
// which is what SQL comparison semantics require.
class Value {
 public:
  Value() : data_(std::monostate{}) {}
  explicit Value(int64_t v) : data_(v) {}
  explicit Value(double v) : data_(v) {}
  explicit Value(std::string v) : data_(std::move(v)) {}
  explicit Value(const char* v) : data_(std::string(v)) {}

  static Value Null() { return Value(); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_numeric() const {
    return type() == ValueType::kInt64 || type() == ValueType::kDouble;
  }

  // Typed accessors; aborts on type mismatch (programming error).
  int64_t AsInt64() const;
  double AsDoubleExact() const;
  const std::string& AsString() const;

  // Numeric coercion: int64 and double convert; null and string fail.
  common::Result<double> ToDouble() const;

  // Renders for CSV output and debugging.  Null renders as the empty string.
  std::string ToString() const;

  // SQL-style equality: numeric cross-type compares by value; null equals
  // only null (three-valued logic is handled by the predicate layer).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Total order used for MIN/MAX and sorting: null < numerics < strings.
  bool operator<(const Value& other) const;

  size_t Hash() const;

 private:
  std::variant<std::monostate, int64_t, double, std::string> data_;
};

std::ostream& operator<<(std::ostream& os, const Value& value);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_VALUE_H_
