# Empty compiler generated dependencies file for fig05_alpha_s_cost.
# This may be replaced when dependencies are built.
