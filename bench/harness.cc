#include "harness.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>

#include "common/logging.h"
#include "common/simd/simd.h"
#include "common/string_util.h"

#ifndef MUVE_BENCH_REPO_ROOT
#define MUVE_BENCH_REPO_ROOT "."
#endif

namespace muve::bench {
namespace {

// Process-wide bench session, set up by InitBench.
struct BenchSession {
  BenchOptions options;
  std::string bench_name = "bench";
  std::string original_args;
  // Pre-rendered JSON fragments for the results[] array.
  std::vector<std::string> results;
  bool written = false;
};

BenchSession& Session() {
  static BenchSession session;
  return session;
}

std::string Basename(const char* path) {
  std::string name = path == nullptr ? "" : path;
  const size_t slash = name.find_last_of('/');
  if (slash != std::string::npos) name = name.substr(slash + 1);
  return name.empty() ? "bench" : name;
}

}  // namespace

const BenchOptions& InitBench(int* argc, char** argv) {
  BenchSession& session = Session();
  session.bench_name = Basename(*argc >= 1 ? argv[0] : nullptr);
  // Record the original invocation before consuming flags.
  for (int i = 1; i < *argc; ++i) {
    if (i > 1) session.original_args += ' ';
    session.original_args += argv[i];
  }
  // Consume the shared flags; keep everything else in place.
  int out = 1;
  for (int i = 1; i < *argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--repeat=", 9) == 0) {
      const int parsed = std::atoi(arg + 9);
      MUVE_CHECK(parsed >= 1) << "--repeat wants a positive integer: " << arg;
      session.options.repeat = parsed;
    } else if (std::strcmp(arg, "--json-out") == 0) {
      session.options.json = true;
    } else if (std::strncmp(arg, "--json-out=", 11) == 0) {
      session.options.json = true;
      session.options.json_path = arg + 11;
    } else if (std::strcmp(arg, "--smoke") == 0) {
      session.options.smoke = true;
    } else {
      argv[out++] = argv[i];
    }
  }
  *argc = out;
  if (session.options.json && session.options.json_path.empty()) {
    session.options.json_path = std::string(MUVE_BENCH_REPO_ROOT) + "/BENCH_" +
                                session.bench_name + ".json";
  }
  std::atexit(FinishBench);
  return session.options;
}

const BenchOptions& CurrentBenchOptions() { return Session().options; }

std::string JsonEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size() + 8);
  for (const char c : text) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string GitShaOrUnknown() {
  FILE* pipe = popen(
      "git -C \"" MUVE_BENCH_REPO_ROOT "\" rev-parse --short HEAD "
      "2>/dev/null",
      "r");
  if (pipe == nullptr) return "unknown";
  char buffer[128];
  std::string sha;
  while (fgets(buffer, sizeof(buffer), pipe) != nullptr) sha += buffer;
  const int status = pclose(pipe);
  while (!sha.empty() && (sha.back() == '\n' || sha.back() == '\r')) {
    sha.pop_back();
  }
  if (status != 0 || sha.empty()) return "unknown";
  return sha;
}

void RecordJsonResult(
    const std::string& label,
    const std::vector<std::pair<std::string, std::string>>& str_fields,
    const std::vector<std::pair<std::string, double>>& num_fields) {
  BenchSession& session = Session();
  if (!session.options.json) return;
  std::ostringstream entry;
  entry << "{\"type\": \"record\", \"label\": \"" << JsonEscape(label) << '"';
  for (const auto& [key, value] : str_fields) {
    entry << ", \"" << JsonEscape(key) << "\": \"" << JsonEscape(value)
          << '"';
  }
  for (const auto& [key, value] : num_fields) {
    entry << ", \"" << JsonEscape(key)
          << "\": " << common::FormatDouble(value, 6);
  }
  entry << '}';
  session.results.push_back(entry.str());
}

void FinishBench() {
  BenchSession& session = Session();
  if (!session.options.json || session.written) return;
  session.written = true;
  std::ofstream out(session.options.json_path, std::ios::binary);
  if (!out) {
    std::cerr << "warning: cannot write " << session.options.json_path
              << "\n";
    return;
  }
  out << "{\n  \"bench\": \"" << JsonEscape(session.bench_name) << "\",\n"
      << "  \"git_sha\": \"" << JsonEscape(GitShaOrUnknown()) << "\",\n"
      << "  \"config\": {\"repetitions\": " << Repetitions()
      << ", \"simd\": \"" << common::simd::ActiveLevelName()
      << "\", \"smoke\": " << (session.options.smoke ? "true" : "false")
      << ", \"args\": \"" << JsonEscape(session.original_args) << "\"},\n"
      << "  \"results\": [";
  for (size_t i = 0; i < session.results.size(); ++i) {
    out << (i == 0 ? "\n    " : ",\n    ") << session.results[i];
  }
  out << "\n  ]\n}\n";
  std::cout << "(json: " << session.options.json_path << ")\n";
}

int Repetitions() {
  if (Session().options.repeat >= 1) return Session().options.repeat;
  static const int reps = [] {
    const char* env = std::getenv("MUVE_BENCH_REPS");
    if (env != nullptr) {
      const int parsed = std::atoi(env);
      if (parsed >= 1) return parsed;
    }
    return 5;
  }();
  return reps;
}

RunResult RunScheme(const core::Recommender& recommender,
                    const core::SearchOptions& options) {
  RunResult result;
  const int reps = Repetitions();
  std::vector<double> costs;
  costs.reserve(reps);
  // One unrecorded warmup run per configuration: the first recommendation
  // in a fresh process pays page-fault/allocator costs that would bias
  // the first row of every figure.
  {
    auto warmup = recommender.Recommend(options);
    MUVE_CHECK(warmup.ok()) << options.SchemeName() << ": "
                            << warmup.status().ToString();
  }
  for (int r = 0; r < reps; ++r) {
    auto rec = recommender.Recommend(options);
    MUVE_CHECK(rec.ok()) << options.SchemeName() << ": "
                         << rec.status().ToString();
    costs.push_back(rec->stats.TotalCostMillis());
    if (r + 1 == reps) {
      result.stats = rec->stats;
      result.recommendation = std::move(rec).value();
    }
  }
  double total = 0.0;
  for (const double c : costs) total += c;
  result.cost_ms = total / reps;
  std::sort(costs.begin(), costs.end());
  result.cost_ms_min = costs.front();
  result.cost_ms_median = (costs.size() % 2 == 1)
                              ? costs[costs.size() / 2]
                              : 0.5 * (costs[costs.size() / 2 - 1] +
                                       costs[costs.size() / 2]);
  return result;
}

core::SearchOptions LinearLinear() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kLinear;
  options.vertical = core::VerticalStrategy::kLinear;
  return options;
}

core::SearchOptions HcLinear() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kHillClimbing;
  options.vertical = core::VerticalStrategy::kLinear;
  return options;
}

core::SearchOptions MuveLinear() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kMuve;
  options.vertical = core::VerticalStrategy::kLinear;
  return options;
}

core::SearchOptions MuveMuve() {
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kMuve;
  options.vertical = core::VerticalStrategy::kMuve;
  return options;
}

TablePrinter::TablePrinter(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  MUVE_CHECK(cells.size() == headers_.size())
      << "row arity " << cells.size() << " != " << headers_.size();
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(const std::string& title) const {
  std::vector<size_t> widths(headers_.size());
  for (size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::cout << "\n" << title << "\n";
  for (size_t c = 0; c < headers_.size(); ++c) {
    if (c > 0) std::cout << "  ";
    std::cout << common::PadRight(headers_[c], widths[c]);
  }
  std::cout << "\n";
  size_t total = headers_.size() > 1 ? 2 * (headers_.size() - 1) : 0;
  for (size_t w : widths) total += w;
  std::cout << std::string(total, '-') << "\n";
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) std::cout << "  ";
      std::cout << common::PadRight(row[c], widths[c]);
    }
    std::cout << "\n";
  }
  MaybeExportCsv(title);
  MaybeRecordJson(title);
}

// Appends this table to the bench session's results[] as a
// {"type":"table", ...} entry (no-op unless --json-out is active).
void TablePrinter::MaybeRecordJson(const std::string& title) const {
  BenchSession& session = Session();
  if (!session.options.json) return;
  std::ostringstream entry;
  entry << "{\"type\": \"table\", \"title\": \"" << JsonEscape(title)
        << "\", \"headers\": [";
  for (size_t c = 0; c < headers_.size(); ++c) {
    entry << (c == 0 ? "" : ", ") << '"' << JsonEscape(headers_[c]) << '"';
  }
  entry << "], \"rows\": [";
  for (size_t r = 0; r < rows_.size(); ++r) {
    entry << (r == 0 ? "" : ", ") << '[';
    for (size_t c = 0; c < rows_[r].size(); ++c) {
      entry << (c == 0 ? "" : ", ") << '"' << JsonEscape(rows_[r][c]) << '"';
    }
    entry << ']';
  }
  entry << "]}";
  session.results.push_back(entry.str());
}

void TablePrinter::MaybeExportCsv(const std::string& title) const {
  const char* dir = std::getenv("MUVE_BENCH_CSV_DIR");
  if (dir == nullptr || dir[0] == '\0') return;
  std::string slug;
  for (const char c : title) {
    if (std::isalnum(static_cast<unsigned char>(c))) {
      slug.push_back(static_cast<char>(
          std::tolower(static_cast<unsigned char>(c))));
    } else if (!slug.empty() && slug.back() != '-') {
      slug.push_back('-');
    }
    if (slug.size() >= 72) break;
  }
  while (!slug.empty() && slug.back() == '-') slug.pop_back();
  if (slug.empty()) slug = "table";
  const std::string path = std::string(dir) + "/" + slug + ".csv";
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    std::cerr << "warning: cannot write " << path << "\n";
    return;
  }
  auto write_row = [&out](const std::vector<std::string>& cells) {
    for (size_t c = 0; c < cells.size(); ++c) {
      if (c > 0) out << ",";
      // Figure cells never contain commas/quotes; write verbatim.
      out << cells[c];
    }
    out << "\n";
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  std::cout << "(csv: " << path << ")\n";
}

std::string Ms(double value) { return common::FormatDouble(value, 3); }

std::string Pct(double fraction) {
  return common::FormatDouble(fraction * 100.0, 1) + "%";
}

}  // namespace muve::bench
