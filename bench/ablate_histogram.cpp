// Ablation: equi-width bar-chart binning vs classic histogram shapes.
//
// Section III-A argues binned views must be equi-width (the only shape a
// standard bar chart can draw) even though equi-depth and V-optimal
// histograms approximate the data better.  This bench quantifies what
// that choice costs in approximation error: per bucket count, the SSE of
// the three partitioning schemes over real view series from the NBA
// dataset, plus V-optimal's construction-time premium.

#include <iostream>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "data/nba.h"
#include "harness.h"
#include "storage/group_by.h"
#include "storage/histogram.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::storage::BuildHistogram;
  using muve::storage::Histogram;

  std::cout << "=== Ablation: equi-width vs equi-depth vs V-optimal "
               "(Section III-A) ===\n";
  const muve::data::Dataset dataset = muve::data::MakeNbaDataset();

  // The raw series of a representative view: per-MP SUM(PER) over all
  // players (the kind of series the accuracy objective approximates).
  auto grouped = muve::storage::GroupByAggregate(
      *dataset.table, dataset.all_rows, "MP", "PER",
      muve::storage::AggregateFunction::kSum);
  MUVE_CHECK(grouped.ok());
  const std::vector<double>& series = grouped->aggregates;
  std::cout << "Series: SUM(PER) BY MP over all players, "
            << series.size() << " distinct values\n";

  muve::bench::TablePrinter table({"buckets", "equi-width SSE",
                                   "equi-depth SSE", "V-optimal SSE",
                                   "V-opt vs equi-width",
                                   "V-opt build(ms)"});
  for (const int buckets : {2, 4, 8, 16, 32, 64}) {
    auto equi_w =
        BuildHistogram(Histogram::Kind::kEquiWidth, series, buckets);
    auto equi_d =
        BuildHistogram(Histogram::Kind::kEquiDepth, series, buckets);
    muve::common::Stopwatch timer;
    auto v_opt =
        BuildHistogram(Histogram::Kind::kVOptimal, series, buckets);
    const double v_opt_ms = timer.ElapsedMillis();
    MUVE_CHECK(equi_w.ok());
    MUVE_CHECK(equi_d.ok());
    MUVE_CHECK(v_opt.ok());
    const double ew = equi_w->TotalSse();
    const double vo = v_opt->TotalSse();
    table.AddRow({std::to_string(buckets),
                  muve::common::FormatDouble(ew, 1),
                  muve::common::FormatDouble(equi_d->TotalSse(), 1),
                  muve::common::FormatDouble(vo, 1),
                  muve::bench::Pct(ew > 0 ? 1.0 - vo / ew : 0.0),
                  muve::bench::Ms(v_opt_ms)});
  }
  table.Print("Total SSE by partitioning scheme (lower is better; "
              "V-optimal is the error floor bar charts give up)");
  return 0;
}
