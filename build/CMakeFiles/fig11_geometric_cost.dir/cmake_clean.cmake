file(REMOVE_RECURSE
  "CMakeFiles/fig11_geometric_cost.dir/bench/fig11_geometric_cost.cpp.o"
  "CMakeFiles/fig11_geometric_cost.dir/bench/fig11_geometric_cost.cpp.o.d"
  "bench/fig11_geometric_cost"
  "bench/fig11_geometric_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig11_geometric_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
