// Typed columnar storage.
//
// Each column stores its native type in a contiguous vector plus a null
// bitmap, so scans (filtering, group-by, binned aggregation) run over raw
// arrays.  `Value`-based access is provided for the generic boundary
// (SQL results, CSV, tests).

#ifndef MUVE_STORAGE_COLUMN_H_
#define MUVE_STORAGE_COLUMN_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/validity_bitmap.h"
#include "storage/value.h"

namespace muve::storage {

// A single column of one ValueType with per-row validity.
class Column {
 public:
  explicit Column(ValueType type) : type_(type) {}

  ValueType type() const { return type_; }
  size_t size() const { return valid_.size(); }

  // Appends a cell.  AppendValue type-checks and coerces numerics
  // (int64 column accepts an integral double and vice versa).
  void AppendInt64(int64_t v);
  void AppendDouble(double v);
  void AppendString(std::string v);
  void AppendNull();
  common::Status AppendValue(const Value& v);

  bool IsNull(size_t row) const { return !valid_.Get(row); }

  // Word-addressable null mask: bit i of word i/64 set means row i is
  // valid.  Scan kernels use AllValid() to skip the per-row null test
  // and words() for word-at-a-time null handling.
  const ValidityBitmap& validity() const { return valid_; }

  // Typed fast-path accessors.  Undefined for null cells or wrong types
  // (checked in debug builds).
  int64_t Int64At(size_t row) const;
  double DoubleAt(size_t row) const;
  const std::string& StringAt(size_t row) const;

  // Numeric read regardless of int64/double storage; aborts for strings.
  double NumericAt(size_t row) const;

  // Generic access (allocates for strings).
  Value ValueAt(size_t row) const;

  // Min / max over non-null numeric cells.  Error for string columns or
  // when the column has no non-null cell.
  common::Result<double> NumericMin() const;
  common::Result<double> NumericMax() const;

  void Reserve(size_t n);

  // Raw array access for tight typed loops (selection-vector predicate
  // kernels, the fused scan engine).  Valid only for the matching type;
  // null cells hold a zero/default slot — callers must consult
  // validity() before trusting a value.
  const int64_t* int64_data() const {
    MUVE_DCHECK(type_ == ValueType::kInt64);
    return ints_.data();
  }
  const double* double_data() const {
    MUVE_DCHECK(type_ == ValueType::kDouble);
    return doubles_.data();
  }
  const std::string* string_data() const {
    MUVE_DCHECK(type_ == ValueType::kString);
    return strings_.data();
  }

 private:
  ValueType type_;
  ValidityBitmap valid_;
  std::vector<int64_t> ints_;
  std::vector<double> doubles_;
  std::vector<std::string> strings_;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_COLUMN_H_
