file(REMOVE_RECURSE
  "CMakeFiles/logging_stopwatch_test.dir/common/logging_stopwatch_test.cc.o"
  "CMakeFiles/logging_stopwatch_test.dir/common/logging_stopwatch_test.cc.o.d"
  "logging_stopwatch_test"
  "logging_stopwatch_test.pdb"
  "logging_stopwatch_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/logging_stopwatch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
