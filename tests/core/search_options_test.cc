#include "core/search_options.h"

#include <gtest/gtest.h>

namespace muve::core {
namespace {

TEST(SearchOptionsTest, DefaultsValidate) {
  EXPECT_TRUE(SearchOptions().Validate().ok());
}

TEST(SearchOptionsTest, SchemeNamesMatchPaperNotation) {
  SearchOptions options;
  options.horizontal = HorizontalStrategy::kLinear;
  options.vertical = VerticalStrategy::kLinear;
  EXPECT_EQ(options.SchemeName(), "Linear-Linear");

  options.horizontal = HorizontalStrategy::kHillClimbing;
  EXPECT_EQ(options.SchemeName(), "HC-Linear");

  options.horizontal = HorizontalStrategy::kMuve;
  EXPECT_EQ(options.SchemeName(), "MuVE-Linear");

  options.vertical = VerticalStrategy::kMuve;
  EXPECT_EQ(options.SchemeName(), "MuVE-MuVE");

  options.partition.kind = PartitionKind::kGeometric;
  EXPECT_EQ(options.SchemeName(), "MuVE(G)-MuVE");

  options.partition.kind = PartitionKind::kAdditive;
  options.partition.step = 4;
  EXPECT_EQ(options.SchemeName(), "MuVE(A)-MuVE");

  options.partition.step = 1;
  options.approximation = VerticalApproximation::kRefinement;
  EXPECT_EQ(options.SchemeName(), "MuVE-MuVE(R)");

  options.approximation = VerticalApproximation::kSkipping;
  EXPECT_EQ(options.SchemeName(), "MuVE-MuVE(S)");

  SearchOptions shared;
  shared.horizontal = HorizontalStrategy::kLinear;
  shared.vertical = VerticalStrategy::kLinear;
  shared.shared_scans = true;
  EXPECT_EQ(shared.SchemeName(), "Linear-Linear(Sh)");
}

TEST(SearchOptionsTest, ValidationCatchesBadConfigs) {
  SearchOptions bad_weights;
  bad_weights.weights = Weights{0.5, 0.5, 0.5};
  EXPECT_FALSE(bad_weights.Validate().ok());

  SearchOptions bad_k;
  bad_k.k = 0;
  EXPECT_FALSE(bad_k.Validate().ok());

  SearchOptions bad_step;
  bad_step.partition.step = -1;
  EXPECT_FALSE(bad_step.Validate().ok());

  SearchOptions bad_def;
  bad_def.refinement_default_bins = 0;
  EXPECT_FALSE(bad_def.Validate().ok());

  SearchOptions linear_muve;
  linear_muve.horizontal = HorizontalStrategy::kLinear;
  linear_muve.vertical = VerticalStrategy::kMuve;
  EXPECT_FALSE(linear_muve.Validate().ok());

  SearchOptions hc_muve;
  hc_muve.horizontal = HorizontalStrategy::kHillClimbing;
  hc_muve.vertical = VerticalStrategy::kMuve;
  EXPECT_FALSE(hc_muve.Validate().ok());

  SearchOptions shared_muve;
  shared_muve.shared_scans = true;  // default scheme is MuVE-MuVE
  EXPECT_FALSE(shared_muve.Validate().ok());
}

TEST(SearchOptionsTest, StrategyNames) {
  EXPECT_STREQ(HorizontalStrategyName(HorizontalStrategy::kLinear),
               "Linear");
  EXPECT_STREQ(HorizontalStrategyName(HorizontalStrategy::kHillClimbing),
               "HC");
  EXPECT_STREQ(HorizontalStrategyName(HorizontalStrategy::kMuve), "MuVE");
  EXPECT_STREQ(VerticalStrategyName(VerticalStrategy::kLinear), "Linear");
  EXPECT_STREQ(VerticalStrategyName(VerticalStrategy::kMuve), "MuVE");
}

}  // namespace
}  // namespace muve::core
