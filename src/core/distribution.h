// Probability-distribution normalization of aggregate views (Section II-A).
//
// A view's aggregate series <g_1..g_t> is normalized by G = sum(g_p) into
// P[V] = <g_1/G, ..., g_t/G> so target and comparison views compare on the
// same scale.  Edge handling beyond the paper: negative aggregates clamp
// to zero before normalizing (the paper's measures are non-negative rates;
// clamping keeps P a valid distribution for measures like win shares that
// can dip below zero), and an all-zero series normalizes to the uniform
// distribution so distances remain defined.

#ifndef MUVE_CORE_DISTRIBUTION_H_
#define MUVE_CORE_DISTRIBUTION_H_

#include <cstddef>
#include <vector>

namespace muve::core {

// Span-style core: normalizes src[0..n) into dst[0..n) (clamp negatives
// to zero; all-zero input becomes uniform).  dst may not alias src.
// Returns the clamped pre-normalization total (the G of Section II-A).
// Dispatches through the SIMD kernel layer; hot callers (the evaluator's
// probe loop) reuse scratch buffers through this entry point.
double NormalizeToDistribution(const double* src, size_t n, double* dst);

// Normalizes `aggregates` into a probability distribution (non-negative,
// summing to 1).  Empty input returns empty.
std::vector<double> NormalizeToDistribution(const std::vector<double>& aggregates);

// True when `p` is a valid probability distribution within `tolerance`.
bool IsDistribution(const std::vector<double>& p, double tolerance = 1e-9);

}  // namespace muve::core

#endif  // MUVE_CORE_DISTRIBUTION_H_
