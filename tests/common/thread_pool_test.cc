#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

namespace muve::common {
namespace {

TEST(ThreadPoolTest, RunsEveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_workers(), 4u);
  constexpr size_t kCount = 1000;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t /*worker*/, size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, WorkerIdsAreInRange) {
  ThreadPool pool(3);
  std::vector<std::atomic<int>> by_worker(3);
  std::atomic<bool> out_of_range{false};
  pool.ParallelFor(300, [&](size_t worker, size_t /*i*/) {
    if (worker >= 3) {
      out_of_range.store(true);
    } else {
      by_worker[worker].fetch_add(1, std::memory_order_relaxed);
    }
  });
  EXPECT_FALSE(out_of_range.load());
  int total = 0;
  for (auto& c : by_worker) total += c.load();
  EXPECT_EQ(total, 300);
  // No guarantee any particular worker runs an index: with stealing, a
  // worker's whole shard can be drained by its siblings before it wakes.
}

TEST(ThreadPoolTest, ReusableAcrossRounds) {
  ThreadPool pool(2);
  for (int round = 0; round < 50; ++round) {
    std::atomic<size_t> sum{0};
    pool.ParallelFor(round + 1, [&](size_t, size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    const size_t n = static_cast<size_t>(round) + 1;
    EXPECT_EQ(sum.load(), n * (n + 1) / 2) << "round " << round;
  }
}

TEST(ThreadPoolTest, SingleWorkerRunsInlineInOrder) {
  ThreadPool pool(1);
  std::vector<size_t> order;
  pool.ParallelFor(10, [&](size_t worker, size_t i) {
    EXPECT_EQ(worker, 0u);
    order.push_back(i);  // no synchronization needed: caller thread only
  });
  std::vector<size_t> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(ThreadPoolTest, ZeroCountIsANoOp) {
  ThreadPool pool(4);
  std::atomic<int> calls{0};
  pool.ParallelFor(0, [&](size_t, size_t) { calls.fetch_add(1); });
  EXPECT_EQ(calls.load(), 0);
}

TEST(ThreadPoolTest, MoreWorkersThanItems) {
  ThreadPool pool(8);
  std::set<size_t> seen;
  std::mutex mu;
  pool.ParallelFor(3, [&](size_t, size_t i) {
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(i);
  });
  EXPECT_EQ(seen, (std::set<size_t>{0, 1, 2}));
}

TEST(ThreadPoolTest, StealingDrainsUnevenShards) {
  // One deliberately slow index pins a worker; the others must steal the
  // rest of its shard so the round still completes with every index run.
  ThreadPool pool(4);
  constexpr size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  pool.ParallelFor(kCount, [&](size_t, size_t i) {
    if (i == 1) {  // lands in worker 1's shard; block it briefly
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

// --- Exception propagation (the "no std::terminate" contract) ---

TEST(ThreadPoolTest, ThrowingTaskRethrownOnCallerThread) {
  ThreadPool pool(4);
  bool caught = false;
  try {
    pool.ParallelFor(16, [&](size_t, size_t i) {
      if (i == 7) throw std::runtime_error("boom at 7");
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_STREQ(e.what(), "boom at 7");
  }
  EXPECT_TRUE(caught);
}

TEST(ThreadPoolTest, ThrowingTaskStillRunsEveryOtherIndex) {
  // One throwing index must not lose the rest of the round: the pool
  // drains every index (exactly-once) and rethrows only afterwards.
  ThreadPool pool(4);
  constexpr size_t kCount = 64;
  std::vector<std::atomic<int>> hits(kCount);
  EXPECT_THROW(pool.ParallelFor(kCount,
                                [&](size_t, size_t i) {
                                  hits[i].fetch_add(
                                      1, std::memory_order_relaxed);
                                  if (i == 13) {
                                    throw std::runtime_error("13");
                                  }
                                }),
               std::runtime_error);
  for (size_t i = 0; i < kCount; ++i) {
    EXPECT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, FirstExceptionWinsWhenSeveralThrow) {
  ThreadPool pool(4);
  // Every index throws; exactly one exception must surface and it must
  // be one of the thrown ones (first capture wins, the rest are dropped).
  bool caught = false;
  try {
    pool.ParallelFor(8, [&](size_t, size_t i) {
      throw std::runtime_error("task " + std::to_string(i));
    });
  } catch (const std::runtime_error& e) {
    caught = true;
    EXPECT_EQ(std::string(e.what()).rfind("task ", 0), 0u) << e.what();
  }
  EXPECT_TRUE(caught);
}

TEST(ThreadPoolTest, PoolIsReusableAfterAThrowingRound) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.ParallelFor(4, [](size_t, size_t) { throw std::logic_error("x"); }),
      std::logic_error);
  // The next round must behave as if nothing happened.
  std::atomic<int> sum{0};
  pool.ParallelFor(10, [&](size_t, size_t i) {
    sum.fetch_add(static_cast<int>(i), std::memory_order_relaxed);
  });
  EXPECT_EQ(sum.load(), 45);
}

TEST(ThreadPoolTest, InlinePathPropagatesExceptionsToo) {
  // num_workers == 1 runs inline on the caller; the contract must match
  // the N-thread path: every index runs, then the first exception
  // surfaces.
  ThreadPool pool(1);
  std::vector<int> hits(8, 0);
  EXPECT_THROW(pool.ParallelFor(8,
                                [&](size_t, size_t i) {
                                  hits[i] = 1;
                                  if (i == 2) throw std::runtime_error("2");
                                }),
               std::runtime_error);
  for (size_t i = 0; i < hits.size(); ++i) {
    EXPECT_EQ(hits[i], 1) << "index " << i;
  }
}

}  // namespace
}  // namespace muve::common
