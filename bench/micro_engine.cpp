// google-benchmark microbenchmarks for the engine kernels behind the
// paper's cost components: binned aggregation (C_t / C_c), raw group-by,
// predicate filtering, and the distance functions (C_d).
//
//   $ ./build/bench/micro_engine [--benchmark_filter=...]

#include <benchmark/benchmark.h>

#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "harness.h"
#include "core/distance.h"
#include "core/distribution.h"
#include "data/nba.h"
#include "storage/binned_group_by.h"
#include "storage/group_by.h"
#include "storage/predicate.h"

namespace {

const muve::data::Dataset& Nba() {
  static const muve::data::Dataset* kDataset =
      new muve::data::Dataset(muve::data::MakeNbaDataset());
  return *kDataset;
}

// C_c analogue: binned aggregation over the whole database, across bin
// counts (the per-candidate query cost of the comparison view).
void BM_BinnedAggregateComparison(benchmark::State& state) {
  const auto& ds = Nba();
  const int bins = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = muve::storage::BinnedAggregate(
        *ds.table, ds.all_rows, "MP", "3PAr",
        muve::storage::AggregateFunction::kSum, bins, 0.0, 1440.0);
    MUVE_CHECK(result.ok());
    benchmark::DoNotOptimize(result->aggregates.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.all_rows.size()));
}
BENCHMARK(BM_BinnedAggregateComparison)->Arg(1)->Arg(4)->Arg(16)->Arg(64)
    ->Arg(256)->Arg(1024);

// C_t analogue: the same query over the (much smaller) target subset.
void BM_BinnedAggregateTarget(benchmark::State& state) {
  const auto& ds = Nba();
  const int bins = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto result = muve::storage::BinnedAggregate(
        *ds.table, ds.target_rows, "MP", "3PAr",
        muve::storage::AggregateFunction::kSum, bins, 0.0, 1440.0);
    MUVE_CHECK(result.ok());
    benchmark::DoNotOptimize(result->aggregates.data());
  }
}
BENCHMARK(BM_BinnedAggregateTarget)->Arg(4)->Arg(64)->Arg(1024);

// Raw group-by (the accuracy objective's non-binned series).
void BM_GroupByAggregate(benchmark::State& state) {
  const auto& ds = Nba();
  for (auto _ : state) {
    auto result = muve::storage::GroupByAggregate(
        *ds.table, ds.all_rows, "MP", "PER",
        muve::storage::AggregateFunction::kAvg);
    MUVE_CHECK(result.ok());
    benchmark::DoNotOptimize(result->aggregates.data());
  }
}
BENCHMARK(BM_GroupByAggregate);

// Predicate filtering (building D_Q from Q's WHERE clause).
void BM_FilterPredicate(benchmark::State& state) {
  const auto& ds = Nba();
  for (auto _ : state) {
    auto pred = muve::storage::MakeComparison(
        "Team", muve::storage::CompareOp::kEq, muve::storage::Value("GSW"));
    auto rows = muve::storage::Filter(*ds.table, pred.get());
    MUVE_CHECK(rows.ok());
    benchmark::DoNotOptimize(rows->data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(ds.table->num_rows()));
}
BENCHMARK(BM_FilterPredicate);

// C_d analogue: distance kernels across distribution sizes.
void BM_Distance(benchmark::State& state) {
  const auto kind = static_cast<muve::core::DistanceKind>(state.range(0));
  const size_t n = static_cast<size_t>(state.range(1));
  muve::common::Rng rng(42);
  std::vector<double> a(n);
  std::vector<double> b(n);
  for (size_t i = 0; i < n; ++i) {
    a[i] = rng.NextDouble();
    b[i] = rng.NextDouble();
  }
  const auto p = muve::core::NormalizeToDistribution(a);
  const auto q = muve::core::NormalizeToDistribution(b);
  for (auto _ : state) {
    benchmark::DoNotOptimize(muve::core::Distance(kind, p, q));
  }
}
BENCHMARK(BM_Distance)
    ->ArgsProduct({{0, 3, 4},  // Euclidean, EMD, KL
                   {4, 64, 1024}});

// Console reporter that additionally captures every finished run into
// the shared BENCH_<name>.json schema when --json-out is active (the
// record fields mirror google-benchmark's own JSON: adjusted real/cpu
// time in the run's time unit, iteration count, items/s when set).
class CapturingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& report) override {
    for (const Run& run : report) {
      if (run.error_occurred) continue;
      std::vector<std::pair<std::string, double>> nums = {
          {"real_time", run.GetAdjustedRealTime()},
          {"cpu_time", run.GetAdjustedCPUTime()},
          {"iterations", static_cast<double>(run.iterations)},
      };
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        nums.emplace_back("items_per_second", items->second.value);
      }
      muve::bench::RecordJsonResult(
          run.benchmark_name(),
          {{"time_unit", benchmark::GetTimeUnitString(run.time_unit)}},
          nums);
    }
    ConsoleReporter::ReportRuns(report);
  }
};

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  CapturingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  return 0;
}
