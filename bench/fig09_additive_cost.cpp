// Figure 9: impact of additive range partitioning on cost (NBA).
//
// Paper findings to reproduce: HC-Linear's cost ignores `step` (it has
// its own halving stepper); Linear(A)-Linear's cost falls ~1/step;
// MuVE(A)-Linear is cheapest at step = 1 (short circuits and early
// terminations fire on the high-utility small-bin views) and approaches
// Linear(A)-Linear at larger steps.

#include <iostream>

#include "core/recommender.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 9: additive range partitioning vs cost (NBA) "
               "===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  // Weight note (also in EXPERIMENTS.md): the paper does not state the
  // alpha setting for Figures 9/10.  Under the global default
  // (aS = 0.6) the usability term provably pins every view's optimal bin
  // count to 1 or 2 — S drops by 0.3 going from b=1 to b=2, more than
  // aD + aA = 0.4 can recoup beyond b=2 — which would flatten these
  // figures entirely.  We therefore use the Example-1 weights
  // (aD, aA, aS) = (0.6, 0.2, 0.2), which exercise the moderate-b regime
  // range partitioning is designed for.
  const muve::core::Weights weights{0.6, 0.2, 0.2};

  muve::bench::TablePrinter table({"step", "HC-Linear(ms)",
                                   "Linear(A)-Linear(ms)",
                                   "MuVE(A)-Linear(ms)",
                                   "MuVE(A)-MuVE(ms)"});
  for (const int step : {1, 2, 4, 8, 16, 32}) {
    auto hc = muve::bench::HcLinear();  // ignores step by construction
    auto linear = muve::bench::LinearLinear();
    auto muve_linear = muve::bench::MuveLinear();
    auto muve_muve = muve::bench::MuveMuve();
    hc.weights = weights;
    linear.weights = muve_linear.weights = muve_muve.weights = weights;
    linear.partition.step = step;
    muve_linear.partition.step = step;
    muve_muve.partition.step = step;

    const auto r_hc = RunScheme(*recommender, hc);
    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);
    table.AddRow({std::to_string(step), Ms(r_hc.cost_ms), Ms(r_lin.cost_ms),
                  Ms(r_ml.cost_ms), Ms(r_mm.cost_ms)});
  }
  table.Print("Figure 9 — NBA: cost vs additive step (Example-1 weights "
              "aD=0.6 aA=0.2 aS=0.2, k = 5), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
  return 0;
}
