// Unit tests for the muved wire layer: the strict JSON document model
// (server/json.h) and the length-prefixed framing (server/protocol.h).

#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"
#include "server/json.h"

namespace muve::server {
namespace {

using muve::common::StatusCode;

// ---------------------------------------------------------------------------
// JSON model.
// ---------------------------------------------------------------------------

TEST(Json, RoundTripsCanonicalDocument) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("k", JsonValue::Int(5));
  doc.Set("utility", JsonValue::Double(0.25));
  doc.Set("name", JsonValue::String("nba"));
  JsonValue weights = JsonValue::Array();
  weights.Append(JsonValue::Double(0.8));
  weights.Append(JsonValue::Double(0.1));
  weights.Append(JsonValue::Double(0.1));
  doc.Set("weights", std::move(weights));
  doc.Set("nothing", JsonValue::Null());

  const std::string text = doc.Write();
  EXPECT_EQ(text,
            "{\"ok\":true,\"k\":5,\"utility\":0.25,\"name\":\"nba\","
            "\"weights\":[0.8,0.1,0.1],\"nothing\":null}");

  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Canonical: serialize(parse(serialize(x))) == serialize(x).
  EXPECT_EQ(parsed->Write(), text);
}

TEST(Json, KeepsIntDoubleDistinction) {
  auto parsed = ParseJson("{\"a\":5,\"b\":5.0,\"c\":5e0,\"d\":-0.0}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("a")->is_int());
  EXPECT_TRUE(parsed->Find("b")->is_double());
  EXPECT_TRUE(parsed->Find("c")->is_double());
  EXPECT_TRUE(parsed->Find("d")->is_double());
  EXPECT_EQ(parsed->Find("a")->int_value(), 5);
  EXPECT_DOUBLE_EQ(parsed->Find("b")->number_value(), 5.0);
  // An integer-valued double serializes with ".0" so the kind survives a
  // round trip (5 and 5.0 must not collapse).
  EXPECT_EQ(parsed->Write(), "{\"a\":5,\"b\":5.0,\"c\":5.0,\"d\":-0.0}");
}

TEST(Json, Int64OverflowIsAParseErrorNotADouble) {
  EXPECT_TRUE(ParseJson("{\"n\":9223372036854775807}").ok());
  auto overflowed = ParseJson("{\"n\":9223372036854775808}");
  EXPECT_FALSE(overflowed.ok());
  EXPECT_EQ(overflowed.status().code(), StatusCode::kParseError);
}

TEST(Json, RejectsDuplicateKeys) {
  auto parsed = ParseJson("{\"k\":1,\"k\":2}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "}", "{]", "[}", "{\"a\":}", "{\"a\" 1}", "{'a':1}",
        "{\"a\":1,}", "[1,]", "{\"a\":1}x", "{\"a\":01}", "{\"a\":+1}",
        "{\"a\":NaN}", "{\"a\":Infinity}", "{\"a\":1e}", "{\"a\":.5}",
        "nul", "tru", "{\"a\":\"\\q\"}", "{\"a\":\"\\ud800\"}"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
}

TEST(Json, NumbersFollowRfc8259NotTheLooserSharedGrammar) {
  // The shared strict parser (common/parse.h) accepts "1." and "1.e5";
  // RFC 8259 does not — frac and exp each require at least one digit.
  for (const char* bad :
       {"[1.]", "[1.e5]", "[-3.]", "[1.E2]", "[2e]", "[2e+]", "[2E-]",
        "[0.]", "[1e++2]", "[1.2.3]"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
  for (const char* good :
       {"[1.0]", "[1.0e5]", "[0.5]", "[-0.25E-2]", "[2e7]", "[1e+2]"}) {
    EXPECT_TRUE(ParseJson(good).ok()) << "rejected: " << good;
  }
}

TEST(Json, NonFiniteDoublesSerializeAsNullNotInvalidJson) {
  // "inf"/"nan" bytes would make the frame unparseable by our own strict
  // parser; null is deterministic and survives the round trip.
  JsonValue doc = JsonValue::Object();
  doc.Set("a", JsonValue::Double(std::numeric_limits<double>::infinity()));
  doc.Set("b", JsonValue::Double(-std::numeric_limits<double>::infinity()));
  doc.Set("c", JsonValue::Double(std::numeric_limits<double>::quiet_NaN()));
  doc.Set("d", JsonValue::Double(1.5));
  const std::string text = doc.Write();
  EXPECT_EQ(text, "{\"a\":null,\"b\":null,\"c\":null,\"d\":1.5}");
  EXPECT_TRUE(ParseJson(text).ok());
}

TEST(Json, DecodesEscapesAndUnicode) {
  auto parsed = ParseJson(
      "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\\ud83d\\ude00\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string& s = parsed->Find("s")->string_value();
  EXPECT_EQ(s, std::string("a\"b\\c\n\tA\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(Json, DepthLimited) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(Json, FindAndSetReplace) {
  JsonValue doc = JsonValue::Object();
  doc.Set("a", JsonValue::Int(1));
  doc.Set("a", JsonValue::Int(2));  // replaces, no duplicate member
  EXPECT_EQ(doc.members().size(), 1u);
  EXPECT_EQ(doc.Find("a")->int_value(), 2);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Framing over a socketpair.
// ---------------------------------------------------------------------------

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, WriteThenReadRoundTrips) {
  ASSERT_TRUE(WriteFrame(fds_[0], "{\"op\":\"ping\"}").ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fds_[1], &payload).ok());
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
}

TEST_F(FramingTest, SequentialFramesKeepBoundaries) {
  ASSERT_TRUE(WriteFrame(fds_[0], "first").ok());
  ASSERT_TRUE(WriteFrame(fds_[0], "second frame").ok());
  std::string a, b;
  ASSERT_TRUE(ReadFrame(fds_[1], &a).ok());
  ASSERT_TRUE(ReadFrame(fds_[1], &b).ok());
  EXPECT_EQ(a, "first");
  EXPECT_EQ(b, "second frame");
}

TEST_F(FramingTest, CleanEofIsNotFound) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, TruncatedFrameIsIoError) {
  // Length prefix promises 100 bytes; only 3 arrive before EOF.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kIoError);
}

TEST_F(FramingTest, ZeroAndOversizedLengthsAreParseErrors) {
  const unsigned char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], zero, 4), 4);
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kParseError);

  // 0xFFFFFFFF length: far past kMaxFrameBytes.
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fds_[0], huge, 4), 4);
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kParseError);
}

TEST_F(FramingTest, RejectsOversizedOutboundPayload) {
  std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(WriteFrame(fds_[0], huge).code(), StatusCode::kInvalidArgument);
}

TEST_F(FramingTest, WriteAfterPeerCloseIsIoErrorNotSigpipe) {
  // The peer disconnects before the response is written — the canonical
  // "client gave up" race.  On an AF_UNIX pair the very first send after
  // the close hits EPIPE, so without MSG_NOSIGNAL this test would die of
  // SIGPIPE instead of failing an assertion.
  ::close(fds_[1]);
  fds_[1] = -1;
  const auto first = WriteFrame(fds_[0], "{\"op\":\"ping\"}");
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  // And again: the error is sticky per-write, never process-fatal.
  EXPECT_EQ(WriteFrame(fds_[0], "{\"op\":\"ping\"}").code(),
            StatusCode::kIoError);
}

TEST_F(FramingTest, LargeFrameSurvivesPartialReads) {
  // 1 MiB frame across a SOCK_STREAM pair exercises the read/write loops
  // (the kernel will split this into many partial transfers).
  std::string big(1 << 20, 'z');
  big[12345] = 'q';
  std::thread writer([this, &big] {
    EXPECT_TRUE(WriteFrame(fds_[0], big).ok());
  });
  std::string payload;
  ASSERT_TRUE(ReadFrame(fds_[1], &payload).ok());
  writer.join();
  EXPECT_EQ(payload, big);
}

TEST(Protocol, ErrorResponseCarriesTypedCodeAndExitCode) {
  const auto status =
      muve::common::Status::DeadlineExceeded("too slow");
  JsonValue response = ErrorResponse(status);
  EXPECT_FALSE(response.Find("ok")->bool_value());
  const JsonValue* error = response.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string_value(), "deadline_exceeded");
  EXPECT_EQ(error->Find("exit_code")->int_value(),
            muve::common::ExitCodeForStatus(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(error->Find("message")->string_value(), "too slow");
}

}  // namespace
}  // namespace muve::server
