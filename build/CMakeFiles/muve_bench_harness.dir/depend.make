# Empty dependencies file for muve_bench_harness.
# This may be replaced when dependencies are built.
