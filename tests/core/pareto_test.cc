#include "core/pareto.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/recommender.h"
#include "test_util.h"

namespace muve::core {
namespace {

ParetoPoint Point(double d, double a, double s) {
  ParetoPoint p;
  p.deviation = d;
  p.accuracy = a;
  p.usability = s;
  return p;
}

TEST(DominatesTest, StrictAndWeakCases) {
  EXPECT_TRUE(Dominates(Point(0.5, 0.5, 0.5), Point(0.4, 0.5, 0.5)));
  EXPECT_TRUE(Dominates(Point(0.6, 0.6, 0.6), Point(0.1, 0.1, 0.1)));
  // Equal points do not dominate each other.
  EXPECT_FALSE(Dominates(Point(0.5, 0.5, 0.5), Point(0.5, 0.5, 0.5)));
  // Trade-offs do not dominate.
  EXPECT_FALSE(Dominates(Point(0.9, 0.1, 0.5), Point(0.1, 0.9, 0.5)));
  EXPECT_FALSE(Dominates(Point(0.1, 0.9, 0.5), Point(0.9, 0.1, 0.5)));
}

TEST(ParetoFrontTest, FiltersDominatedPoints) {
  const std::vector<ParetoPoint> points = {
      Point(0.9, 0.1, 0.1),  // front (best deviation)
      Point(0.1, 0.9, 0.1),  // front (best accuracy)
      Point(0.1, 0.1, 0.9),  // front (best usability)
      Point(0.05, 0.05, 0.05),  // dominated by all three
      Point(0.5, 0.5, 0.5),  // front (balanced)
  };
  const auto front = ParetoFront(points);
  ASSERT_EQ(front.size(), 4u);
  for (const ParetoPoint& p : front) {
    EXPECT_FALSE(p.deviation == 0.05 && p.accuracy == 0.05);
  }
}

TEST(ParetoFrontTest, DuplicatesKeptOnce) {
  const std::vector<ParetoPoint> points = {
      Point(0.5, 0.5, 0.5), Point(0.5, 0.5, 0.5), Point(0.5, 0.5, 0.5)};
  EXPECT_EQ(ParetoFront(points).size(), 1u);
}

TEST(ParetoFrontTest, EmptyAndSingleton) {
  EXPECT_TRUE(ParetoFront({}).empty());
  EXPECT_EQ(ParetoFront({Point(0, 0, 0)}).size(), 1u);
}

TEST(ParetoFrontTest, NoFrontMemberDominatesAnother) {
  common::Rng rng(5);
  std::vector<ParetoPoint> points;
  for (int i = 0; i < 200; ++i) {
    points.push_back(Point(rng.NextDouble(), rng.NextDouble(),
                           rng.NextDouble()));
  }
  const auto front = ParetoFront(points);
  EXPECT_FALSE(front.empty());
  for (size_t i = 0; i < front.size(); ++i) {
    for (size_t j = 0; j < front.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(Dominates(front[i], front[j]))
          << i << " dominates " << j;
    }
  }
  // Every non-front point is dominated by some front member.
  for (const ParetoPoint& p : points) {
    bool on_front = false;
    for (const ParetoPoint& f : front) {
      if (f.deviation == p.deviation && f.accuracy == p.accuracy &&
          f.usability == p.usability) {
        on_front = true;
        break;
      }
    }
    if (on_front) continue;
    bool dominated = false;
    for (const ParetoPoint& f : front) {
      if (Dominates(f, p)) {
        dominated = true;
        break;
      }
    }
    EXPECT_TRUE(dominated);
  }
}

TEST(ComputeParetoFrontTest, WeightedOptimaLieOnTheFront) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto front = ComputeParetoFront(ds);
  ASSERT_TRUE(front.ok()) << front.status().ToString();
  EXPECT_FALSE(front->empty());

  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  // Any strictly-positive weighting's top-1 must be a front member.
  const Weights settings[] = {Weights::PaperDefault(),
                              Weights{0.6, 0.2, 0.2},
                              Weights{0.2, 0.6, 0.2}, Weights::Equal()};
  for (const Weights& weights : settings) {
    SearchOptions options;
    options.weights = weights;
    options.k = 1;
    auto rec = recommender->Recommend(options);
    ASSERT_TRUE(rec.ok());
    ASSERT_FALSE(rec->views.empty());
    const ScoredView& top = rec->views.front();
    bool found = false;
    for (const ParetoPoint& p : *front) {
      if (p.view == top.view && p.bins == top.bins) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << weights.ToString() << " top-1 "
                       << top.ToString() << " not on the Pareto front";
  }
}

TEST(ComputeParetoFrontTest, FrontIsSmallFractionOfCandidates) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto front = ComputeParetoFront(ds);
  ASSERT_TRUE(front.ok());
  // 8 views x (29 or 9) bins = 152 candidates; dominance should prune
  // most of them.
  EXPECT_LT(front->size(), 80u);
  EXPECT_GE(front->size(), 1u);
}

}  // namespace
}  // namespace muve::core
