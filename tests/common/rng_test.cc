#include "common/rng.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <vector>

namespace muve::common {
namespace {

TEST(RngTest, SameSeedSameSequence) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextUint64(), b.NextUint64());
  }
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.NextUint64() == b.NextUint64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, UniformIntStaysInClosedRange) {
  Rng rng(11);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(13);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(rng.UniformInt(4, 4), 4);
  }
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(0, 9));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, NormalHasRoughlyCorrectMoments) {
  Rng rng(19);
  const int n = 20000;
  double sum = 0.0;
  double sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Normal(5.0, 2.0);
    sum += v;
    sum_sq += v * v;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 5.0, 0.1);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.1);
}

TEST(RngTest, ClampedNormalRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 5000; ++i) {
    const double v = rng.ClampedNormal(0.0, 10.0, -1.0, 1.0);
    EXPECT_GE(v, -1.0);
    EXPECT_LE(v, 1.0);
  }
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(29);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(31);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.02);
}

TEST(RngTest, WeightedIndexSkewsTowardsHeavyWeights) {
  Rng rng(37);
  std::vector<double> weights = {1.0, 0.0, 9.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 10000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[1], 0);
  EXPECT_GT(counts[2], counts[0] * 5);
}

TEST(RngTest, WeightedIndexAllZeroReturnsZero) {
  Rng rng(41);
  std::vector<double> weights = {0.0, 0.0};
  EXPECT_EQ(rng.WeightedIndex(weights), 0u);
}

TEST(RngTest, ExponentialIsPositiveWithCorrectMean) {
  Rng rng(43);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Exponential(2.0);
    EXPECT_GT(v, 0.0);
    sum += v;
  }
  EXPECT_NEAR(sum / n, 0.5, 0.03);
}

TEST(RngTest, ShuffleIsAPermutation) {
  Rng rng(47);
  std::vector<int> items = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<int> shuffled = items;
  rng.Shuffle(&shuffled);
  std::sort(shuffled.begin(), shuffled.end());
  EXPECT_EQ(shuffled, items);
}

TEST(RngTest, ShuffleEmptyAndSingleton) {
  Rng rng(53);
  std::vector<int> empty;
  rng.Shuffle(&empty);
  EXPECT_TRUE(empty.empty());
  std::vector<int> one = {9};
  rng.Shuffle(&one);
  EXPECT_EQ(one, std::vector<int>{9});
}

}  // namespace
}  // namespace muve::common
