# Empty compiler generated dependencies file for muve_storage.
# This may be replaced when dependencies are built.
