// muve_datagen — export the bundled synthetic datasets as CSV files so
// they can be inspected, loaded into other tools, or fed back through
// `muve_cli --csv=...`.
//
//   $ muve_datagen --out=/tmp/muve_data [--seed=N]
//   /tmp/muve_data/diab.csv   (768 rows, UCI Pima schema)
//   /tmp/muve_data/nba.csv    (651 rows, 2015 NBA advanced-stats schema)

#include <iostream>
#include <limits>
#include <string>

#include "common/parse.h"
#include "common/string_util.h"
#include "data/diab.h"
#include "data/nba.h"
#include "storage/csv.h"

int main(int argc, char** argv) {
  std::string out_dir = ".";
  uint64_t diab_seed = muve::data::kDiabDefaultSeed;
  uint64_t nba_seed = muve::data::kNbaDefaultSeed;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (muve::common::StartsWith(arg, "--out=")) {
      out_dir = arg.substr(6);
    } else if (muve::common::StartsWith(arg, "--seed=")) {
      auto seed = muve::common::ParseFlagInt64(
          "--seed", arg.substr(7), 0, std::numeric_limits<int64_t>::max());
      if (!seed.ok()) {
        std::cerr << seed.status().message() << "\n";
        return 2;
      }
      diab_seed = static_cast<uint64_t>(*seed);
      nba_seed = diab_seed;
    } else {
      std::cerr << "usage: muve_datagen [--out=DIR] [--seed=N]\n";
      return 2;
    }
  }

  const muve::data::Dataset diab = muve::data::MakeDiabDataset(diab_seed);
  const muve::data::Dataset nba = muve::data::MakeNbaDataset(nba_seed);
  const std::string diab_path = out_dir + "/diab.csv";
  const std::string nba_path = out_dir + "/nba.csv";

  if (auto st = muve::storage::WriteCsvFile(*diab.table, diab_path);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  if (auto st = muve::storage::WriteCsvFile(*nba.table, nba_path);
      !st.ok()) {
    std::cerr << st.ToString() << "\n";
    return 1;
  }
  std::cout << "wrote " << diab_path << " (" << diab.table->num_rows()
            << " rows) and " << nba_path << " (" << nba.table->num_rows()
            << " rows)\n"
            << "example: muve_cli --csv=" << nba_path
            << " --dims=MP,G,Age --measures=3PAr,PER,TS_pct "
            << "\"--predicate=Team = 'GSW'\"\n";
  return 0;
}
