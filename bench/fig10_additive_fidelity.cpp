// Figure 10: impact of additive range partitioning on fidelity (NBA).
//
// Paper findings to reproduce: HC-Linear's fidelity is insensitive to
// `step` and stays below ~50% (local maxima); Linear(A)-Linear,
// MuVE(A)-Linear, and MuVE(A)-MuVE share the same fidelity decay pattern
// as `step` grows (the three agree exactly — only HC is heuristic).

#include <iostream>

#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Pct;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 10: additive range partitioning vs fidelity "
               "(NBA) ===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  // Example-1 weights; see fig09_additive_cost.cpp and EXPERIMENTS.md for
  // why the global default (aS = 0.6) would degenerate this figure.
  const muve::core::Weights weights{0.6, 0.2, 0.2};

  // The optimal baseline: exhaustive Linear-Linear at step = 1.
  auto optimal_options = muve::bench::LinearLinear();
  optimal_options.weights = weights;
  const auto optimal = RunScheme(*recommender, optimal_options);

  muve::bench::TablePrinter table({"step", "HC-Linear", "Linear(A)-Linear",
                                   "MuVE(A)-Linear", "MuVE(A)-MuVE"});
  for (const int step : {1, 2, 4, 8, 16, 32}) {
    auto hc = muve::bench::HcLinear();
    auto linear = muve::bench::LinearLinear();
    auto muve_linear = muve::bench::MuveLinear();
    auto muve_muve = muve::bench::MuveMuve();
    hc.weights = weights;
    linear.weights = muve_linear.weights = muve_muve.weights = weights;
    linear.partition.step = step;
    muve_linear.partition.step = step;
    muve_muve.partition.step = step;

    const auto r_hc = RunScheme(*recommender, hc);
    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);

    const auto& opt = optimal.recommendation.views;
    table.AddRow(
        {std::to_string(step),
         Pct(muve::core::Fidelity(opt, r_hc.recommendation.views)),
         Pct(muve::core::Fidelity(opt, r_lin.recommendation.views)),
         Pct(muve::core::Fidelity(opt, r_ml.recommendation.views)),
         Pct(muve::core::Fidelity(opt, r_mm.recommendation.views))});
  }
  table.Print("Figure 10 — NBA: fidelity vs additive step (vs exhaustive "
              "Linear-Linear at step 1)");
  return 0;
}
