# Empty compiler generated dependencies file for ablate_probe_order.
# This may be replaced when dependencies are built.
