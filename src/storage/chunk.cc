#include "storage/chunk.h"

#include <cmath>

namespace muve::storage {

void ColumnChunk::AppendString(const std::string& v) {
  MUVE_DCHECK(type_ == ValueType::kString && !full());
  const auto [it, inserted] =
      dict_index_.emplace(v, static_cast<uint32_t>(dict_.size()));
  if (inserted) dict_.push_back(v);
  codes_.push_back(it->second);
  valid_.PushBack(true);
}

void ColumnChunk::AppendNull() {
  MUVE_DCHECK(!full());
  switch (type_) {
    case ValueType::kInt64:
      ints_.push_back(0);
      break;
    case ValueType::kDouble:
      doubles_.push_back(0.0);
      break;
    case ValueType::kString:
      codes_.push_back(kNoCode);
      break;
    case ValueType::kNull:
      break;
  }
  valid_.PushBack(false);
  ++null_count_;
}

void ColumnChunk::ObserveNumeric(double v) {
  if (std::isnan(v)) {
    has_nan_ = true;
    return;
  }
  if (!has_range_) {
    min_ = max_ = v;
    has_range_ = true;
    return;
  }
  if (v < min_) min_ = v;
  if (v > max_) max_ = v;
}

size_t ColumnChunk::ApproxBytes() const {
  size_t bytes = sizeof(ColumnChunk);
  bytes += ints_.capacity() * sizeof(int64_t);
  bytes += doubles_.capacity() * sizeof(double);
  bytes += codes_.capacity() * sizeof(uint32_t);
  bytes += (valid_.num_words()) * sizeof(uint64_t);
  for (const std::string& s : dict_) {
    bytes += sizeof(std::string) + s.capacity();
  }
  // Dictionary index: buckets plus one node per entry (rough hash-map
  // model; the point is order-of-magnitude memory observability).
  bytes += dict_index_.bucket_count() * sizeof(void*);
  bytes += dict_index_.size() * (sizeof(std::string) + 2 * sizeof(void*) +
                                 sizeof(uint32_t));
  return bytes;
}

}  // namespace muve::storage
