
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/muve_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/muve_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/diab.cc" "src/data/CMakeFiles/muve_data.dir/diab.cc.o" "gcc" "src/data/CMakeFiles/muve_data.dir/diab.cc.o.d"
  "/root/repo/src/data/nba.cc" "src/data/CMakeFiles/muve_data.dir/nba.cc.o" "gcc" "src/data/CMakeFiles/muve_data.dir/nba.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/storage/CMakeFiles/muve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/muve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
