file(REMOVE_RECURSE
  "libmuve_bench_harness.a"
)
