#include "core/distribution.h"

#include <cmath>

namespace muve::core {

std::vector<double> NormalizeToDistribution(
    const std::vector<double>& aggregates) {
  std::vector<double> p(aggregates.size());
  if (aggregates.empty()) return p;
  double total = 0.0;
  for (size_t i = 0; i < aggregates.size(); ++i) {
    p[i] = aggregates[i] > 0.0 ? aggregates[i] : 0.0;
    total += p[i];
  }
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(p.size());
    for (double& v : p) v = uniform;
    return p;
  }
  for (double& v : p) v /= total;
  return p;
}

bool IsDistribution(const std::vector<double>& p, double tolerance) {
  double total = 0.0;
  for (double v : p) {
    if (v < -tolerance || std::isnan(v)) return false;
    total += v;
  }
  return std::abs(total - 1.0) <= tolerance;
}

}  // namespace muve::core
