// Zone-map / chunked FilterInto fuzz suite: on randomized multi-chunk
// tables (tiny chunks, NULLs, NaN, string dictionaries) FilterInto must
// select exactly the rows the per-row Matches oracle selects, for
// arbitrary predicate trees — chunk skipping and bulk acceptance are
// pure optimizations, never visible in the result.

#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "gtest/gtest.h"
#include "storage/predicate.h"
#include "storage/schema.h"
#include "storage/table.h"
#include "storage/value.h"

namespace muve::storage {
namespace {

constexpr size_t kChunkRows = 8;

Schema FuzzSchema() {
  return Schema({Field("di", ValueType::kInt64, FieldRole::kDimension),
                 Field("dd", ValueType::kDouble, FieldRole::kDimension),
                 Field("ds", ValueType::kString, FieldRole::kNone)});
}

const char* kStrings[] = {"ant", "bee", "cat", "dog", "elk"};

Table MakeFuzzTable(common::Rng* rng, size_t rows) {
  Table t(FuzzSchema(), kChunkRows);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<Value> row;
    // Clustered-ish int values so zone maps actually discriminate
    // between chunks, with occasional NULLs.
    if (rng->Bernoulli(0.08)) {
      row.push_back(Value::Null());
    } else {
      row.push_back(Value(static_cast<int64_t>(i / kChunkRows) * 10 +
                          rng->UniformInt(0, 9)));
    }
    if (rng->Bernoulli(0.08)) {
      row.push_back(Value::Null());
    } else if (rng->Bernoulli(0.05)) {
      row.push_back(Value(std::nan("")));
    } else {
      row.push_back(Value(rng->Uniform(-50.0, 50.0)));
    }
    if (rng->Bernoulli(0.08)) {
      row.push_back(Value::Null());
    } else {
      // Per-chunk dictionary diversity: later chunks drop some strings
      // so absent-literal chunk skipping triggers.
      const int64_t hi = 4 - static_cast<int64_t>((i / kChunkRows) % 3);
      row.push_back(Value(kStrings[rng->UniformInt(0, hi)]));
    }
    EXPECT_TRUE(t.AppendRow(row).ok());
  }
  return t;
}

Value RandomLiteral(common::Rng* rng, int column) {
  switch (column) {
    case 0:
      return Value(rng->UniformInt(-5, 130));
    case 1:
      return Value(rng->Uniform(-60.0, 60.0));
    default:
      return Value(kStrings[rng->UniformInt(0, 4)]);
  }
}

PredicatePtr RandomPredicate(common::Rng* rng, int depth) {
  const char* columns[] = {"di", "dd", "ds"};
  if (depth > 0 && rng->Bernoulli(0.45)) {
    switch (rng->UniformInt(0, 2)) {
      case 0:
        return MakeAnd(RandomPredicate(rng, depth - 1),
                       RandomPredicate(rng, depth - 1));
      case 1:
        return MakeOr(RandomPredicate(rng, depth - 1),
                      RandomPredicate(rng, depth - 1));
      default:
        return MakeNot(RandomPredicate(rng, depth - 1));
    }
  }
  const int column = static_cast<int>(rng->UniformInt(0, 2));
  switch (rng->UniformInt(0, 3)) {
    case 0: {
      const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe,
                               CompareOp::kLt, CompareOp::kLe,
                               CompareOp::kGt, CompareOp::kGe};
      return MakeComparison(columns[column], ops[rng->UniformInt(0, 5)],
                            RandomLiteral(rng, column));
    }
    case 1: {
      if (column == 2) {
        return MakeInList("ds", {RandomLiteral(rng, 2), RandomLiteral(rng, 2)});
      }
      Value lo = RandomLiteral(rng, column);
      Value hi = RandomLiteral(rng, column);
      return MakeBetween(columns[column], lo, hi);
    }
    case 2:
      return MakeInList(columns[column],
                        {RandomLiteral(rng, column),
                         RandomLiteral(rng, column),
                         RandomLiteral(rng, column)});
    default:
      return MakeIsNull(columns[column], rng->Bernoulli(0.5));
  }
}

TEST(ZoneMapFuzzTest, FilterIntoMatchesOracleOnChunkedTables) {
  common::Rng rng(0xF0221);
  for (int iter = 0; iter < 150; ++iter) {
    const size_t rows = static_cast<size_t>(rng.UniformInt(1, 96));
    Table table = MakeFuzzTable(&rng, rows);
    PredicatePtr pred = RandomPredicate(&rng, 3);
    ASSERT_TRUE(pred->Bind(table.schema()).ok()) << pred->ToString();

    const RowSet all = AllRows(rows);
    RowSet got;
    FilterStats stats;
    pred->FilterInto(table, all, &got, &stats);

    RowSet expected;
    for (size_t i = 0; i < rows; ++i) {
      if (pred->Matches(table, i)) {
        expected.push_back(static_cast<uint32_t>(i));
      }
    }
    ASSERT_EQ(got, expected) << "iter " << iter << ": " << pred->ToString();

    // rows_in / rows_out accounting lives in the free Filter wrapper
    // (FilterInto itself only counts chunk skips).
    FilterStats wrapper_stats;
    auto via_wrapper = Filter(table, pred.get(), nullptr, &wrapper_stats);
    ASSERT_TRUE(via_wrapper.ok());
    EXPECT_EQ(*via_wrapper, expected)
        << "iter " << iter << ": " << pred->ToString();
    EXPECT_EQ(wrapper_stats.rows_in, static_cast<int64_t>(rows));
    EXPECT_EQ(wrapper_stats.rows_out, static_cast<int64_t>(expected.size()));

    // Restricting candidates to a subset must intersect, preserving
    // order — chunk-run decomposition may not disturb sparse inputs.
    RowSet sparse;
    for (size_t i = 0; i < rows; i += 3) {
      sparse.push_back(static_cast<uint32_t>(i));
    }
    RowSet got_sparse;
    pred->FilterInto(table, sparse, &got_sparse, nullptr);
    RowSet expected_sparse;
    for (const uint32_t r : sparse) {
      if (pred->Matches(table, r)) expected_sparse.push_back(r);
    }
    ASSERT_EQ(got_sparse, expected_sparse)
        << "iter " << iter << ": " << pred->ToString();
  }
}

// Clustered data + range predicate: most chunks decide wholesale.
TEST(ZoneMapFuzzTest, SelectiveRangePredicateSkipsChunks) {
  Table t(Schema({Field("day", ValueType::kInt64, FieldRole::kNone)}),
          kChunkRows);
  for (int64_t i = 0; i < 64; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i / 8)}).ok());  // day == chunk index
  }
  PredicatePtr pred =
      MakeComparison("day", CompareOp::kGe, Value(int64_t{6}));
  ASSERT_TRUE(pred->Bind(t.schema()).ok());

  RowSet got;
  FilterStats stats;
  pred->FilterInto(t, AllRows(64), &got, &stats);
  ASSERT_EQ(got.size(), 16u);  // days 6 and 7
  EXPECT_EQ(got.front(), 48u);
  // Chunks 0..5 fail the zone map outright.
  EXPECT_EQ(stats.chunks_skipped, 6);
}

TEST(ZoneMapFuzzTest, AbsentStringLiteralSkipsChunk) {
  Table t(Schema({Field("s", ValueType::kString, FieldRole::kNone)}),
          kChunkRows);
  // Chunk 0: only "ant"/"bee".  Chunk 1: only "cat".
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t.AppendRow({Value(i % 2 == 0 ? "ant" : "bee")}).ok());
  }
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(t.AppendRow({Value("cat")}).ok());
  }
  PredicatePtr pred = MakeComparison("s", CompareOp::kEq, Value("cat"));
  ASSERT_TRUE(pred->Bind(t.schema()).ok());

  RowSet got;
  FilterStats stats;
  pred->FilterInto(t, AllRows(16), &got, &stats);
  ASSERT_EQ(got.size(), 8u);
  EXPECT_EQ(got.front(), 8u);
  EXPECT_GE(stats.chunks_skipped, 1);  // chunk 0 lacks "cat"
}

// A chunk containing NaN can never be skipped for `!=` nor bulk-accepted:
// NaN cells satisfy every `!=` comparison but no ordering comparison.
TEST(ZoneMapFuzzTest, NaNChunksAreNeverDecidedWholesale) {
  Table t(Schema({Field("x", ValueType::kDouble, FieldRole::kNone)}),
          kChunkRows);
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(
        t.AppendRow({Value(i == 3 ? std::nan("") : 5.0)}).ok());
  }
  for (const CompareOp op :
       {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt, CompareOp::kGe}) {
    PredicatePtr pred = MakeComparison("x", op, Value(5.0));
    ASSERT_TRUE(pred->Bind(t.schema()).ok());
    RowSet got;
    pred->FilterInto(t, AllRows(8), &got, nullptr);
    RowSet expected;
    for (size_t i = 0; i < 8; ++i) {
      if (pred->Matches(t, i)) expected.push_back(static_cast<uint32_t>(i));
    }
    EXPECT_EQ(got, expected) << CompareOpSymbol(op);
  }
}

}  // namespace
}  // namespace muve::storage
