#include "storage/predicate.h"

#include <utility>

namespace muve::storage {

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

class ComparisonPredicate final : public Predicate {
 public:
  ComparisonPredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    bound_ = true;
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null() || literal_.is_null()) return false;
    switch (op_) {
      case CompareOp::kEq:
        return v == literal_;
      case CompareOp::kNe:
        return v != literal_;
      case CompareOp::kLt:
        return v < literal_;
      case CompareOp::kLe:
        return v < literal_ || v == literal_;
      case CompareOp::kGt:
        return literal_ < v;
      case CompareOp::kGe:
        return literal_ < v || v == literal_;
    }
    return false;
  }

  std::string ToString() const override {
    return column_ + " " + CompareOpSymbol(op_) + " " + literal_.ToString();
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
  size_t index_ = 0;
  bool bound_ = false;
};

class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null() || lo_.is_null() || hi_.is_null()) return false;
    const bool ge_lo = lo_ < v || v == lo_;
    const bool le_hi = v < hi_ || v == hi_;
    return ge_lo && le_hi;
  }

  std::string ToString() const override {
    return column_ + " BETWEEN " + lo_.ToString() + " AND " + hi_.ToString();
  }

 private:
  std::string column_;
  Value lo_;
  Value hi_;
  size_t index_ = 0;
};

class InListPredicate final : public Predicate {
 public:
  InListPredicate(std::string column, std::vector<Value> values)
      : column_(std::move(column)), values_(std::move(values)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null()) return false;
    for (const Value& candidate : values_) {
      if (v == candidate) return true;
    }
    return false;
  }

  std::string ToString() const override {
    std::string out = column_ + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    return out + ")";
  }

 private:
  std::string column_;
  std::vector<Value> values_;
  size_t index_ = 0;
};

class IsNullPredicate final : public Predicate {
 public:
  IsNullPredicate(std::string column, bool negate)
      : column_(std::move(column)), negate_(negate) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    return table.column(index_).IsNull(row) != negate_;
  }

  std::string ToString() const override {
    return column_ + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

 private:
  std::string column_;
  bool negate_;
  size_t index_ = 0;
};

class BinaryLogicalPredicate final : public Predicate {
 public:
  enum class Kind { kAnd, kOr };

  BinaryLogicalPredicate(Kind kind, PredicatePtr lhs, PredicatePtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_RETURN_IF_ERROR(lhs_->Bind(schema));
    return rhs_->Bind(schema);
  }

  bool Matches(const Table& table, size_t row) const override {
    if (kind_ == Kind::kAnd) {
      return lhs_->Matches(table, row) && rhs_->Matches(table, row);
    }
    return lhs_->Matches(table, row) || rhs_->Matches(table, row);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() +
           (kind_ == Kind::kAnd ? " AND " : " OR ") + rhs_->ToString() + ")";
  }

 private:
  Kind kind_;
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}

  common::Status Bind(const Schema& schema) override {
    return inner_->Bind(schema);
  }

  bool Matches(const Table& table, size_t row) const override {
    return !inner_->Matches(table, row);
  }

  std::string ToString() const override {
    return "NOT (" + inner_->ToString() + ")";
  }

 private:
  PredicatePtr inner_;
};

class TruePredicate final : public Predicate {
 public:
  common::Status Bind(const Schema&) override { return common::Status::OK(); }
  bool Matches(const Table&, size_t) const override { return true; }
  std::string ToString() const override { return "TRUE"; }
};

}  // namespace

PredicatePtr MakeComparison(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparisonPredicate>(std::move(column), op,
                                               std::move(literal));
}

PredicatePtr MakeBetween(std::string column, Value lo, Value hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}

PredicatePtr MakeInList(std::string column, std::vector<Value> values) {
  return std::make_unique<InListPredicate>(std::move(column),
                                           std::move(values));
}

PredicatePtr MakeIsNull(std::string column, bool negate) {
  return std::make_unique<IsNullPredicate>(std::move(column), negate);
}

PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_unique<BinaryLogicalPredicate>(
      BinaryLogicalPredicate::Kind::kAnd, std::move(lhs), std::move(rhs));
}

PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_unique<BinaryLogicalPredicate>(
      BinaryLogicalPredicate::Kind::kOr, std::move(lhs), std::move(rhs));
}

PredicatePtr MakeNot(PredicatePtr inner) {
  return std::make_unique<NotPredicate>(std::move(inner));
}

PredicatePtr MakeTrue() { return std::make_unique<TruePredicate>(); }

common::Result<RowSet> Filter(const Table& table, Predicate* pred,
                              const RowSet* base) {
  MUVE_RETURN_IF_ERROR(pred->Bind(table.schema()));
  RowSet out;
  if (base != nullptr) {
    for (uint32_t row : *base) {
      if (pred->Matches(table, row)) out.push_back(row);
    }
  } else {
    const size_t n = table.num_rows();
    for (size_t row = 0; row < n; ++row) {
      if (pred->Matches(table, row)) out.push_back(static_cast<uint32_t>(row));
    }
  }
  return out;
}

}  // namespace muve::storage
