// Figure 5: impact of alpha_D and alpha_S on cost, while alpha_A = 0.2.
//
// Paper findings to reproduce (Figures 5a DIAB / 5b NBA):
//   * Linear-Linear is flat across alpha_S (exhaustive, weight-oblivious);
//   * MuVE-Linear and MuVE-MuVE match Linear-Linear at low alpha_S but
//     drop sharply as alpha_S grows (>70% cheaper at alpha_S > 0.5 on
//     DIAB); MuVE-MuVE cuts further below MuVE-Linear (~70% at
//     alpha_S = 0.6 on NBA).

#include <iostream>

#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

namespace {

using muve::bench::LinearLinear;
using muve::bench::Ms;
using muve::bench::MuveLinear;
using muve::bench::MuveMuve;
using muve::bench::RunScheme;
using muve::bench::TablePrinter;

void RunDataset(const muve::data::Dataset& dataset, const char* figure) {
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  TablePrinter table({"alpha_S", "alpha_D", "Linear-Linear(ms)",
                      "MuVE-Linear(ms)", "MuVE-MuVE(ms)",
                      "MuVE-MuVE savings"});
  double linear_at_low = 0.0;
  for (const double alpha_s : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const double alpha_d = 0.8 - alpha_s;  // alpha_A fixed at 0.2
    const muve::core::Weights weights{alpha_d, 0.2, alpha_s};

    auto linear = LinearLinear();
    auto muve_linear = MuveLinear();
    auto muve_muve = MuveMuve();
    linear.weights = muve_linear.weights = muve_muve.weights = weights;

    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);
    if (linear_at_low == 0.0) linear_at_low = r_lin.cost_ms;

    table.AddRow({muve::common::FormatDouble(alpha_s, 1),
                  muve::common::FormatDouble(alpha_d, 1), Ms(r_lin.cost_ms),
                  Ms(r_ml.cost_ms), Ms(r_mm.cost_ms),
                  muve::bench::Pct(1.0 - r_mm.cost_ms / r_lin.cost_ms)});
  }
  table.Print(std::string("Figure ") + figure + " — " + dataset.name +
              ": cost vs alpha_S (alpha_A = 0.2, k = 5, Euclidean), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
}

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  std::cout << "=== Figure 5: impact of alpha_S on cost ===\n";
  RunDataset(muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3), "5a");
  RunDataset(muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3,
                                          3),
             "5b");
  return 0;
}
