// Figure 6: impact of alpha_A and alpha_D on cost, while alpha_S = 0.2.
//
// Paper findings to reproduce:
//   * 6a/6b (DIAB/NBA cost): MuVE-MuVE offers the lowest cost, especially
//     where alpha_D is low / alpha_A is high (accurate interesting views
//     raise U_seen early and prune the rest);
//   * 6c (DIAB fully probed views): MuVE-MuVE fully probes very few views
//     at high alpha_D, but that saves less wall-clock than pruning at high
//     alpha_A does, because a deviation probe (C_t + C_c + C_d) costs more
//     than an accuracy probe (C_t + C_a).

#include <iostream>

#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

namespace {

using muve::bench::LinearLinear;
using muve::bench::Ms;
using muve::bench::MuveLinear;
using muve::bench::MuveMuve;
using muve::bench::RunScheme;
using muve::bench::TablePrinter;

void RunDataset(const muve::data::Dataset& dataset, const char* figure,
                bool report_probes) {
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  TablePrinter cost_table({"alpha_D", "alpha_A", "Linear-Linear(ms)",
                           "MuVE-Linear(ms)", "MuVE-MuVE(ms)"});
  TablePrinter probe_table({"alpha_D", "alpha_A", "Linear-Linear",
                            "MuVE-Linear", "MuVE-MuVE"});
  for (const double alpha_d : {0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7}) {
    const double alpha_a = 0.8 - alpha_d;  // alpha_S fixed at 0.2
    const muve::core::Weights weights{alpha_d, alpha_a, 0.2};

    auto linear = LinearLinear();
    auto muve_linear = MuveLinear();
    auto muve_muve = MuveMuve();
    linear.weights = muve_linear.weights = muve_muve.weights = weights;

    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);

    cost_table.AddRow({muve::common::FormatDouble(alpha_d, 1),
                       muve::common::FormatDouble(alpha_a, 1),
                       Ms(r_lin.cost_ms), Ms(r_ml.cost_ms),
                       Ms(r_mm.cost_ms)});
    probe_table.AddRow({muve::common::FormatDouble(alpha_d, 1),
                        muve::common::FormatDouble(alpha_a, 1),
                        std::to_string(r_lin.stats.fully_probed),
                        std::to_string(r_ml.stats.fully_probed),
                        std::to_string(r_mm.stats.fully_probed)});
  }
  cost_table.Print(std::string("Figure ") + figure + " — " + dataset.name +
                   ": cost vs alpha_D (alpha_S = 0.2, k = 5), mean of " +
                   std::to_string(muve::bench::Repetitions()) + " runs");
  if (report_probes) {
    probe_table.Print(
        "Figure 6c — DIAB: fully probed views (deviation AND accuracy "
        "evaluated) vs alpha_D");
  }
}

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  std::cout << "=== Figure 6: impact of alpha_D on cost and probes ===\n";
  RunDataset(muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3), "6a", /*report_probes=*/true);
  RunDataset(muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3,
                                          3),
             "6b", /*report_probes=*/false);
  return 0;
}
