// Word-addressable validity bitmap.
//
// Replaces the `std::vector<bool>` null mask previously embedded in
// Column.  The layout is the conventional columnar one (Arrow-style):
// bit i of word i/64 is 1 when cell i is valid (non-NULL), with bit
// index i%64 counted from the least-significant bit.  Tail bits past
// size() are kept at 0 so word-level operations (population counts,
// null-skip in scan kernels) never need per-call masking.
//
// Why not std::vector<bool>: proxy references defeat vectorization and
// make word-at-a-time access (the fast path of the fused scan engine's
// null-skip and of CountValid) impossible without bit-by-bit loops.

#ifndef MUVE_STORAGE_VALIDITY_BITMAP_H_
#define MUVE_STORAGE_VALIDITY_BITMAP_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/logging.h"

namespace muve::storage {

class ValidityBitmap {
 public:
  ValidityBitmap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // True when cell `i` is valid (non-NULL).
  bool Get(size_t i) const {
    MUVE_DCHECK(i < size_);
    return (words_[i >> 6] >> (i & 63)) & 1u;
  }

  void PushBack(bool valid) {
    const size_t word = size_ >> 6;
    if (word == words_.size()) words_.push_back(0);
    if (valid) words_[word] |= uint64_t{1} << (size_ & 63);
    ++size_;
  }

  void Set(size_t i, bool valid) {
    MUVE_DCHECK(i < size_);
    const uint64_t mask = uint64_t{1} << (i & 63);
    if (valid) {
      words_[i >> 6] |= mask;
    } else {
      words_[i >> 6] &= ~mask;
    }
  }

  void Reserve(size_t n) { words_.reserve((n + 63) >> 6); }

  void Clear() {
    words_.clear();
    size_ = 0;
  }

  // Number of set (valid) bits.  O(words): tail bits are invariantly 0.
  size_t CountValid() const {
    size_t n = 0;
    for (const uint64_t w : words_) n += Popcount(w);
    return n;
  }

  size_t CountNull() const { return size_ - CountValid(); }

  // True when every cell is valid — lets scan kernels skip the per-row
  // null test entirely (the common case: most benchmark columns have no
  // NULLs at all).
  bool AllValid() const { return CountValid() == size_; }

  // Raw word access for word-at-a-time kernels.  The final word's bits
  // at positions >= size() % 64 are guaranteed 0.
  const uint64_t* words() const { return words_.data(); }
  size_t num_words() const { return words_.size(); }

  static size_t Popcount(uint64_t w) {
#if defined(__GNUC__) || defined(__clang__)
    return static_cast<size_t>(__builtin_popcountll(w));
#else
    size_t n = 0;
    while (w != 0) {
      w &= w - 1;
      ++n;
    }
    return n;
#endif
  }

 private:
  std::vector<uint64_t> words_;
  size_t size_ = 0;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_VALIDITY_BITMAP_H_
