#include "core/partitioner.h"

#include <gtest/gtest.h>

namespace muve::core {
namespace {

TEST(PartitionerTest, DefaultAdditiveIsFullDomain) {
  const auto domain = BinDomain(PartitionSpec{}, 5);
  EXPECT_EQ(domain, (std::vector<int>{1, 2, 3, 4, 5}));
}

TEST(PartitionerTest, AdditiveStep) {
  PartitionSpec spec;
  spec.step = 3;
  EXPECT_EQ(BinDomain(spec, 10), (std::vector<int>{1, 4, 7, 10}));
  spec.step = 4;
  EXPECT_EQ(BinDomain(spec, 10), (std::vector<int>{1, 5, 9}));
}

TEST(PartitionerTest, Geometric) {
  PartitionSpec spec;
  spec.kind = PartitionKind::kGeometric;
  EXPECT_EQ(BinDomain(spec, 20), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(BinDomain(spec, 16), (std::vector<int>{1, 2, 4, 8, 16}));
  EXPECT_EQ(BinDomain(spec, 1), (std::vector<int>{1}));
}

TEST(PartitionerTest, MinimalDomains) {
  EXPECT_EQ(BinDomain(PartitionSpec{}, 1), (std::vector<int>{1}));
  PartitionSpec big_step;
  big_step.step = 100;
  EXPECT_EQ(BinDomain(big_step, 10), (std::vector<int>{1}));
}

TEST(PartitionerTest, DomainsAreAscending) {
  for (const PartitionKind kind :
       {PartitionKind::kAdditive, PartitionKind::kGeometric}) {
    for (int step : {1, 2, 5}) {
      PartitionSpec spec;
      spec.kind = kind;
      spec.step = step;
      const auto domain = BinDomain(spec, 100);
      for (size_t i = 1; i < domain.size(); ++i) {
        EXPECT_GT(domain[i], domain[i - 1]);
      }
      EXPECT_EQ(domain.front(), 1);
      EXPECT_LE(domain.back(), 100);
    }
  }
}

TEST(PartitionerTest, GeometricLargeMaxBinsNoOverflow) {
  PartitionSpec spec;
  spec.kind = PartitionKind::kGeometric;
  const auto domain = BinDomain(spec, 1 << 30);
  EXPECT_EQ(domain.size(), 31u);
  EXPECT_EQ(domain.back(), 1 << 30);
}

TEST(PartitionSpecTest, IsDefault) {
  EXPECT_TRUE(PartitionSpec{}.IsDefault());
  PartitionSpec stepped;
  stepped.step = 2;
  EXPECT_FALSE(stepped.IsDefault());
  PartitionSpec geo;
  geo.kind = PartitionKind::kGeometric;
  EXPECT_FALSE(geo.IsDefault());
}

}  // namespace
}  // namespace muve::core
