// NEON kernel table: 2-lane double ports of the simple reduction
// kernels for aarch64 builds.  Only compiled when the build enables
// MUVE_SIMD_NEON (aarch64 targets); the non-ported primitives (keyed
// accumulators, coarsen, bin index, normalize) reuse the scalar
// reference implementations, which keeps the bit-identity contract
// trivially satisfied for them.

#if defined(__aarch64__) || defined(__ARM_NEON)

#include <arm_neon.h>

#include <cstddef>
#include <cstdint>

#include "common/simd/internal.h"
#include "common/simd/simd.h"

namespace muve::common::simd {
namespace {

// Every reduction reproduces the reference 4-lane-strided association
// (see kernels_scalar.cc): two 2-wide registers hold lanes {0,1} and
// {2,3} of a virtual 4-lane accumulator, combined as (l0+l2)+(l1+l3),
// with a sequential tail — bit-identical to the scalar reference.

inline double Combine4(float64x2_t a01, float64x2_t a23) {
  const float64x2_t pair = vaddq_f64(a01, a23);  // {l0+l2, l1+l3}
  return vgetq_lane_f64(pair, 0) + vgetq_lane_f64(pair, 1);
}

double SquaredL2Diff(const double* p, const double* q, size_t n) {
  float64x2_t a01 = vdupq_n_f64(0.0);
  float64x2_t a23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const float64x2_t d01 =
        vsubq_f64(vld1q_f64(p + i), vld1q_f64(q + i));
    const float64x2_t d23 =
        vsubq_f64(vld1q_f64(p + i + 2), vld1q_f64(q + i + 2));
    a01 = vaddq_f64(a01, vmulq_f64(d01, d01));
    a23 = vaddq_f64(a23, vmulq_f64(d23, d23));
  }
  double sum = Combine4(a01, a23);
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    sum += d * d;
  }
  return sum;
}

double AbsDiffSum(const double* p, const double* q, size_t n) {
  float64x2_t a01 = vdupq_n_f64(0.0);
  float64x2_t a23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a01 = vaddq_f64(a01, vabdq_f64(vld1q_f64(p + i), vld1q_f64(q + i)));
    a23 = vaddq_f64(a23, vabdq_f64(vld1q_f64(p + i + 2),
                                   vld1q_f64(q + i + 2)));
  }
  double sum = Combine4(a01, a23);
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    sum += d < 0.0 ? -d : d;
  }
  return sum;
}

double MaxAbsDiff(const double* p, const double* q, size_t n) {
  // Max never rounds; any association gives the reference bits.
  float64x2_t acc = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 2 <= n; i += 2) {
    acc = vmaxq_f64(acc,
                    vabdq_f64(vld1q_f64(p + i), vld1q_f64(q + i)));
  }
  double best = vgetq_lane_f64(acc, 0);
  const double b1 = vgetq_lane_f64(acc, 1);
  best = best < b1 ? b1 : best;
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    const double a = d < 0.0 ? -d : d;
    best = best < a ? a : best;
  }
  return best;
}

double Sum(const double* a, size_t n) {
  float64x2_t a01 = vdupq_n_f64(0.0);
  float64x2_t a23 = vdupq_n_f64(0.0);
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a01 = vaddq_f64(a01, vld1q_f64(a + i));
    a23 = vaddq_f64(a23, vld1q_f64(a + i + 2));
  }
  double sum = Combine4(a01, a23);
  for (; i < n; ++i) sum += a[i];
  return sum;
}

const KernelTable& BuildTable() {
  static const KernelTable table = [] {
    KernelTable t;
    t.level = DispatchLevel::kNeon;
    t.name = "neon";
    t.squared_l2_diff = &SquaredL2Diff;
    t.abs_diff_sum = &AbsDiffSum;
    t.max_abs_diff = &MaxAbsDiff;
    t.prefix_abs_diff_sum = &scalar_impl::PrefixAbsDiffSum;
    t.sum = &Sum;
    t.relative_sse = &scalar_impl::RelativeSse;
    t.normalize_into = &scalar_impl::NormalizeInto;
    t.bin_index_into = &scalar_impl::BinIndexInto;
    t.coarsen_by_prefix_diff = &scalar_impl::CoarsenByPrefixDiff;
    t.accumulate_count_sum_sq_f64 = &scalar_impl::AccumulateCountSumSqF64;
    t.accumulate_count_sum_sq_i64 = &scalar_impl::AccumulateCountSumSqI64;
    return t;
  }();
  return table;
}

}  // namespace

const KernelTable& NeonKernelsImpl() { return BuildTable(); }

}  // namespace muve::common::simd

#endif  // __aarch64__ || __ARM_NEON
