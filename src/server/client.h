// Retrying muved client: dial-on-demand, overload-aware backoff.
//
// The server's admission gate (muved_server.h) answers overload with a
// typed `unavailable` error frame carrying `error.retry_after_ms`.
// Because every recommend is a pure function of its request (and result-
// cached server-side), retrying one is always safe — so a well-behaved
// client should absorb sheds with jittered exponential backoff instead
// of surfacing them as failures.  RetryingClient packages that policy
// for muve_loadgen and any future tool: it redials on transport errors
// (the server may have reaped or shed the connection), honors the
// server's retry_after_ms hint as a floor under its own backoff, and
// keeps taxonomy counters (RetryStats) so callers can report sheds and
// retries separately from genuine transport failures.

#ifndef MUVE_SERVER_CLIENT_H_
#define MUVE_SERVER_CLIENT_H_

#include <cstdint>
#include <random>

#include "common/status.h"
#include "server/json.h"

namespace muve::server {

// Backoff policy for one client.  Defaults suit loopback loadgen:
// short base so overload tests converge quickly, capped so a saturated
// server is probed at a bounded rate.
struct RetryPolicy {
  // Total tries per Call(): the first attempt plus up to
  // (max_attempts - 1) retries.  1 disables retrying entirely.
  int max_attempts = 4;
  // Backoff before retry i (0-based) is base_backoff_ms << i, clamped to
  // max_backoff_ms, raised to at least the server's retry_after_ms hint,
  // then jittered uniformly over [1/2, 1] of itself (full-jitter halves:
  // concurrent shed clients must not re-arrive in lockstep).
  int base_backoff_ms = 25;
  int max_backoff_ms = 1000;
  // Seed for the jitter PRNG (deterministic per-session jitter streams).
  uint64_t jitter_seed = 1;
};

// What happened across all Call()s on one client, for bench reporting.
struct RetryStats {
  // Overloaded (`unavailable`) responses observed, whether or not the
  // retry budget had room left.
  int64_t sheds_seen = 0;
  // Attempts re-issued (after a shed or a transport error).
  int64_t retries = 0;
  // Transport-level failures (dial/read/write) observed, also whether or
  // not they were retried away.
  int64_t transport_errors = 0;
  // Total wall-clock slept in backoff, for latency attribution.
  int64_t backoff_ms_total = 0;
};

class RetryingClient {
 public:
  RetryingClient(int port, RetryPolicy policy = RetryPolicy());
  ~RetryingClient();

  RetryingClient(const RetryingClient&) = delete;
  RetryingClient& operator=(const RetryingClient&) = delete;

  // One request/response exchange.  Dials lazily on first use and
  // redials after any transport error.  Retries (with backoff) on
  // transport errors and on `unavailable` error responses; any OTHER
  // error response (bad input, deadline, internal) is returned to the
  // caller as a parsed JsonValue without retrying — those are answers,
  // not overload.  Exhausting the retry budget on sheds returns the
  // last overloaded response; on transport errors, the last Status.
  common::Result<JsonValue> Call(const JsonValue& request);

  // Drops the connection (next Call redials).  Safe when not connected.
  void Disconnect();

  const RetryStats& stats() const { return stats_; }
  bool connected() const { return fd_ >= 0; }

 private:
  // Backoff duration before 0-based retry `attempt`, honoring
  // `retry_after_ms` (the server hint; <= 0 when none).
  int BackoffMs(int attempt, int64_t retry_after_ms);

  const int port_;
  const RetryPolicy policy_;
  int fd_ = -1;
  RetryStats stats_;
  std::mt19937_64 jitter_;
};

// True iff `response` is an error frame whose code is "unavailable"
// (the overload shed).  `retry_after_ms` (optional out) receives the
// server's hint, or 0 when the frame carries none.
bool IsOverloadedResponse(const JsonValue& response,
                          int64_t* retry_after_ms = nullptr);

}  // namespace muve::server

#endif  // MUVE_SERVER_CLIENT_H_
