# Empty compiler generated dependencies file for muve_core.
# This may be replaced when dependencies are built.
