// muve_loadgen — concurrent-workload driver for muved.
//
//   $ muved --port=0            # prints the bound port
//   $ muve_loadgen --port=PORT --sessions=8 --requests=25 \
//         --json-out=BENCH_server.json
//
// Opens `--sessions` concurrent connections and replays a mixed
// recommend workload on each — dataset, predicate, alpha weights, k,
// scheme, and deadline all vary per request, drawn from a per-session
// mt19937_64 stream so the workload is reproducible from --seed.  Every
// request's wall latency is recorded client-side; the merged
// distribution (p50/p95/p99/mean/max), error/degraded counts, and
// aggregate throughput are printed and, with --json-out, written in the
// shared bench-artifact schema as BENCH_server.json.
//
// Modes:
//   --smoke             tiny workload (CI): fewer sessions and requests
//   --shutdown          send {"op":"shutdown"} after the run (CI smoke
//                       uses this to prove a clean drain)
//   --duplicates=P      duplicate-heavy workload: P percent of requests
//                       (0..100) are drawn from a small fixed pool of
//                       cacheable frames (no deadline, no timings) that
//                       every session shares — the shape that exercises
//                       the server's cross-request sharing layers
//   --assert-sharing    after the run, query {"op":"stats"} and exit 1
//                       unless the server reports at least one sharing
//                       hit (result cache, selection cache, or shared
//                       base store) — the CI smoke proof that sharing
//                       actually engaged
//   --invariance-out=F  instead of the load run, replay one FIXED
//                       deterministic workload on a single session and
//                       dump every raw response payload to F, one per
//                       line.  Running it twice — once under
//                       MUVE_SIMD=scalar, once native — and diffing the
//                       two files proves recommendation payloads are
//                       byte-identical across the wire regardless of
//                       dispatch level.
//   --retries=N         retry budget per request (default 4 attempts
//                       total; 1 disables retrying).  Overloaded
//                       (`unavailable`) responses and transport errors
//                       are retried with jittered exponential backoff
//                       honoring the server's retry_after_ms hint.
//   --chaos=N           spawn N hostile threads ALONGSIDE the normal
//                       sessions, each replaying socket-layer abuse
//                       drawn from its seed: torn frames, oversized
//                       length prefixes, mid-frame stalls (slowloris),
//                       SO_LINGER-0 RST closes, never-reading writers,
//                       and slow readers.  Chaos outcomes are never
//                       counted as failures — the point is that the
//                       WELL-BEHAVED sessions still succeed around them.
//
// Exit codes: 0 all requests answered ok (degraded-but-ok counts as
// ok — that is the anytime contract; responses shed with `unavailable`
// after the retry budget also do NOT fail the run — shedding under
// overload is the server doing its job), 1 any unrecovered
// transport/protocol failure or server error, 2 bad flags.

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <limits>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>

#include "common/parse.h"
#include "common/status.h"
#include "common/string_util.h"
#include "harness.h"
#include "server/client.h"
#include "server/json.h"
#include "server/protocol.h"

namespace {

using muve::common::Status;
using muve::server::JsonValue;

struct Flags {
  int port = 7171;
  int sessions = 8;
  int requests = 25;
  uint64_t seed = 42;
  int duplicates = 0;  // percent of requests drawn from the hot pool
  int retries = 4;     // attempts per request (1 = no retrying)
  int chaos = 0;       // hostile threads alongside the workload
  bool assert_sharing = false;
  bool smoke = false;
  bool do_shutdown = false;
  std::string json_out;
  std::string invariance_out;
};

Status ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto has = [&arg](const std::string& name) {
      return muve::common::StartsWith(arg, name);
    };
    auto value_of = [&arg](const std::string& name) {
      return arg.substr(name.size());
    };
    if (has("--port=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->port, muve::common::ParseFlagInt64(
                           "--port", value_of("--port="), 1, 65535));
    } else if (has("--sessions=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->sessions, muve::common::ParseFlagInt64(
                               "--sessions", value_of("--sessions="), 1, 256));
    } else if (has("--requests=")) {
      MUVE_ASSIGN_OR_RETURN(flags->requests,
                            muve::common::ParseFlagInt64(
                                "--requests", value_of("--requests="), 1,
                                1000000));
    } else if (has("--seed=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->seed,
          muve::common::ParseFlagInt64("--seed", value_of("--seed="), 0,
                                       std::numeric_limits<int64_t>::max()));
    } else if (has("--duplicates=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->duplicates,
          muve::common::ParseFlagInt64("--duplicates",
                                       value_of("--duplicates="), 0, 100));
    } else if (has("--retries=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->retries, muve::common::ParseFlagInt64(
                              "--retries", value_of("--retries="), 1, 100));
    } else if (has("--chaos=")) {
      MUVE_ASSIGN_OR_RETURN(
          flags->chaos, muve::common::ParseFlagInt64(
                            "--chaos", value_of("--chaos="), 0, 256));
    } else if (arg == "--chaos") {
      flags->chaos = 4;
    } else if (arg == "--assert-sharing") {
      flags->assert_sharing = true;
    } else if (arg == "--smoke") {
      flags->smoke = true;
    } else if (arg == "--shutdown") {
      flags->do_shutdown = true;
    } else if (arg == "--json-out") {
      flags->json_out = "BENCH_server.json";
    } else if (has("--json-out=")) {
      flags->json_out = value_of("--json-out=");
    } else if (has("--invariance-out=")) {
      flags->invariance_out = value_of("--invariance-out=");
    } else {
      return Status::InvalidArgument("unknown flag: " + arg);
    }
  }
  if (flags->smoke) {
    flags->sessions = std::min(flags->sessions, 8);
    flags->requests = std::min(flags->requests, 4);
  }
  return Status::OK();
}

double NowMs() {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

JsonValue MakeRequest(const std::string& op) {
  JsonValue request = JsonValue::Object();
  request.Set("op", JsonValue::String(op));
  return request;
}

// One frame out, one frame back; false on any transport/protocol error.
bool Send(int fd, const JsonValue& request, JsonValue* response) {
  auto result = muve::server::RoundTrip(fd, request);
  if (!result.ok()) {
    std::cerr << "loadgen: " << result.status().ToString() << "\n";
    return false;
  }
  *response = std::move(*result);
  return true;
}

bool ResponseOk(const JsonValue& response) {
  const JsonValue* ok = response.Find("ok");
  return ok != nullptr && ok->is_bool() && ok->bool_value();
}

// ---------------------------------------------------------------------------
// Mixed-workload session.
// ---------------------------------------------------------------------------

// Outcome taxonomy, one bucket per request's FINAL answer (plus the
// retry-layer counters underneath).  `sheds` — requests still answered
// `unavailable` after the retry budget — are deliberately separate from
// both `errors` and `transport_failures`: a shed is the server keeping
// its overload promise, not the transport breaking, and it must not fail
// a load run on its own.
struct SessionResult {
  std::vector<double> latencies_ms;
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t errors = 0;              // server answered ok:false (non-shed)
  int64_t sheds = 0;               // final answer was `unavailable`
  int64_t transport_failures = 0;  // Call() failed even after retries
  muve::server::RetryStats retry;  // what the retry layer absorbed
};

// The mixed workload: mostly NBA (the acceptance dataset), with toy
// sprinkled in; per-request k / alphas / scheme / deadline / predicate
// all drawn from the session's private RNG stream.
JsonValue DrawRecommend(std::mt19937_64& rng) {
  JsonValue request = MakeRequest("recommend");
  std::uniform_real_distribution<double> unit(0.0, 1.0);

  const bool toy = unit(rng) < 0.125;
  request.Set("dataset", JsonValue::String(toy ? "toy" : "nba"));
  if (!toy && unit(rng) < 0.25) {
    // Predicate churn against the same table: distinct recommenders.
    static const char* kPredicates[] = {"Age >= 30", "MP > 500", "G > 41"};
    request.Set("predicate",
                JsonValue::String(kPredicates[rng() % 3]));
  }

  static const char* kSchemes[] = {"muve-muve", "muve-muve", "muve-linear",
                                   "hc-linear"};
  request.Set("scheme", JsonValue::String(kSchemes[rng() % 4]));

  static const int64_t kKs[] = {1, 3, 5, 10};
  request.Set("k", JsonValue::Int(kKs[rng() % 4]));

  // Random alphas on the simplex corner-to-corner, rounded so the JSON
  // stays short.
  const double d = std::round(unit(rng) * 100.0) / 100.0;
  const double a = std::round(unit(rng) * (1.0 - d) * 100.0) / 100.0;
  const double s = std::max(0.0, std::round((1.0 - d - a) * 100.0) / 100.0);
  JsonValue weights = JsonValue::Array();
  weights.Append(JsonValue::Double(d));
  weights.Append(JsonValue::Double(a));
  weights.Append(JsonValue::Double(s));
  request.Set("weights", std::move(weights));

  // A third of requests run under a tight deadline — mixed deadlines are
  // the acceptance workload, and degraded-but-ok responses must count as
  // successes.
  if (unit(rng) < 0.34) {
    static const double kDeadlines[] = {1.0, 2.0, 5.0, 10.0};
    request.Set("deadline_ms", JsonValue::Double(kDeadlines[rng() % 4]));
  }
  return request;
}

// The hot pool for duplicate-heavy runs: a handful of FIXED, fully
// cacheable frames (no deadline, no timings) that every session shares.
// Requests drawn here are the ones the server's cross-request layers can
// answer from cache; the pool deliberately spells one predicate two
// operand-permuted ways to exercise canonicalization end to end.
JsonValue DrawHotRecommend(std::mt19937_64& rng) {
  struct HotFrame {
    const char* dataset;
    const char* predicate;  // nullptr = the dataset's built-in predicate
    const char* scheme;
    int64_t k;
    double weights[3];
  };
  static const HotFrame kPool[] = {
      {"nba", nullptr, "muve-muve", 5, {0.8, 0.1, 0.1}},
      {"nba", "Age >= 30 AND MP > 500", "muve-muve", 5, {0.8, 0.1, 0.1}},
      {"nba", "MP > 500 AND Age >= 30", "muve-muve", 5, {0.8, 0.1, 0.1}},
      {"toy", nullptr, "muve-linear", 3, {0.4, 0.3, 0.3}},
  };
  const HotFrame& frame = kPool[rng() % (sizeof(kPool) / sizeof(kPool[0]))];
  JsonValue request = MakeRequest("recommend");
  request.Set("dataset", JsonValue::String(frame.dataset));
  if (frame.predicate != nullptr) {
    request.Set("predicate", JsonValue::String(frame.predicate));
  }
  request.Set("scheme", JsonValue::String(frame.scheme));
  request.Set("k", JsonValue::Int(frame.k));
  JsonValue weights = JsonValue::Array();
  weights.Append(JsonValue::Double(frame.weights[0]));
  weights.Append(JsonValue::Double(frame.weights[1]));
  weights.Append(JsonValue::Double(frame.weights[2]));
  request.Set("weights", std::move(weights));
  return request;
}

SessionResult RunSession(int port, int requests, uint64_t seed,
                         int duplicates_pct, int retries) {
  SessionResult result;
  muve::server::RetryPolicy policy;
  policy.max_attempts = retries;
  policy.jitter_seed = seed ^ 0x9e3779b97f4a7c15ULL;
  muve::server::RetryingClient client(port, policy);
  std::mt19937_64 rng(seed);
  // Pin the session's default dataset so requests that omit "dataset"
  // would still be valid; also warms the registry.
  JsonValue use = MakeRequest("use");
  use.Set("dataset", JsonValue::String("nba"));
  {
    auto response = client.Call(use);
    if (!response.ok()) {
      std::cerr << "loadgen: " << response.status().ToString() << "\n";
      ++result.transport_failures;
      result.retry = client.stats();
      return result;
    }
    if (muve::server::IsOverloadedResponse(*response)) {
      ++result.sheds;
    } else if (!ResponseOk(*response)) {
      ++result.errors;
    }
  }
  result.latencies_ms.reserve(requests);
  std::uniform_int_distribution<int> pct(0, 99);
  for (int i = 0; i < requests; ++i) {
    const JsonValue request = pct(rng) < duplicates_pct
                                  ? DrawHotRecommend(rng)
                                  : DrawRecommend(rng);
    const double start = NowMs();
    auto response = client.Call(request);
    if (!response.ok()) {
      // Unrecovered transport failure.  The client already redialed and
      // retried; count it and keep going — later requests may succeed on
      // a fresh connection.
      std::cerr << "loadgen: " << response.status().ToString() << "\n";
      ++result.transport_failures;
      continue;
    }
    result.latencies_ms.push_back(NowMs() - start);
    if (ResponseOk(*response)) {
      ++result.ok;
      const JsonValue* degraded = response->Find("degraded");
      if (degraded != nullptr && degraded->is_bool() &&
          degraded->bool_value()) {
        ++result.degraded;
      }
    } else if (muve::server::IsOverloadedResponse(*response)) {
      ++result.sheds;
    } else {
      ++result.errors;
    }
  }
  result.retry = client.stats();
  return result;
}

// ---------------------------------------------------------------------------
// Chaos sessions: socket-layer abuse, never counted as failures.
// ---------------------------------------------------------------------------

// Writes `n` raw bytes best-effort (the peer may close on us mid-write —
// that is part of the game).
void RawWrite(int fd, const void* bytes, size_t n) {
  (void)!::send(fd, bytes, n, MSG_NOSIGNAL);
}

void ChaosTornFrame(int port) {
  auto fd = muve::server::DialLocal(port);
  if (!fd.ok()) return;
  const unsigned char half_header[2] = {0x00, 0x00};
  RawWrite(*fd, half_header, sizeof(half_header));
  ::close(*fd);
}

void ChaosOversizedPrefix(int port) {
  auto fd = muve::server::DialLocal(port);
  if (!fd.ok()) return;
  const unsigned char header[4] = {0xFF, 0xFF, 0xFF, 0xFF};
  RawWrite(*fd, header, sizeof(header));
  // The server answers one parse_error frame and closes; drain a little.
  char sink[256];
  (void)!::recv(*fd, sink, sizeof(sink), 0);
  ::close(*fd);
}

void ChaosMidFrameStall(int port, std::mt19937_64& rng) {
  auto fd = muve::server::DialLocal(port);
  if (!fd.ok()) return;
  // A valid header promising 64 bytes, then only half of them, then a
  // stall — the classic slowloris.  The server's frame timeout (when
  // configured) must cut us off; without one the close() ends it.
  const unsigned char header[4] = {0x00, 0x00, 0x00, 0x40};
  RawWrite(*fd, header, sizeof(header));
  char garbage[32];
  std::memset(garbage, '{', sizeof(garbage));
  RawWrite(*fd, garbage, sizeof(garbage));
  std::this_thread::sleep_for(std::chrono::milliseconds(20 + rng() % 80));
  ::close(*fd);
}

void ChaosRstClose(int port) {
  auto fd = muve::server::DialLocal(port);
  if (!fd.ok()) return;
  (void)muve::server::WriteMessage(*fd, MakeRequest("ping"));
  // SO_LINGER(on, 0): close() sends RST instead of FIN, discarding any
  // in-flight response — the abrupt-death shape a crashing client makes.
  struct linger hard = {1, 0};
  ::setsockopt(*fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(*fd);
}

void ChaosNeverReadingWriter(int port, std::mt19937_64& rng) {
  auto fd = muve::server::DialLocal(port);
  if (!fd.ok()) return;
  // Pump requests without ever reading a response, then vanish.  The
  // server's write timeout (when configured) bounds how long a handler
  // can be pinned once the socket buffer fills.
  const int frames = 4 + static_cast<int>(rng() % 8);
  for (int i = 0; i < frames; ++i) {
    if (!muve::server::WriteMessage(*fd, MakeRequest("ping")).ok()) break;
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20 + rng() % 80));
  ::close(*fd);
}

void ChaosSlowReader(int port, std::mt19937_64& rng) {
  auto fd = muve::server::DialLocal(port);
  if (!fd.ok()) return;
  if (!muve::server::WriteMessage(*fd, MakeRequest("ping")).ok()) {
    ::close(*fd);
    return;
  }
  // Read the response one byte at a time with pauses, then quit partway.
  char byte;
  const int max_bytes = 8 + static_cast<int>(rng() % 32);
  for (int i = 0; i < max_bytes; ++i) {
    if (::recv(*fd, &byte, 1, 0) <= 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(1 + rng() % 5));
  }
  ::close(*fd);
}

void RunChaosSession(int port, int acts, uint64_t seed) {
  std::mt19937_64 rng(seed);
  for (int i = 0; i < acts; ++i) {
    switch (rng() % 6) {
      case 0: ChaosTornFrame(port); break;
      case 1: ChaosOversizedPrefix(port); break;
      case 2: ChaosMidFrameStall(port, rng); break;
      case 3: ChaosRstClose(port); break;
      case 4: ChaosNeverReadingWriter(port, rng); break;
      case 5: ChaosSlowReader(port, rng); break;
    }
  }
}

double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

// ---------------------------------------------------------------------------
// Dispatch-invariance replay: a FIXED workload, responses dumped raw.
// ---------------------------------------------------------------------------

int RunInvariance(const Flags& flags) {
  auto fd = muve::server::DialLocal(flags.port);
  if (!fd.ok()) {
    std::cerr << "loadgen: " << fd.status().ToString() << "\n";
    return 1;
  }
  std::ofstream out(flags.invariance_out, std::ios::trunc);
  if (!out) {
    std::cerr << "loadgen: cannot write " << flags.invariance_out << "\n";
    ::close(*fd);
    return 1;
  }
  // Deterministic configurations only: deviation-first probe order, no
  // deadline, no timings — the same caveat the CLI golden tests carry.
  static const char* kDatasets[] = {"toy", "nba"};
  static const char* kSchemes[] = {"linear-linear", "hc-linear",
                                   "muve-linear", "muve-muve"};
  static const double kWeights[][3] = {{0.8, 0.1, 0.1}, {0.4, 0.3, 0.3}};
  int lines = 0;
  for (const char* dataset : kDatasets) {
    for (const char* scheme : kSchemes) {
      for (const auto& w : kWeights) {
        JsonValue request = MakeRequest("recommend");
        request.Set("dataset", JsonValue::String(dataset));
        request.Set("scheme", JsonValue::String(scheme));
        request.Set("k", JsonValue::Int(5));
        JsonValue weights = JsonValue::Array();
        weights.Append(JsonValue::Double(w[0]));
        weights.Append(JsonValue::Double(w[1]));
        weights.Append(JsonValue::Double(w[2]));
        request.Set("weights", std::move(weights));
        request.Set("probe_order", JsonValue::String("deviation-first"));
        auto response = muve::server::RoundTrip(*fd, request);
        if (!response.ok()) {
          std::cerr << "loadgen: " << response.status().ToString() << "\n";
          ::close(*fd);
          return 1;
        }
        if (!ResponseOk(*response)) {
          std::cerr << "loadgen: server error on " << dataset << "/" << scheme
                    << ": " << response->Write() << "\n";
          ::close(*fd);
          return 1;
        }
        out << response->Write() << "\n";
        ++lines;
      }
    }
  }
  int rc = 0;
  if (flags.do_shutdown) {
    auto response = muve::server::RoundTrip(*fd, MakeRequest("shutdown"));
    if (!response.ok() || !ResponseOk(*response)) rc = 1;
  }
  ::close(*fd);
  out.close();
  std::cout << "loadgen: wrote " << lines << " deterministic payloads to "
            << flags.invariance_out << "\n";
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (Status st = ParseFlags(argc, argv, &flags); !st.ok()) {
    std::cerr << st.message() << "\n\nSee the header of tools/muve_loadgen.cpp "
              << "for flag documentation.\n";
    return 2;
  }

  if (!flags.invariance_out.empty()) return RunInvariance(flags);

  // Probe the server first: fail fast with a clear message, and record
  // the dispatch level the artifact should carry.
  std::string simd = "unknown";
  {
    auto fd = muve::server::DialLocal(flags.port);
    if (!fd.ok()) {
      std::cerr << "loadgen: no muved at 127.0.0.1:" << flags.port << " ("
                << fd.status().message() << ")\n";
      return 1;
    }
    JsonValue response;
    if (Send(*fd, MakeRequest("ping"), &response) && ResponseOk(response)) {
      const JsonValue* level = response.Find("simd");
      if (level != nullptr && level->is_string()) {
        simd = level->string_value();
      }
    }
    ::close(*fd);
  }

  std::cout << "loadgen: " << flags.sessions << " sessions x "
            << flags.requests << " requests against 127.0.0.1:" << flags.port
            << " (simd=" << simd << ", seed=" << flags.seed << ")\n";

  if (flags.chaos > 0) {
    std::cout << "loadgen: +" << flags.chaos
              << " chaos threads (torn frames, slowloris, RSTs, "
              << "never-reading writers)\n";
  }

  const double wall_start = NowMs();
  std::vector<SessionResult> results(flags.sessions);
  std::vector<std::thread> threads;
  threads.reserve(flags.sessions + flags.chaos);
  for (int s = 0; s < flags.sessions; ++s) {
    threads.emplace_back([&flags, &results, s] {
      results[s] = RunSession(flags.port, flags.requests,
                              flags.seed * 8191 + static_cast<uint64_t>(s),
                              flags.duplicates, flags.retries);
    });
  }
  for (int c = 0; c < flags.chaos; ++c) {
    threads.emplace_back([&flags, c] {
      RunChaosSession(flags.port, flags.requests,
                      flags.seed * 131071 + static_cast<uint64_t>(c));
    });
  }
  for (auto& t : threads) t.join();
  const double wall_ms = NowMs() - wall_start;

  std::vector<double> latencies;
  int64_t ok = 0, degraded = 0, errors = 0, sheds = 0, transport_failures = 0;
  muve::server::RetryStats retry;
  for (const SessionResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_ms.begin(),
                     r.latencies_ms.end());
    ok += r.ok;
    degraded += r.degraded;
    errors += r.errors;
    sheds += r.sheds;
    transport_failures += r.transport_failures;
    retry.sheds_seen += r.retry.sheds_seen;
    retry.retries += r.retry.retries;
    retry.transport_errors += r.retry.transport_errors;
    retry.backoff_ms_total += r.retry.backoff_ms_total;
  }
  std::sort(latencies.begin(), latencies.end());
  double mean = 0.0;
  for (double v : latencies) mean += v;
  if (!latencies.empty()) mean /= static_cast<double>(latencies.size());
  const double p50 = Percentile(latencies, 0.50);
  const double p95 = Percentile(latencies, 0.95);
  const double p99 = Percentile(latencies, 0.99);
  const double max = latencies.empty() ? 0.0 : latencies.back();
  const double throughput =
      wall_ms > 0.0 ? static_cast<double>(latencies.size()) / (wall_ms / 1e3)
                    : 0.0;

  std::cout << "loadgen: " << latencies.size() << " requests in "
            << muve::bench::Ms(wall_ms) << " ms  (" << ok << " ok, " << degraded
            << " degraded-but-ok, " << errors << " errors, " << sheds
            << " shed, " << transport_failures << " transport failures)\n"
            << "loadgen: retry layer absorbed " << retry.sheds_seen
            << " sheds and " << retry.transport_errors
            << " transport errors across " << retry.retries << " retries ("
            << retry.backoff_ms_total << " ms backoff)\n"
            << "loadgen: p50=" << muve::bench::Ms(p50)
            << "ms p95=" << muve::bench::Ms(p95)
            << "ms p99=" << muve::bench::Ms(p99)
            << "ms mean=" << muve::bench::Ms(mean)
            << "ms max=" << muve::bench::Ms(max) << "ms  throughput="
            << muve::bench::Ms(throughput) << " req/s\n";

  if (!flags.json_out.empty()) {
    JsonValue doc = JsonValue::Object();
    doc.Set("bench", JsonValue::String("server"));
    doc.Set("git_sha", JsonValue::String(muve::bench::GitShaOrUnknown()));
    JsonValue config = JsonValue::Object();
    config.Set("sessions", JsonValue::Int(flags.sessions));
    config.Set("requests_per_session", JsonValue::Int(flags.requests));
    config.Set("seed", JsonValue::Int(static_cast<int64_t>(flags.seed)));
    config.Set("smoke", JsonValue::Bool(flags.smoke));
    config.Set("retries", JsonValue::Int(flags.retries));
    config.Set("chaos_threads", JsonValue::Int(flags.chaos));
    config.Set("simd", JsonValue::String(simd));
    doc.Set("config", std::move(config));
    JsonValue record = JsonValue::Object();
    record.Set("type", JsonValue::String("record"));
    record.Set("label", JsonValue::String("mixed-workload"));
    record.Set("requests", JsonValue::Int(static_cast<int64_t>(
                               latencies.size())));
    record.Set("ok", JsonValue::Int(ok));
    record.Set("degraded", JsonValue::Int(degraded));
    record.Set("errors", JsonValue::Int(errors));
    record.Set("sheds", JsonValue::Int(sheds));
    record.Set("transport_failures", JsonValue::Int(transport_failures));
    record.Set("retries", JsonValue::Int(retry.retries));
    record.Set("sheds_absorbed", JsonValue::Int(retry.sheds_seen));
    record.Set("transport_errors_absorbed",
               JsonValue::Int(retry.transport_errors));
    record.Set("backoff_ms_total", JsonValue::Int(retry.backoff_ms_total));
    record.Set("p50_ms", JsonValue::Double(p50));
    record.Set("p95_ms", JsonValue::Double(p95));
    record.Set("p99_ms", JsonValue::Double(p99));
    record.Set("mean_ms", JsonValue::Double(mean));
    record.Set("max_ms", JsonValue::Double(max));
    record.Set("wall_ms", JsonValue::Double(wall_ms));
    record.Set("throughput_rps", JsonValue::Double(throughput));
    JsonValue results_array = JsonValue::Array();
    results_array.Append(std::move(record));
    doc.Set("results", std::move(results_array));
    std::ofstream out(flags.json_out, std::ios::trunc);
    if (!out) {
      std::cerr << "loadgen: cannot write " << flags.json_out << "\n";
      return 1;
    }
    out << doc.Write() << "\n";
    std::cout << "loadgen: wrote " << flags.json_out << "\n";
  }

  // Cross-request sharing report (queried BEFORE any shutdown).  With
  // --assert-sharing a run that produced zero sharing hits of any kind
  // fails: the duplicate-heavy smoke leg exists to prove sharing engages.
  bool sharing_ok = true;
  if (flags.assert_sharing || flags.duplicates > 0) {
    auto fd = muve::server::DialLocal(flags.port);
    JsonValue stats;
    if (fd.ok() && Send(*fd, MakeRequest("stats"), &stats) &&
        ResponseOk(stats)) {
      auto int_of = [](const JsonValue* v) {
        return (v != nullptr && v->is_int()) ? v->int_value() : int64_t{0};
      };
      auto nested = [&stats](const char* obj, const char* field)
          -> const JsonValue* {
        const JsonValue* o = stats.Find(obj);
        return (o != nullptr && o->is_object()) ? o->Find(field) : nullptr;
      };
      const int64_t result_hits = int_of(stats.Find("result_cache_hits"));
      const int64_t selection_hits = int_of(nested("selection_cache", "hits"));
      const int64_t base_hits = int_of(nested("base_cache", "hits"));
      const int64_t recommends = int_of(stats.Find("recommends_executed"));
      const int64_t answered = recommends + result_hits;
      const double hit_rate =
          answered > 0
              ? static_cast<double>(result_hits) / static_cast<double>(answered)
              : 0.0;
      std::cout << "loadgen: sharing  result_cache_hits=" << result_hits
                << " (hit-rate " << muve::bench::Ms(hit_rate * 100.0)
                << "%)  selection_hits=" << selection_hits
                << "  base_hits=" << base_hits << "\n";
      if (flags.assert_sharing &&
          result_hits + selection_hits + base_hits == 0) {
        std::cerr << "loadgen: --assert-sharing: no sharing hits recorded\n";
        sharing_ok = false;
      }
    } else {
      std::cerr << "loadgen: stats query failed\n";
      if (flags.assert_sharing) sharing_ok = false;
    }
    if (fd.ok()) ::close(*fd);
  }

  if (flags.do_shutdown) {
    auto fd = muve::server::DialLocal(flags.port);
    if (fd.ok()) {
      JsonValue response;
      if (!Send(*fd, MakeRequest("shutdown"), &response) ||
          !ResponseOk(response)) {
        ++transport_failures;
      }
      ::close(*fd);
    } else {
      ++transport_failures;
    }
  }

  // Sheds deliberately absent: an overload-shed request is the server
  // honoring its admission contract, not a failure of this run.
  return (transport_failures == 0 && sharing_ok && errors == 0) ? 0 : 1;
}
