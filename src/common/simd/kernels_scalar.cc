// Portable reference kernels.
//
// The element-wise semantics are the historical open-coded loops from
// distance.cc / distribution.cc / objectives.cc /
// base_histogram_cache.cc / fused_scan.cc.  The REDUCTION association,
// however, is pinned to a fixed 4-lane-strided scheme: lane j owns
// elements i with i % 4 == j over the body (i + 4 <= n), lanes combine
// as (l0 + l2) + (l1 + l3), and the tail (< 4 elements) folds
// sequentially into the combined sum.  Every vector table reproduces
// exactly this association (a 4-wide register IS the four lanes; NEON
// pairs two 2-wide registers), which is what makes ALL kernels —
// floating-point reductions included — bit-identical across dispatch
// levels, so top-k output can never depend on the dispatch path.  For
// n < 4 every reduction degenerates to the historical sequential loop.

#include <cmath>
#include <cstddef>
#include <cstdint>

#include "common/simd/internal.h"
#include "common/simd/simd.h"

namespace muve::common::simd {
namespace scalar_impl {

namespace {

// The pinned lane-combine order (matches the vector tables' horizontal
// sum: low/high 128-bit halves add first, then the remaining pair).
inline double Combine4(double l0, double l1, double l2, double l3) {
  return (l0 + l2) + (l1 + l3);
}

}  // namespace

double SquaredL2Diff(const double* p, const double* q, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = p[i] - q[i];
    const double d1 = p[i + 1] - q[i + 1];
    const double d2 = p[i + 2] - q[i + 2];
    const double d3 = p[i + 3] - q[i + 3];
    a0 += d0 * d0;
    a1 += d1 * d1;
    a2 += d2 * d2;
    a3 += d3 * d3;
  }
  double sum = Combine4(a0, a1, a2, a3);
  for (; i < n; ++i) {
    const double d = p[i] - q[i];
    sum += d * d;
  }
  return sum;
}

double AbsDiffSum(const double* p, const double* q, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += std::abs(p[i] - q[i]);
    a1 += std::abs(p[i + 1] - q[i + 1]);
    a2 += std::abs(p[i + 2] - q[i + 2]);
    a3 += std::abs(p[i + 3] - q[i + 3]);
  }
  double sum = Combine4(a0, a1, a2, a3);
  for (; i < n; ++i) sum += std::abs(p[i] - q[i]);
  return sum;
}

double MaxAbsDiff(const double* p, const double* q, size_t n) {
  // max never rounds, so any association yields the same bits (NaN is
  // outside the contract); the plain loop is the reference.
  double best = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double d = std::abs(p[i] - q[i]);
    best = best < d ? d : best;
  }
  return best;
}

double PrefixAbsDiffSum(const double* p, const double* q, size_t n) {
  // 1-D EMD core: sum over i < n of |prefix-sum difference|.  The
  // distance wrapper passes n = bins - 1 (the last prefix is excluded).
  // The per-block prefix values use the vector tables' shift-add tree
  //   t0 = d0            t1 = d1 + d0
  //   t2 = (d2 + d1) + d0  t3 = (d3 + d2) + (d1 + d0)
  // with the previous block's last prefix added as a carry.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  double carry = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double d0 = p[i] - q[i];
    const double d1 = p[i + 1] - q[i + 1];
    const double d2 = p[i + 2] - q[i + 2];
    const double d3 = p[i + 3] - q[i + 3];
    const double s1 = d1 + d0;
    const double s2 = d2 + d1;
    const double s3 = d3 + d2;
    const double c0 = d0 + carry;
    const double c1 = s1 + carry;
    const double c2 = (s2 + d0) + carry;
    const double c3 = (s3 + s1) + carry;
    a0 += std::abs(c0);
    a1 += std::abs(c1);
    a2 += std::abs(c2);
    a3 += std::abs(c3);
    carry = c3;
  }
  double total = Combine4(a0, a1, a2, a3);
  double cum = carry;
  for (; i < n; ++i) {
    cum += p[i] - q[i];
    total += std::abs(cum);
  }
  return total;
}

double Sum(const double* a, size_t n) {
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    a0 += a[i];
    a1 += a[i + 1];
    a2 += a[i + 2];
    a3 += a[i + 3];
  }
  double sum = Combine4(a0, a1, a2, a3);
  for (; i < n; ++i) sum += a[i];
  return sum;
}

double RelativeSse(const double* g, const double* rep, size_t n) {
  // Masked lanes contribute +0.0 (adding +0.0 is the identity here:
  // every unmasked term is a non-negative quotient), which is exactly
  // what the vector tables' bitwise mask produces.
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  const auto term = [](double gj, double rj) {
    const double diff = gj - rj;
    return gj != 0.0 ? (diff * diff) / (gj * gj) : 0.0;
  };
  for (; i + 4 <= n; i += 4) {
    a0 += term(g[i], rep[i]);
    a1 += term(g[i + 1], rep[i + 1]);
    a2 += term(g[i + 2], rep[i + 2]);
    a3 += term(g[i + 3], rep[i + 3]);
  }
  double r = Combine4(a0, a1, a2, a3);
  for (; i < n; ++i) {
    if (g[i] == 0.0) continue;  // relative error undefined (objectives.h)
    const double diff = g[i] - rep[i];
    r += (diff * diff) / (g[i] * g[i]);
  }
  return r;
}

double NormalizeInto(const double* src, size_t n, double* dst) {
  if (n == 0) return 0.0;
  double a0 = 0.0, a1 = 0.0, a2 = 0.0, a3 = 0.0;
  size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    const double c0 = src[i] > 0.0 ? src[i] : 0.0;
    const double c1 = src[i + 1] > 0.0 ? src[i + 1] : 0.0;
    const double c2 = src[i + 2] > 0.0 ? src[i + 2] : 0.0;
    const double c3 = src[i + 3] > 0.0 ? src[i + 3] : 0.0;
    dst[i] = c0;
    dst[i + 1] = c1;
    dst[i + 2] = c2;
    dst[i + 3] = c3;
    a0 += c0;
    a1 += c1;
    a2 += c2;
    a3 += c3;
  }
  double total = Combine4(a0, a1, a2, a3);
  for (; i < n; ++i) {
    dst[i] = src[i] > 0.0 ? src[i] : 0.0;
    total += dst[i];
  }
  // The clamped terms are all non-negative, so association cannot
  // change whether the total is zero: the uniform-fallback branch is
  // taken identically under every association.
  if (total <= 0.0) {
    const double uniform = 1.0 / static_cast<double>(n);
    for (size_t j = 0; j < n; ++j) dst[j] = uniform;
    return total;
  }
  for (size_t j = 0; j < n; ++j) dst[j] /= total;
  return total;
}

void BinIndexInto(const double* values, size_t n, double lo, double hi,
                  int num_bins, int32_t* out) {
  for (size_t i = 0; i < n; ++i) {
    out[i] = BinIndexReference(values[i], lo, hi, num_bins);
  }
}

void CoarsenByPrefixDiff(const double* values, size_t d, double lo,
                         double hi, int num_bins,
                         const int64_t* prefix_counts,
                         const double* prefix_sums,
                         const double* prefix_sum_sqs, int64_t* out_counts,
                         double* out_sums, double* out_sum_sqs) {
  CoarsenWithBinIndex(
      [](const double* block, size_t len, double blo, double bhi, int nb,
         int32_t* idx) { BinIndexInto(block, len, blo, bhi, nb, idx); },
      values, d, lo, hi, num_bins, prefix_counts, prefix_sums,
      prefix_sum_sqs, out_counts, out_sums, out_sum_sqs);
}

namespace {

// Shared body of the keyed accumulators; mirrors fused_scan.cc's
// AccumulatePair (adds stay in row order per key).
template <typename T>
inline void AccumulateImpl(const uint32_t* rows, size_t begin, size_t end,
                           const uint32_t* keys,
                           const uint64_t* validity_words, const T* data,
                           int64_t* counts, double* sums,
                           double* sum_sqs) {
  for (size_t p = begin; p < end; ++p) {
    const uint32_t k = keys[p];
    if (k == kNullKey32) continue;  // NULL dimension cell
    const uint32_t row = rows[p];
    if (validity_words != nullptr &&
        ((validity_words[row >> 6] >> (row & 63)) & 1u) == 0) {
      continue;  // NULL measure cell
    }
    const double m = static_cast<double>(data[row]);
    ++counts[k];
    sums[k] += m;
    sum_sqs[k] += m * m;
  }
}

}  // namespace

void AccumulateCountSumSqF64(const uint32_t* rows, size_t begin, size_t end,
                             const uint32_t* keys,
                             const uint64_t* validity_words,
                             const double* data, int64_t* counts,
                             double* sums, double* sum_sqs) {
  AccumulateImpl(rows, begin, end, keys, validity_words, data, counts, sums,
                 sum_sqs);
}

void AccumulateCountSumSqI64(const uint32_t* rows, size_t begin, size_t end,
                             const uint32_t* keys,
                             const uint64_t* validity_words,
                             const int64_t* data, int64_t* counts,
                             double* sums, double* sum_sqs) {
  AccumulateImpl(rows, begin, end, keys, validity_words, data, counts, sums,
                 sum_sqs);
}

}  // namespace scalar_impl

const KernelTable& ScalarKernels() {
  static const KernelTable table = [] {
    KernelTable t;
    t.level = DispatchLevel::kScalar;
    t.name = "scalar";
    t.squared_l2_diff = &scalar_impl::SquaredL2Diff;
    t.abs_diff_sum = &scalar_impl::AbsDiffSum;
    t.max_abs_diff = &scalar_impl::MaxAbsDiff;
    t.prefix_abs_diff_sum = &scalar_impl::PrefixAbsDiffSum;
    t.sum = &scalar_impl::Sum;
    t.relative_sse = &scalar_impl::RelativeSse;
    t.normalize_into = &scalar_impl::NormalizeInto;
    t.bin_index_into = &scalar_impl::BinIndexInto;
    t.coarsen_by_prefix_diff = &scalar_impl::CoarsenByPrefixDiff;
    t.accumulate_count_sum_sq_f64 = &scalar_impl::AccumulateCountSumSqF64;
    t.accumulate_count_sum_sq_i64 = &scalar_impl::AccumulateCountSumSqI64;
    return t;
  }();
  return table;
}

}  // namespace muve::common::simd
