// Unit tests for the muved wire layer: the strict JSON document model
// (server/json.h) and the length-prefixed framing (server/protocol.h).

#include "server/protocol.h"

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstring>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "gtest/gtest.h"
#include "server/json.h"

namespace muve::server {
namespace {

using muve::common::StatusCode;

// ---------------------------------------------------------------------------
// JSON model.
// ---------------------------------------------------------------------------

TEST(Json, RoundTripsCanonicalDocument) {
  JsonValue doc = JsonValue::Object();
  doc.Set("ok", JsonValue::Bool(true));
  doc.Set("k", JsonValue::Int(5));
  doc.Set("utility", JsonValue::Double(0.25));
  doc.Set("name", JsonValue::String("nba"));
  JsonValue weights = JsonValue::Array();
  weights.Append(JsonValue::Double(0.8));
  weights.Append(JsonValue::Double(0.1));
  weights.Append(JsonValue::Double(0.1));
  doc.Set("weights", std::move(weights));
  doc.Set("nothing", JsonValue::Null());

  const std::string text = doc.Write();
  EXPECT_EQ(text,
            "{\"ok\":true,\"k\":5,\"utility\":0.25,\"name\":\"nba\","
            "\"weights\":[0.8,0.1,0.1],\"nothing\":null}");

  auto parsed = ParseJson(text);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  // Canonical: serialize(parse(serialize(x))) == serialize(x).
  EXPECT_EQ(parsed->Write(), text);
}

TEST(Json, KeepsIntDoubleDistinction) {
  auto parsed = ParseJson("{\"a\":5,\"b\":5.0,\"c\":5e0,\"d\":-0.0}");
  ASSERT_TRUE(parsed.ok());
  EXPECT_TRUE(parsed->Find("a")->is_int());
  EXPECT_TRUE(parsed->Find("b")->is_double());
  EXPECT_TRUE(parsed->Find("c")->is_double());
  EXPECT_TRUE(parsed->Find("d")->is_double());
  EXPECT_EQ(parsed->Find("a")->int_value(), 5);
  EXPECT_DOUBLE_EQ(parsed->Find("b")->number_value(), 5.0);
  // An integer-valued double serializes with ".0" so the kind survives a
  // round trip (5 and 5.0 must not collapse).
  EXPECT_EQ(parsed->Write(), "{\"a\":5,\"b\":5.0,\"c\":5.0,\"d\":-0.0}");
}

TEST(Json, Int64OverflowIsAParseErrorNotADouble) {
  EXPECT_TRUE(ParseJson("{\"n\":9223372036854775807}").ok());
  auto overflowed = ParseJson("{\"n\":9223372036854775808}");
  EXPECT_FALSE(overflowed.ok());
  EXPECT_EQ(overflowed.status().code(), StatusCode::kParseError);
}

TEST(Json, RejectsDuplicateKeys) {
  auto parsed = ParseJson("{\"k\":1,\"k\":2}");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), StatusCode::kParseError);
}

TEST(Json, RejectsMalformedDocuments) {
  for (const char* bad :
       {"", "{", "}", "{]", "[}", "{\"a\":}", "{\"a\" 1}", "{'a':1}",
        "{\"a\":1,}", "[1,]", "{\"a\":1}x", "{\"a\":01}", "{\"a\":+1}",
        "{\"a\":NaN}", "{\"a\":Infinity}", "{\"a\":1e}", "{\"a\":.5}",
        "nul", "tru", "{\"a\":\"\\q\"}", "{\"a\":\"\\ud800\"}"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
}

TEST(Json, NumbersFollowRfc8259NotTheLooserSharedGrammar) {
  // The shared strict parser (common/parse.h) accepts "1." and "1.e5";
  // RFC 8259 does not — frac and exp each require at least one digit.
  for (const char* bad :
       {"[1.]", "[1.e5]", "[-3.]", "[1.E2]", "[2e]", "[2e+]", "[2E-]",
        "[0.]", "[1e++2]", "[1.2.3]"}) {
    EXPECT_FALSE(ParseJson(bad).ok()) << "accepted: " << bad;
  }
  for (const char* good :
       {"[1.0]", "[1.0e5]", "[0.5]", "[-0.25E-2]", "[2e7]", "[1e+2]"}) {
    EXPECT_TRUE(ParseJson(good).ok()) << "rejected: " << good;
  }
}

TEST(Json, NonFiniteDoublesSerializeAsNullNotInvalidJson) {
  // "inf"/"nan" bytes would make the frame unparseable by our own strict
  // parser; null is deterministic and survives the round trip.
  JsonValue doc = JsonValue::Object();
  doc.Set("a", JsonValue::Double(std::numeric_limits<double>::infinity()));
  doc.Set("b", JsonValue::Double(-std::numeric_limits<double>::infinity()));
  doc.Set("c", JsonValue::Double(std::numeric_limits<double>::quiet_NaN()));
  doc.Set("d", JsonValue::Double(1.5));
  const std::string text = doc.Write();
  EXPECT_EQ(text, "{\"a\":null,\"b\":null,\"c\":null,\"d\":1.5}");
  EXPECT_TRUE(ParseJson(text).ok());
}

TEST(Json, DecodesEscapesAndUnicode) {
  auto parsed = ParseJson(
      "{\"s\":\"a\\\"b\\\\c\\n\\t\\u0041\\u00e9\\ud83d\\ude00\"}");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  const std::string& s = parsed->Find("s")->string_value();
  EXPECT_EQ(s, std::string("a\"b\\c\n\tA\xc3\xa9\xf0\x9f\x98\x80"));
}

TEST(Json, DepthLimited) {
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "[";
  for (int i = 0; i < 200; ++i) deep += "]";
  EXPECT_FALSE(ParseJson(deep).ok());
}

TEST(Json, FindAndSetReplace) {
  JsonValue doc = JsonValue::Object();
  doc.Set("a", JsonValue::Int(1));
  doc.Set("a", JsonValue::Int(2));  // replaces, no duplicate member
  EXPECT_EQ(doc.members().size(), 1u);
  EXPECT_EQ(doc.Find("a")->int_value(), 2);
  EXPECT_EQ(doc.Find("missing"), nullptr);
}

// ---------------------------------------------------------------------------
// Framing over a socketpair.
// ---------------------------------------------------------------------------

class FramingTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_EQ(::socketpair(AF_UNIX, SOCK_STREAM, 0, fds_), 0);
  }
  void TearDown() override {
    if (fds_[0] >= 0) ::close(fds_[0]);
    if (fds_[1] >= 0) ::close(fds_[1]);
  }
  int fds_[2] = {-1, -1};
};

TEST_F(FramingTest, WriteThenReadRoundTrips) {
  ASSERT_TRUE(WriteFrame(fds_[0], "{\"op\":\"ping\"}").ok());
  std::string payload;
  ASSERT_TRUE(ReadFrame(fds_[1], &payload).ok());
  EXPECT_EQ(payload, "{\"op\":\"ping\"}");
}

TEST_F(FramingTest, SequentialFramesKeepBoundaries) {
  ASSERT_TRUE(WriteFrame(fds_[0], "first").ok());
  ASSERT_TRUE(WriteFrame(fds_[0], "second frame").ok());
  std::string a, b;
  ASSERT_TRUE(ReadFrame(fds_[1], &a).ok());
  ASSERT_TRUE(ReadFrame(fds_[1], &b).ok());
  EXPECT_EQ(a, "first");
  EXPECT_EQ(b, "second frame");
}

TEST_F(FramingTest, CleanEofIsNotFound) {
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kNotFound);
}

TEST_F(FramingTest, TruncatedFrameIsIoError) {
  // Length prefix promises 100 bytes; only 3 arrive before EOF.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
  ::close(fds_[0]);
  fds_[0] = -1;
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kIoError);
}

TEST_F(FramingTest, ZeroAndOversizedLengthsAreParseErrors) {
  const unsigned char zero[4] = {0, 0, 0, 0};
  ASSERT_EQ(::write(fds_[0], zero, 4), 4);
  std::string payload;
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kParseError);

  // 0xFFFFFFFF length: far past kMaxFrameBytes.
  const unsigned char huge[4] = {0xff, 0xff, 0xff, 0xff};
  ASSERT_EQ(::write(fds_[0], huge, 4), 4);
  EXPECT_EQ(ReadFrame(fds_[1], &payload).code(), StatusCode::kParseError);
}

TEST_F(FramingTest, RejectsOversizedOutboundPayload) {
  std::string huge(kMaxFrameBytes + 1, 'x');
  EXPECT_EQ(WriteFrame(fds_[0], huge).code(), StatusCode::kInvalidArgument);
}

TEST_F(FramingTest, WriteAfterPeerCloseIsIoErrorNotSigpipe) {
  // The peer disconnects before the response is written — the canonical
  // "client gave up" race.  On an AF_UNIX pair the very first send after
  // the close hits EPIPE, so without MSG_NOSIGNAL this test would die of
  // SIGPIPE instead of failing an assertion.
  ::close(fds_[1]);
  fds_[1] = -1;
  const auto first = WriteFrame(fds_[0], "{\"op\":\"ping\"}");
  EXPECT_EQ(first.code(), StatusCode::kIoError);
  // And again: the error is sticky per-write, never process-fatal.
  EXPECT_EQ(WriteFrame(fds_[0], "{\"op\":\"ping\"}").code(),
            StatusCode::kIoError);
}

TEST_F(FramingTest, LargeFrameSurvivesPartialReads) {
  // 1 MiB frame across a SOCK_STREAM pair exercises the read/write loops
  // (the kernel will split this into many partial transfers).
  std::string big(1 << 20, 'z');
  big[12345] = 'q';
  std::thread writer([this, &big] {
    EXPECT_TRUE(WriteFrame(fds_[0], big).ok());
  });
  std::string payload;
  ASSERT_TRUE(ReadFrame(fds_[1], &payload).ok());
  writer.join();
  EXPECT_EQ(payload, big);
}

// ---------------------------------------------------------------------------
// Read/write timeouts (poll-based; FrameTimeouts / WriteFrame timeout_ms).
// ---------------------------------------------------------------------------

TEST_F(FramingTest, IdleTimeoutFiresBeforeFirstByte) {
  // Nothing ever arrives: the idle phase expires and reports kIdle.
  std::string payload;
  FrameTimeoutKind kind = FrameTimeoutKind::kNone;
  const auto status =
      ReadFrame(fds_[1], &payload, FrameTimeouts{/*idle_ms=*/30,
                                                 /*frame_ms=*/0},
                &kind);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(kind, FrameTimeoutKind::kIdle);
}

TEST_F(FramingTest, MidFrameTimeoutFiresOnStalledBody) {
  // The header promises 100 bytes but only 3 arrive, then the peer
  // stalls (without closing): the mid-frame deadline must cut the read
  // off and say so — this is the anti-slowloris bound.
  const unsigned char header[4] = {0, 0, 0, 100};
  ASSERT_EQ(::write(fds_[0], header, 4), 4);
  ASSERT_EQ(::write(fds_[0], "abc", 3), 3);
  std::string payload;
  FrameTimeoutKind kind = FrameTimeoutKind::kNone;
  const auto status =
      ReadFrame(fds_[1], &payload, FrameTimeouts{/*idle_ms=*/0,
                                                 /*frame_ms=*/30},
                &kind);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(kind, FrameTimeoutKind::kMidFrame);
}

TEST_F(FramingTest, MidFrameDeadlineIsAbsoluteNotPerByte) {
  // A drip-feeding writer sends one byte at a time.  If the frame
  // deadline reset on every byte, this would never time out; absolute
  // means the whole frame must land within one window.
  const unsigned char header[4] = {0, 0, 0, 100};
  std::thread dripper([this, &header] {
    // MSG_NOSIGNAL: the reader closes its end mid-drip, and a plain
    // write() would raise SIGPIPE and kill the whole test binary.
    ::send(fds_[0], header, 4, MSG_NOSIGNAL);
    for (int i = 0; i < 30; ++i) {
      if (::send(fds_[0], "x", 1, MSG_NOSIGNAL) != 1) break;
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  });
  std::string payload;
  FrameTimeoutKind kind = FrameTimeoutKind::kNone;
  const auto status = ReadFrame(
      fds_[1], &payload, FrameTimeouts{/*idle_ms=*/0, /*frame_ms=*/50},
      &kind);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(kind, FrameTimeoutKind::kMidFrame);
  ::close(fds_[1]);
  fds_[1] = -1;
  dripper.join();
}

TEST_F(FramingTest, TimeoutsOffPreservesBlockingSemantics) {
  // FrameTimeouts{0, 0} must behave exactly like the untimed overload:
  // a complete frame round-trips, EOF is still kNotFound.
  ASSERT_TRUE(WriteFrame(fds_[0], "hello").ok());
  std::string payload;
  FrameTimeoutKind kind = FrameTimeoutKind::kMidFrame;  // must be reset
  ASSERT_TRUE(ReadFrame(fds_[1], &payload, FrameTimeouts{}, &kind).ok());
  EXPECT_EQ(payload, "hello");
  EXPECT_EQ(kind, FrameTimeoutKind::kNone);
  ::close(fds_[0]);
  fds_[0] = -1;
  EXPECT_EQ(ReadFrame(fds_[1], &payload, FrameTimeouts{}, &kind).code(),
            StatusCode::kNotFound);
}

TEST_F(FramingTest, WriteTimeoutFiresAgainstNeverReadingPeer) {
  // Shrink the pair's buffers so a modest frame cannot be absorbed by
  // the kernel, then write against a peer that never reads: the write
  // deadline must fire instead of blocking forever.
  const int small = 4096;
  ::setsockopt(fds_[0], SOL_SOCKET, SO_SNDBUF, &small, sizeof(small));
  ::setsockopt(fds_[1], SOL_SOCKET, SO_RCVBUF, &small, sizeof(small));
  std::string big(4 << 20, 'x');
  const auto status = WriteFrame(fds_[0], big, /*timeout_ms=*/50);
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
}

TEST_F(FramingTest, WriteTimeoutZeroStillBlocksUntilDrained) {
  // timeout_ms=0 keeps the pre-timeout blocking contract: a concurrent
  // reader drains the frame and the write completes.
  std::string big(1 << 20, 'y');
  std::thread reader([this] {
    std::string payload;
    EXPECT_TRUE(ReadFrame(fds_[1], &payload).ok());
    EXPECT_EQ(payload.size(), 1u << 20);
  });
  EXPECT_TRUE(WriteFrame(fds_[0], big, /*timeout_ms=*/0).ok());
  reader.join();
}

TEST(Protocol, OverloadedResponseCarriesRetryAfterHint) {
  const auto status = muve::common::Status::Unavailable(
      "overloaded: admission queue is full");
  JsonValue response = OverloadedResponse(status, 250);
  EXPECT_FALSE(response.Find("ok")->bool_value());
  const JsonValue* error = response.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string_value(), "unavailable");
  EXPECT_EQ(error->Find("exit_code")->int_value(), 7);
  ASSERT_NE(error->Find("retry_after_ms"), nullptr);
  EXPECT_EQ(error->Find("retry_after_ms")->int_value(), 250);
}

TEST(Protocol, ErrorResponseCarriesTypedCodeAndExitCode) {
  const auto status =
      muve::common::Status::DeadlineExceeded("too slow");
  JsonValue response = ErrorResponse(status);
  EXPECT_FALSE(response.Find("ok")->bool_value());
  const JsonValue* error = response.Find("error");
  ASSERT_NE(error, nullptr);
  EXPECT_EQ(error->Find("code")->string_value(), "deadline_exceeded");
  EXPECT_EQ(error->Find("exit_code")->int_value(),
            muve::common::ExitCodeForStatus(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(error->Find("message")->string_value(), "too slow");
}

}  // namespace
}  // namespace muve::server
