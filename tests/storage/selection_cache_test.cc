// SelectionCache unit tests (storage/selection_cache.h): LRU behavior,
// first-insert-wins, byte-budget eviction, and the stats contract the
// cross-query differential suite leans on: hits + misses == lookups.

#include "storage/selection_cache.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace muve::storage {
namespace {

std::shared_ptr<const RowSet> Rows(std::initializer_list<uint32_t> rows) {
  return std::make_shared<const RowSet>(rows);
}

TEST(SelectionCacheTest, MissThenHit) {
  SelectionCache cache;
  EXPECT_EQ(cache.Get("k"), nullptr);
  cache.Put("k", Rows({1, 2, 3}));
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, (RowSet{1, 2, 3}));
  const auto stats = cache.TotalStats();
  EXPECT_EQ(stats.lookups, 2);
  EXPECT_EQ(stats.hits, 1);
  EXPECT_EQ(stats.misses, 1);
  EXPECT_EQ(stats.insertions, 1);
}

TEST(SelectionCacheTest, FirstInsertWins) {
  SelectionCache cache;
  cache.Put("k", Rows({1}));
  cache.Put("k", Rows({9, 9, 9}));
  auto hit = cache.Get("k");
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, (RowSet{1}));
  EXPECT_EQ(cache.TotalStats().insertions, 1);
}

TEST(SelectionCacheTest, EntriesOutliveEviction) {
  // Tiny budget on one shard: inserting a second entry evicts the first,
  // but an outstanding shared_ptr stays valid.
  SelectionCache::Options options;
  options.max_bytes = 256;
  options.num_shards = 1;
  SelectionCache cache(options);
  cache.Put("a", Rows({1, 2, 3, 4, 5, 6, 7, 8}));
  auto held = cache.Get("a");
  ASSERT_NE(held, nullptr);
  // Large enough to blow the budget repeatedly.
  for (int i = 0; i < 8; ++i) {
    auto big = std::make_shared<RowSet>(64, static_cast<uint32_t>(i));
    cache.Put("b" + std::to_string(i),
              std::shared_ptr<const RowSet>(std::move(big)));
  }
  EXPECT_GT(cache.TotalStats().evictions, 0);
  EXPECT_EQ(*held, (RowSet{1, 2, 3, 4, 5, 6, 7, 8}));  // still intact
}

TEST(SelectionCacheTest, LruPrefersRecentlyUsed) {
  SelectionCache::Options options;
  options.max_bytes = 500;  // room for ~2 of the entries below, 1 shard
  options.num_shards = 1;
  SelectionCache cache(options);
  auto entry = [] {
    return std::shared_ptr<const RowSet>(
        std::make_shared<RowSet>(48, uint32_t{7}));
  };
  cache.Put("a", entry());
  cache.Put("b", entry());
  ASSERT_NE(cache.Get("a"), nullptr);  // refresh a: b is now LRU-back
  cache.Put("c", entry());             // evicts b, not a
  EXPECT_NE(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
}

TEST(SelectionCacheTest, ClearDropsEverything) {
  SelectionCache cache;
  cache.Put("a", Rows({1}));
  cache.Put("b", Rows({2}));
  cache.Clear();
  EXPECT_EQ(cache.Get("a"), nullptr);
  EXPECT_EQ(cache.Get("b"), nullptr);
  EXPECT_EQ(cache.TotalStats().bytes, 0);
}

TEST(SelectionCacheTest, StatsContractUnderConcurrency) {
  // The pinned invariant: hits + misses == lookups, exactly, no matter
  // how many threads race Get/Put on overlapping keys.
  SelectionCache cache;
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 400;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string((t * 7 + i) % 16);
        if (cache.Get(key) == nullptr) {
          cache.Put(key, Rows({static_cast<uint32_t>(i)}));
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto stats = cache.TotalStats();
  EXPECT_EQ(stats.lookups, int64_t{kThreads} * kOpsPerThread);
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
  EXPECT_GT(stats.hits, 0);
}

}  // namespace
}  // namespace muve::storage
