// Fault-injection suite (ctest label: faults).
//
// Exercises the failure model end to end by flipping the failpoints baked
// into production code (common/failpoint.h) and asserting that every
// injected fault degrades gracefully:
//   * I/O faults surface as error Statuses (and CLI exit codes), never
//     aborts;
//   * cache allocation refusals cost rescans, never correctness;
//   * aborted fused scans fall back to direct builds or fail typed;
//   * worker-task exceptions are rethrown caller-side, never terminate.
//
// The whole suite requires a build with -DMUVE_FAILPOINTS=ON (the `faults`
// CI job); in an ordinary build every case skips via FailpointsCompiledIn.

#include <gtest/gtest.h>

#include <atomic>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/failpoint.h"
#include "common/thread_pool.h"
#include "core/recommender.h"
#include "data/toy.h"
#include "storage/base_histogram_cache.h"
#include "storage/csv.h"
#include "storage/fused_scan.h"
#include "storage/predicate.h"

namespace muve {
namespace {

using common::FailpointAction;
using common::StatusCode;

class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    if (!common::FailpointsCompiledIn()) {
      GTEST_SKIP() << "build without -DMUVE_FAILPOINTS=ON; nothing to inject";
    }
  }
  void TearDown() override { common::ClearFailpoints(); }
};

std::string WriteTempCsv(const std::string& name) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::trunc);
  out << "a,b\n1,2\n3,4\n";
  return path;
}

// --- csv.read ---

TEST_F(FaultInjectionTest, CsvReadFaultReturnsIoError) {
  const std::string path = WriteTempCsv("fault_csv_ok.csv");
  ASSERT_TRUE(common::SetFailpoint("csv.read", "error").ok());
  auto result = storage::ReadCsvFile(path);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(FaultInjectionTest, CsvReadRecoversOnceFaultClears) {
  const std::string path = WriteTempCsv("fault_csv_recover.csv");
  ASSERT_TRUE(common::SetFailpoint("csv.read", "error").ok());
  ASSERT_FALSE(storage::ReadCsvFile(path).ok());
  common::ClearFailpoints();
  auto result = storage::ReadCsvFile(path);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->num_rows(), 2u);
}

// --- cache.insert (allocation refused) ---

TEST_F(FaultInjectionTest, CacheInsertOomServesBuildButForgets) {
  ASSERT_TRUE(common::SetFailpoint("cache.insert", "oom").ok());
  storage::BaseHistogramCache cache;
  int builds = 0;
  const auto builder = [&]() -> common::Result<storage::BaseHistogram> {
    ++builds;
    storage::BaseHistogram h;
    h.values = {1.0};
    h.sums = {2.0};
    h.sum_sqs = {4.0};
    h.prefix_counts = {0, 1};
    h.prefix_sums = {0.0, 2.0};
    h.prefix_sum_sqs = {0.0, 4.0};
    return h;
  };
  bool built = false;
  auto first = cache.GetOrBuild("k", builder, &built);
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(built);
  // The histogram the caller holds stays usable; the cache forgot it.
  EXPECT_EQ((*first)->num_fine_bins(), 1u);
  EXPECT_FALSE(cache.Contains("k"));
  // The next probe rebuilds: OOM costs rescans, never correctness.
  auto second = cache.GetOrBuild("k", builder, &built);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(built);
  EXPECT_EQ(builds, 2);
}

TEST_F(FaultInjectionTest, CacheInsertOomKeepsRecommendationExact) {
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = core::Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kLinear;
  options.vertical = core::VerticalStrategy::kLinear;
  auto baseline = recommender->Recommend(options);
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(common::SetFailpoint("cache.insert", "oom").ok());
  auto degraded = recommender->Recommend(options);
  ASSERT_TRUE(degraded.ok()) << degraded.status().ToString();
  // Identical recommendation; only the cost accounting may differ.
  ASSERT_EQ(degraded->views.size(), baseline->views.size());
  for (size_t i = 0; i < baseline->views.size(); ++i) {
    EXPECT_EQ(degraded->views[i].view.Key(), baseline->views[i].view.Key());
    EXPECT_EQ(degraded->views[i].bins, baseline->views[i].bins);
    EXPECT_EQ(degraded->views[i].utility, baseline->views[i].utility);
  }
  // Every refused insert forces the next probe to rebuild: strictly more
  // build scans than the cached baseline.
  EXPECT_GT(degraded->stats.base_builds, baseline->stats.base_builds);
  EXPECT_FALSE(degraded->stats.completeness.degraded);
}

// --- fused_scan.morsel ---

TEST_F(FaultInjectionTest, FusedScanFaultAbortsPassWithIoError) {
  const data::Dataset ds = data::MakeToyDataset();
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "error").ok());
  std::vector<storage::FusedScanPair> pairs{{"x", "m1"}};
  auto result = storage::FusedBuildBaseHistograms(
      *ds.table, ds.target_rows, pairs, /*pool=*/nullptr,
      /*morsel_size=*/8, /*stats=*/nullptr, /*scratch=*/nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

TEST_F(FaultInjectionTest, FusedScanFaultCachesNothing) {
  const data::Dataset ds = data::MakeToyDataset();
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "error").ok());
  storage::BaseHistogramCache cache;
  storage::BaseHistogramCache::FusedHistogramBuildRequest request;
  request.rows = &ds.target_rows;
  request.pairs.push_back({"t|x|m1", "x", "m1"});
  request.pairs.push_back({"t|x|m2", "x", "m2"});
  request.morsel_size = 8;
  auto status = cache.FusedBuild(*ds.table, request, nullptr, nullptr);
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kIoError);
  // A partially-scanned pass must never leave half-built histograms
  // behind.
  EXPECT_FALSE(cache.Contains("t|x|m1"));
  EXPECT_FALSE(cache.Contains("t|x|m2"));
}

TEST_F(FaultInjectionTest, PersistentFusedScanFaultFailsRecommendTyped) {
  // With the scan engine persistently failing, even the direct fallback
  // builds fail; Recommend must surface the typed I/O error — not abort,
  // not mask it as kInternal.
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = core::Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "error").ok());
  for (const int threads : {1, 4}) {
    core::SearchOptions options;
    options.num_threads = threads;
    auto run = recommender->Recommend(options);
    ASSERT_FALSE(run.ok()) << "threads=" << threads;
    EXPECT_EQ(run.status().code(), StatusCode::kIoError)
        << "threads=" << threads << ": " << run.status().ToString();
  }
}

TEST_F(FaultInjectionTest, SlowMorselsTripDeadlineIntoDegradedRun) {
  // delay(...) models a slow device: the scan itself succeeds, but a
  // tight deadline expires during the prewarm pass and the search
  // degrades instead of blocking.
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = core::Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "delay(30ms)").ok());
  core::SearchOptions options;
  options.deadline_ms = 5.0;
  auto run = recommender->Recommend(options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->stats.completeness.degraded);
  EXPECT_EQ(run->stats.completeness.status, StatusCode::kDeadlineExceeded);
}

TEST_F(FaultInjectionTest, FusedScanOomActsLikeError) {
  const data::Dataset ds = data::MakeToyDataset();
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "oom").ok());
  std::vector<storage::FusedScanPair> pairs{{"x", "m1"}};
  auto result = storage::FusedBuildBaseHistograms(
      *ds.table, ds.target_rows, pairs, /*pool=*/nullptr,
      /*morsel_size=*/8, /*stats=*/nullptr, /*scratch=*/nullptr);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kIoError);
}

// --- thread_pool.task ---

TEST_F(FaultInjectionTest, ThreadPoolTaskThrowSurfacesOnCaller) {
  ASSERT_TRUE(common::SetFailpoint("thread_pool.task", "throw").ok());
  common::ThreadPool pool(4);
  EXPECT_THROW(pool.ParallelFor(8, [](size_t, size_t) {}),
               common::FailpointError);
  // The pool survives; the next (clean) round runs normally.
  common::ClearFailpoints();
  std::atomic<int> ran{0};
  pool.ParallelFor(8, [&](size_t, size_t) {
    ran.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(ran.load(), 8);
}

TEST_F(FaultInjectionTest, ThreadPoolTaskThrowInlinePath) {
  ASSERT_TRUE(common::SetFailpoint("thread_pool.task", "throw").ok());
  common::ThreadPool pool(1);  // inline path must mirror the N-thread one
  EXPECT_THROW(pool.ParallelFor(4, [](size_t, size_t) {}),
               common::FailpointError);
}

TEST_F(FaultInjectionTest, WorkerFaultFailsRecommendGracefully) {
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = core::Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  ASSERT_TRUE(common::SetFailpoint("thread_pool.task", "throw").ok());
  core::SearchOptions options;
  options.num_threads = 4;
  auto run = recommender->Recommend(options);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInternal);
  EXPECT_NE(run.status().message().find("thread_pool.task"),
            std::string::npos)
      << run.status().ToString();
  // The recommender remains usable after the fault clears.
  common::ClearFailpoints();
  auto retry = recommender->Recommend(options);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_FALSE(retry->views.empty());
}

// --- combined / config surface ---

TEST_F(FaultInjectionTest, EnvStyleConfigDrivesMultipleSites) {
  ASSERT_TRUE(common::ConfigureFailpointsFromString(
                  "csv.read=error;cache.insert=oom")
                  .ok());
  const std::string path = WriteTempCsv("fault_csv_multi.csv");
  EXPECT_FALSE(storage::ReadCsvFile(path).ok());
  storage::BaseHistogramCache cache;
  bool built = false;
  auto result = cache.GetOrBuild(
      "k",
      []() -> common::Result<storage::BaseHistogram> {
        storage::BaseHistogram h;
        h.values = {1.0};
        h.sums = {1.0};
        h.sum_sqs = {1.0};
        h.prefix_counts = {0, 1};
        h.prefix_sums = {0.0, 1.0};
        h.prefix_sum_sqs = {0.0, 1.0};
        return h;
      },
      &built);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(cache.Contains("k"));
}

TEST_F(FaultInjectionTest, CacheOomUnderParallelSearchStaysExact) {
  // OOM-degraded caching with a parallel MuVE-MuVE run: utilities must
  // match the serial, fault-free baseline exactly.
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = core::Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  core::SearchOptions options;
  options.horizontal = core::HorizontalStrategy::kMuve;
  options.vertical = core::VerticalStrategy::kMuve;
  auto baseline = recommender->Recommend(options);
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(common::SetFailpoint("cache.insert", "oom").ok());
  options.num_threads = 4;
  auto faulted = recommender->Recommend(options);
  ASSERT_TRUE(faulted.ok()) << faulted.status().ToString();
  ASSERT_EQ(faulted->views.size(), baseline->views.size());
  for (size_t i = 0; i < baseline->views.size(); ++i) {
    EXPECT_EQ(faulted->views[i].utility, baseline->views[i].utility)
        << "rank " << i;
  }
}

}  // namespace
}  // namespace muve
