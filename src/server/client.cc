#include "server/client.h"

#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <thread>

#include "server/protocol.h"

namespace muve::server {

using common::Result;
using common::Status;

bool IsOverloadedResponse(const JsonValue& response, int64_t* retry_after_ms) {
  if (retry_after_ms != nullptr) *retry_after_ms = 0;
  const JsonValue* ok = response.Find("ok");
  if (ok == nullptr || !ok->is_bool() || ok->bool_value()) return false;
  const JsonValue* error = response.Find("error");
  if (error == nullptr || !error->is_object()) return false;
  const JsonValue* code = error->Find("code");
  if (code == nullptr || !code->is_string() ||
      code->string_value() != "unavailable") {
    return false;
  }
  const JsonValue* hint = error->Find("retry_after_ms");
  if (retry_after_ms != nullptr && hint != nullptr && hint->is_int()) {
    *retry_after_ms = hint->int_value();
  }
  return true;
}

RetryingClient::RetryingClient(int port, RetryPolicy policy)
    : port_(port), policy_(policy), jitter_(policy.jitter_seed) {}

RetryingClient::~RetryingClient() { Disconnect(); }

void RetryingClient::Disconnect() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

int RetryingClient::BackoffMs(int attempt, int64_t retry_after_ms) {
  const int shift = std::min(attempt, 20);
  int64_t backoff = static_cast<int64_t>(policy_.base_backoff_ms) << shift;
  backoff = std::min<int64_t>(backoff, policy_.max_backoff_ms);
  backoff = std::max<int64_t>(backoff, retry_after_ms);
  backoff = std::max<int64_t>(backoff, 1);
  // Full jitter over the upper half: [backoff/2, backoff].  Keeps the
  // exponential shape (per-attempt means still double) while breaking
  // the lockstep of many clients shed by the same burst.
  const int64_t low = std::max<int64_t>(1, backoff / 2);
  std::uniform_int_distribution<int64_t> dist(low, backoff);
  return static_cast<int>(dist(jitter_));
}

Result<JsonValue> RetryingClient::Call(const JsonValue& request) {
  const int attempts = std::max(1, policy_.max_attempts);
  Status last_transport = Status::OK();
  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) stats_.retries++;
    if (fd_ < 0) {
      Result<int> dialed = DialLocal(port_);
      if (!dialed.ok()) {
        stats_.transport_errors++;
        last_transport = dialed.status();
        if (attempt + 1 < attempts) {
          const int sleep_ms = BackoffMs(attempt, 0);
          stats_.backoff_ms_total += sleep_ms;
          std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        }
        continue;
      }
      fd_ = *dialed;
    }
    Result<JsonValue> response = RoundTrip(fd_, request);
    if (!response.ok()) {
      // Transport failure: the connection is unusable (the server may
      // have reaped it, or it died mid-frame).  Drop it and retry fresh;
      // recommends are idempotent so a duplicate send is harmless.
      stats_.transport_errors++;
      last_transport = response.status();
      Disconnect();
      if (attempt + 1 < attempts) {
        const int sleep_ms = BackoffMs(attempt, 0);
        stats_.backoff_ms_total += sleep_ms;
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
      }
      continue;
    }
    int64_t retry_after_ms = 0;
    if (IsOverloadedResponse(*response, &retry_after_ms)) {
      stats_.sheds_seen++;
      if (attempt + 1 < attempts) {
        const int sleep_ms = BackoffMs(attempt, retry_after_ms);
        stats_.backoff_ms_total += sleep_ms;
        std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms));
        continue;
      }
    }
    return response;  // success, a non-overload error, or budget spent
  }
  return last_transport.ok()
             ? Status::Unavailable("retry budget exhausted")
             : last_transport;
}

}  // namespace muve::server
