// Seeding helpers for the fuzzed suites (fuzz_exactness_test,
// rebin_differential_test, utility_property_test).
//
// Every fuzzed suite derives its per-case seeds from ONE base seed:
//   * default: a fixed constant, so ordinary runs are deterministic and
//     a red run is reproducible by rerunning the same binary;
//   * override: MUVE_FUZZ_SEED=<n> (decimal, or 0x-prefixed hex) explores
//     a fresh region of the input space — useful for soak-testing the
//     exactness guards beyond the committed seeds.
// Each test body opens with SCOPED_TRACE(FuzzTrace(...)), so ANY failing
// assertion prints the base seed and the exact per-case seed, making red
// runs reproducible by construction.

#ifndef MUVE_TESTS_FUZZ_UTIL_H_
#define MUVE_TESTS_FUZZ_UTIL_H_

#include <cstdint>
#include <cstdlib>
#include <sstream>
#include <string>

namespace muve::testutil {

inline constexpr uint64_t kDefaultFuzzSeed = 0x5EEDF00DULL;

// The run's base seed: MUVE_FUZZ_SEED when set (and parseable), the fixed
// default otherwise.  Read once per process.
inline uint64_t FuzzBaseSeed() {
  static const uint64_t seed = [] {
    const char* env = std::getenv("MUVE_FUZZ_SEED");
    if (env != nullptr && *env != '\0') {
      char* end = nullptr;
      const uint64_t parsed = std::strtoull(env, &end, 0);
      if (end != env && *end == '\0') return parsed;
    }
    return kDefaultFuzzSeed;
  }();
  return seed;
}

// Per-case seed: the base seed mixed with the case index through the
// splitmix64 finalizer, so neighbouring indices land in unrelated regions
// of the generator's state space and a changed base seed changes every
// case.
inline uint64_t FuzzSeed(uint64_t index) {
  uint64_t x = FuzzBaseSeed() + 0x9E3779B97F4A7C15ULL * (index + 1);
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Message for SCOPED_TRACE at the top of each fuzzed test body; gtest
// prints it with every failing assertion in scope.
inline std::string FuzzTrace(uint64_t index, uint64_t case_seed) {
  std::ostringstream os;
  os << "fuzz case index=" << index << " seed=" << case_seed
     << " (base seed " << FuzzBaseSeed()
     << "; rerun with MUVE_FUZZ_SEED=" << FuzzBaseSeed()
     << " to reproduce)";
  return os.str();
}

}  // namespace muve::testutil

#endif  // MUVE_TESTS_FUZZ_UTIL_H_
