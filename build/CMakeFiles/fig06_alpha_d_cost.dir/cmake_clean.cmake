file(REMOVE_RECURSE
  "CMakeFiles/fig06_alpha_d_cost.dir/bench/fig06_alpha_d_cost.cpp.o"
  "CMakeFiles/fig06_alpha_d_cost.dir/bench/fig06_alpha_d_cost.cpp.o.d"
  "bench/fig06_alpha_d_cost"
  "bench/fig06_alpha_d_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_alpha_d_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
