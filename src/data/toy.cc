#include "data/toy.h"

#include <memory>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "storage/predicate.h"

namespace muve::data {

Dataset MakeToyDataset() {
  common::Stopwatch setup_timer;
  storage::Schema schema({
      {"x", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"y", storage::ValueType::kInt64, storage::FieldRole::kDimension},
      {"grp", storage::ValueType::kString, storage::FieldRole::kNone},
      {"m1", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
      {"m2", storage::ValueType::kDouble, storage::FieldRole::kMeasure},
  });
  auto table = std::make_shared<storage::Table>(schema);
  // 90 rows: x cycles 0..29, y cycles 0..9; every third row is 'a'.
  for (int i = 0; i < static_cast<int>(kToyRows); ++i) {
    const int x = i % 30;
    const int y = i % 10;
    const bool target = i % 3 == 0;
    const double m1 = target ? 1.0 + 0.5 * x : 10.0;
    const double m2 = 1.0 + 0.1 * i;
    const common::Status st = table->AppendRow({
        storage::Value(static_cast<int64_t>(x)),
        storage::Value(static_cast<int64_t>(y)),
        storage::Value(target ? "a" : "b"),
        storage::Value(m1),
        storage::Value(m2),
    });
    MUVE_CHECK(st.ok()) << st.ToString();
  }

  Dataset ds;
  ds.name = "toy";
  ds.table = table;
  ds.dimensions = {"x", "y"};
  ds.measures = {"m1", "m2"};
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg};
  ds.query_predicate_sql = "grp = 'a'";
  auto pred = storage::MakeComparison("grp", storage::CompareOp::kEq,
                                      storage::Value("a"));
  storage::FilterStats filter_stats;
  auto rows = storage::Filter(*table, pred.get(), nullptr, &filter_stats);
  MUVE_CHECK(rows.ok()) << rows.status().ToString();
  ds.target_rows = std::move(rows).value();
  ds.all_rows = storage::AllRows(table->num_rows());
  ds.predicate_rows_filtered = filter_stats.rows_in - filter_stats.rows_out;
  ds.chunks_skipped = filter_stats.chunks_skipped;
  ds.setup_time_ms = setup_timer.ElapsedMillis();
  return ds;
}

}  // namespace muve::data
