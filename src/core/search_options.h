// Configuration surface for the search strategies (Section IV / V).
//
// A recommendation run is described by a SearchH-SearchV combination
// (paper naming: Linear-Linear, HC-Linear, MuVE-Linear, MuVE-MuVE), an
// optional range-partitioning of the bin domain (additive step / geometric
// — the paper's SearchH(A) / SearchH(G)), and an optional vertical
// approximation (view refinement SearchV(R) / view skipping SearchV(S)).

#ifndef MUVE_CORE_SEARCH_OPTIONS_H_
#define MUVE_CORE_SEARCH_OPTIONS_H_

#include <cstdint>
#include <memory>
#include <string>

#include "common/exec_context.h"
#include "common/status.h"
#include "core/distance.h"
#include "core/utility.h"

namespace muve::storage {
class BaseHistogramCache;
}  // namespace muve::storage

namespace muve::core {

enum class HorizontalStrategy { kLinear, kHillClimbing, kMuve };
enum class VerticalStrategy { kLinear, kMuve };
enum class VerticalApproximation { kNone, kRefinement, kSkipping };
enum class PartitionKind { kAdditive, kGeometric };

// How MuVE's incremental evaluation orders the two expensive probes.
// kPriorityRule is the paper's cost/benefit rule; the fixed orders exist
// for the probe-order ablation.
enum class ProbeOrderPolicy { kPriorityRule, kDeviationFirst, kAccuracyFirst };

const char* HorizontalStrategyName(HorizontalStrategy s);
const char* VerticalStrategyName(VerticalStrategy s);

// The bin-domain range partitioning (Section IV-C3).
struct PartitionSpec {
  PartitionKind kind = PartitionKind::kAdditive;
  int step = 1;  // additive increment; ignored for geometric

  bool IsDefault() const {
    return kind == PartitionKind::kAdditive && step == 1;
  }
};

struct SearchOptions {
  Weights weights = Weights::PaperDefault();
  int k = 5;
  DistanceKind distance = DistanceKind::kEuclidean;

  HorizontalStrategy horizontal = HorizontalStrategy::kMuve;
  VerticalStrategy vertical = VerticalStrategy::kMuve;
  VerticalApproximation approximation = VerticalApproximation::kNone;
  PartitionSpec partition;

  // View refinement's fixed first-pass binning `def` (Section IV-C1).
  int refinement_default_bins = 4;

  // Sampling-based approximation (Section II-A's third optimization
  // family): probes scan a deterministic uniform row sample of this
  // fraction of D_Q and D_B.  1.0 = exact.  Composable with any scheme;
  // recommendations become estimates (see bench/ablate_sampling).
  double sample_fraction = 1.0;
  uint64_t sample_seed = 0x5A3D1E;

  // Worker threads for the shared work-stealing pool; every scheme
  // (vertical Linear, MuVE-MuVE, shared scans, refinement, skipping)
  // accepts > 1.  1 = serial.  For exact schemes the parallel top-k
  // matches the serial one (bitwise for non-pruning schemes; identical
  // utilities for MuVE's pruned searches, whose threshold snapshots may
  // lag under concurrency and prune less, never unsoundly more).  The
  // cost metric still sums per-worker work (Eq. 7 measures total
  // processing, not latency); see Recommender's threading-model comment.
  int num_threads = 1;

  // Base-histogram prefix-sum cache (sharing optimization, Section II-A):
  // horizontal search probes one view at many bin counts, so each (A, M)
  // side is scanned ONCE into a finest-granularity histogram and every
  // (view, b) probe afterwards is derived by prefix-sum coarsening
  // without touching rows.  One store is shared across all strategies
  // and pool workers of a Recommend() call.  Exact for COUNT (and SUM
  // over integer measures) and FP-tolerant otherwise — top-k output is
  // identical in practice (pinned by tests/core/rebin_differential_test);
  // turn off to measure the savings (bench/ablate_sharing) or to force
  // the direct scan path.  MIN/MAX and categorical probes always scan
  // directly.
  bool base_histogram_cache = true;

  // Fused prewarm (the fused morsel-parallel scan engine): before any
  // strategy runs, ONE fused pass per side (D_Q, D_B) builds the base
  // histograms of EVERY cache-eligible (A, M) pair at once — |A| x |M|
  // per-pair build scans collapse into two row-set traversals, and the
  // pass splits into ~64K-row morsels across the worker pool.  Strictly
  // an execution-plan change: the histograms (and hence the top-k) are
  // identical to on-demand per-pair builds.  No effect when
  // base_histogram_cache is off.  Turn off to measure the savings
  // (bench/fused_scan_bench).
  bool fused_prewarm = true;

  // When a probe misses the base-histogram cache (prewarm off, or a pair
  // the prewarm could not see), batch the build: one fused pass builds
  // every still-missing (A, M) pair that shares the probe's dimension on
  // that side, instead of just the pair that missed.  Off = strict
  // per-pair on-demand builds (the pre-fused-engine behavior; the
  // bench/fused_scan_bench baseline).  No effect when
  // base_histogram_cache is off.
  bool fused_miss_batching = true;

  // Rows per morsel for fused builds; 0 = engine default (64K).  The
  // morsel partitioning fixes the floating-point association of fused
  // sums, so changing it can shift AVG/STD/VAR results within FP
  // tolerance; thread count never does.
  size_t fused_morsel_size = 0;

  // Cross-request sharing (the serving-path optimization): a base-
  // histogram store OWNED BY THE CALLER and reused across Recommend()
  // calls, so the second identical request's prewarm is all cache hits
  // instead of two fused scans.  muved holds one per (dataset, canonical
  // predicate) registry entry.  Hard requirement: every run handed this
  // store must probe IDENTICAL row sets — same dataset, same predicate,
  // no sampling — so Recommend() ignores it (fresh per-run store, as
  // before) when sample_fraction < 1.0.  The histograms a run reads back
  // are identical to the ones it would have built (pinned by
  // tests/storage/cross_query_cache_test.cc), so the top-k does not
  // change; only the stats blocks' build/hit split does.  nullptr
  // (default) = no sharing.
  std::shared_ptr<storage::BaseHistogramCache> shared_base_cache;

  // Coalesce concurrent identical fused passes on the (shared) cache
  // into one single-flight scan with waiting consumers: N requests
  // racing the same cold (dataset, predicate) run ONE build pass
  // (ExecStats::fused_coalesced counts the parked sides).  Semantically
  // invisible — waiters wake to cache hits over the same histograms —
  // and a no-op without concurrency, so it defaults on.
  bool fused_coalescing = true;

  // SeeDB-style shared scans (Section II-A's orthogonal optimization):
  // evaluate all same-dimension views of each bin count with one target
  // and one comparison scan.  Linear-Linear without approximations only
  // (pruning and sharing pull in opposite directions; the ablate_sharing
  // bench quantifies the trade).
  bool shared_scans = false;

  // --- Execution control (common/exec_context.h) ---
  //
  // A bounded run stops *starting* probes once any bound trips and
  // returns the best top-k found so far, flagged in
  // ExecStats::completeness with the first cause.  Guarantee: a run
  // whose bounds never trip is bit-identical to the unbounded run.

  // Wall-clock deadline in milliseconds from the start of Recommend().
  // < 0 (default) = unbounded; 0 = already expired (useful for testing
  // the empty-but-valid degraded path); the deadline is polled at work
  // boundaries (per view, per bin count, per round, per morsel), so
  // overshoot is bounded by one probe, not one view.
  double deadline_ms = -1.0;

  // Cooperative cancellation: the caller keeps the token and calls
  // Cancel() (e.g. the user navigated away); the search observes it at
  // the next boundary poll.  nullptr = not cancellable.
  std::shared_ptr<common::CancellationToken> cancel_token;

  // Caps total rows scanned (build + probe passes) across all workers.
  // 0 = unbounded.  Best-effort under concurrency: in-flight passes
  // complete before every worker observes the trip.
  int64_t max_rows_scanned = 0;

  // Caps the base-histogram cache's resident bytes (0 = the cache's own
  // default, 64 MiB).  Evictions past the cap degrade to rebuilds, never
  // to errors.
  size_t max_cache_bytes = 0;

  // Hill Climbing's random starting point.
  uint64_t hc_seed = 0x5EEDB;

  // Ablation switches for MuVE's two pruning techniques (both on by
  // default; Linear and HC ignore them).
  bool enable_early_termination = true;
  bool enable_incremental_evaluation = true;
  ProbeOrderPolicy probe_order = ProbeOrderPolicy::kPriorityRule;

  // Checks weight validity, k >= 1, step >= 1, and that vertical MuVE is
  // paired with horizontal MuVE (the paper's MuVE-MuVE integration).
  common::Status Validate() const;

  // Paper naming, e.g. "MuVE(G)-Linear(R)".
  std::string SchemeName() const;
};

}  // namespace muve::core

#endif  // MUVE_CORE_SEARCH_OPTIONS_H_
