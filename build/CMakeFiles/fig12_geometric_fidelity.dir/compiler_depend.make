# Empty compiler generated dependencies file for fig12_geometric_fidelity.
# This may be replaced when dependencies are built.
