#include "core/candidate.h"

#include <gtest/gtest.h>

#include <limits>

#include "test_util.h"

namespace muve::core {
namespace {

constexpr double kNoThreshold = -std::numeric_limits<double>::infinity();

class CandidateTest : public ::testing::Test {
 protected:
  CandidateTest() : dataset_(testutil::MakeToyDataset()) {
    auto space = ViewSpace::Create(dataset_);
    EXPECT_TRUE(space.ok());
    space_ = std::make_unique<ViewSpace>(std::move(space).value());
    view_ = View{"x", "m1", storage::AggregateFunction::kSum};
  }

  data::Dataset dataset_;
  std::unique_ptr<ViewSpace> space_;
  View view_;
};

TEST_F(CandidateTest, FullEvaluationWithoutPruning) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  const CandidateResult result = EvaluateCandidate(
      eval, view_, 5, options, kNoThreshold, /*allow_pruning=*/false);
  ASSERT_EQ(result.outcome, CandidateResult::Outcome::kFullyEvaluated);
  EXPECT_EQ(result.scored.bins, 5);
  EXPECT_DOUBLE_EQ(result.scored.usability, 0.2);
  EXPECT_NEAR(result.scored.utility,
              Utility(options.weights, result.scored.deviation,
                      result.scored.accuracy, 0.2),
              1e-12);
  EXPECT_EQ(eval.stats().fully_probed, 1);
  EXPECT_EQ(eval.stats().candidates_considered, 1);
}

TEST_F(CandidateTest, SBoundPrunesBeforeAnyProbe) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;  // aD=0.2 aA=0.2 aS=0.6
  // bound = 0.4 + 0.6/10 = 0.46 <= threshold 0.5 -> pruned with no probes.
  const CandidateResult result = EvaluateCandidate(
      eval, view_, 10, options, 0.5, /*allow_pruning=*/true);
  EXPECT_EQ(result.outcome, CandidateResult::Outcome::kPrunedBeforeProbes);
  EXPECT_EQ(eval.stats().target_queries, 0);
  EXPECT_EQ(eval.stats().comparison_queries, 0);
  EXPECT_EQ(eval.stats().pruned_before_probes, 1);
}

TEST_F(CandidateTest, PartialBoundPrunesSecondProbe) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  options.probe_order = ProbeOrderPolicy::kDeviationFirst;
  // Pick a threshold above what deviation+perfect-accuracy can reach but
  // below the S-bound so the first probe runs.
  const double s = Usability(10);
  ViewEvaluator probe_eval(dataset_, *space_);
  const double deviation = probe_eval.EvaluateDeviation(view_, 10);
  const double after_first =
      options.weights.deviation * deviation + options.weights.accuracy +
      options.weights.usability * s;
  const double before_any = UtilityUpperBound(options.weights, s);
  ASSERT_LT(after_first, before_any);
  const double threshold = (after_first + before_any) / 2.0;

  const CandidateResult result = EvaluateCandidate(
      eval, view_, 10, options, threshold, /*allow_pruning=*/true);
  EXPECT_EQ(result.outcome,
            CandidateResult::Outcome::kPrunedAfterFirstProbe);
  EXPECT_EQ(eval.stats().deviation_evals, 1);
  EXPECT_EQ(eval.stats().accuracy_evals, 0);
  EXPECT_EQ(eval.stats().pruned_after_first_probe, 1);
}

TEST_F(CandidateTest, AccuracyFirstOrderSkipsDeviation) {
  SearchOptions options;
  options.probe_order = ProbeOrderPolicy::kAccuracyFirst;
  // Derive a threshold strictly between the after-accuracy bound and the
  // S-bound so exactly the deviation probe gets pruned.
  const int bins = 2;
  const double s = Usability(bins);
  ViewEvaluator probe_eval(dataset_, *space_);
  const double accuracy = probe_eval.EvaluateAccuracy(view_, bins);
  ASSERT_LT(accuracy, 1.0);  // coarse binning of a skewed series
  const double after_first = options.weights.deviation +
                             options.weights.accuracy * accuracy +
                             options.weights.usability * s;
  const double before_any = UtilityUpperBound(options.weights, s);
  const double threshold = (after_first + before_any) / 2.0;

  ViewEvaluator eval(dataset_, *space_);
  const CandidateResult result = EvaluateCandidate(
      eval, view_, bins, options, threshold, /*allow_pruning=*/true);
  EXPECT_EQ(result.outcome,
            CandidateResult::Outcome::kPrunedAfterFirstProbe);
  EXPECT_EQ(eval.stats().accuracy_evals, 1);
  EXPECT_EQ(eval.stats().deviation_evals, 0);
  EXPECT_EQ(eval.stats().comparison_queries, 0);
}

TEST_F(CandidateTest, PruningDisabledEvaluatesEverything) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  options.enable_incremental_evaluation = false;
  const CandidateResult result = EvaluateCandidate(
      eval, view_, 10, options, 0.99, /*allow_pruning=*/true);
  EXPECT_EQ(result.outcome, CandidateResult::Outcome::kFullyEvaluated);
  EXPECT_EQ(eval.stats().fully_probed, 1);
}

TEST_F(CandidateTest, PrunedCandidateNeverBeatsThreshold) {
  // Soundness: whenever pruning fires, the candidate's true utility is
  // indeed <= threshold.
  SearchOptions options;
  for (int bins = 1; bins <= 29; ++bins) {
    for (double threshold : {0.2, 0.35, 0.5, 0.65, 0.8}) {
      ViewEvaluator pruning_eval(dataset_, *space_);
      const CandidateResult pruned = EvaluateCandidate(
          pruning_eval, view_, bins, options, threshold, true);
      if (pruned.outcome == CandidateResult::Outcome::kFullyEvaluated) {
        continue;
      }
      ViewEvaluator full_eval(dataset_, *space_);
      const CandidateResult full = EvaluateCandidate(
          full_eval, view_, bins, options, kNoThreshold, false);
      EXPECT_LE(full.scored.utility, threshold + 1e-12)
          << "bins=" << bins << " threshold=" << threshold;
    }
  }
}

TEST_F(CandidateTest, ScoredViewToString) {
  ViewEvaluator eval(dataset_, *space_);
  SearchOptions options;
  const CandidateResult result = EvaluateCandidate(
      eval, view_, 3, options, kNoThreshold, false);
  const std::string text = result.scored.ToString();
  EXPECT_NE(text.find("SUM(m1) BY x"), std::string::npos);
  EXPECT_NE(text.find("[b=3]"), std::string::npos);
}

}  // namespace
}  // namespace muve::core
