#include "core/exploration_session.h"

#include <algorithm>
#include <limits>

#include "core/partitioner.h"
#include "core/top_k_tracker.h"
#include "core/view_evaluator.h"

namespace muve::core {

common::Result<ExplorationSession> ExplorationSession::Create(
    data::Dataset dataset) {
  MUVE_ASSIGN_OR_RETURN(ViewSpace space, ViewSpace::Create(dataset));
  return ExplorationSession(std::move(dataset), std::move(space));
}

common::Status ExplorationSession::Materialize(DistanceKind distance) {
  if (scores_.contains(distance)) return common::Status::OK();

  ViewEvaluator::Options options;
  options.distance = distance;
  // Materialization probes every (view, b) pair — the base-histogram
  // cache's best case (one scan per (A, M) side, O(b) per candidate).
  options.use_base_histogram_cache = true;
  ViewEvaluator evaluator(dataset_, space_, options);
  std::vector<CandidateScores> all;

  // Group same-dimension views so the numeric ones ride shared scans.
  const std::vector<View>& views = space_.views();
  std::map<std::string, std::vector<size_t>> groups;
  for (size_t i = 0; i < views.size(); ++i) {
    groups[views[i].dimension].push_back(i);
  }

  for (const auto& [dim_name, group] : groups) {
    const DimensionInfo& dim = space_.dimension_info(dim_name);
    if (dim.categorical) {
      for (size_t idx : group) {
        CandidateScores cs;
        cs.view_index = idx;
        cs.bins = 1;
        cs.deviation = evaluator.EvaluateDeviation(views[idx], 1);
        cs.accuracy = evaluator.EvaluateAccuracy(views[idx], 1);
        cs.usability = evaluator.CandidateUsability(views[idx], 1);
        all.push_back(cs);
      }
      continue;
    }
    std::vector<View> batch;
    batch.reserve(group.size());
    for (size_t idx : group) batch.push_back(views[idx]);
    for (int bins = 1; bins <= dim.max_bins; ++bins) {
      const ViewEvaluator::BatchScores batch_scores =
          evaluator.EvaluateSharedBatch(batch, bins);
      for (size_t g = 0; g < group.size(); ++g) {
        CandidateScores cs;
        cs.view_index = group[g];
        cs.bins = bins;
        cs.deviation = batch_scores.deviations[g];
        cs.accuracy = batch_scores.accuracies[g];
        cs.usability = Usability(bins);
        all.push_back(cs);
      }
    }
  }

  stats_.Merge(evaluator.stats());
  scores_.emplace(distance, std::move(all));
  return common::Status::OK();
}

common::Result<std::vector<ScoredView>> ExplorationSession::AllCandidates(
    DistanceKind distance) {
  MUVE_RETURN_IF_ERROR(Materialize(distance));
  const std::vector<CandidateScores>& table = scores_.at(distance);
  std::vector<ScoredView> out;
  out.reserve(table.size());
  for (const CandidateScores& cs : table) {
    ScoredView scored;
    scored.view = space_.views()[cs.view_index];
    scored.bins = cs.bins;
    scored.deviation = cs.deviation;
    scored.accuracy = cs.accuracy;
    scored.usability = cs.usability;
    out.push_back(std::move(scored));
  }
  return out;
}

common::Result<std::vector<ScoredView>> ExplorationSession::Recommend(
    const Weights& weights, int k, DistanceKind distance) {
  MUVE_RETURN_IF_ERROR(weights.Validate());
  if (k < 1) {
    return common::Status::InvalidArgument("k must be >= 1");
  }
  MUVE_RETURN_IF_ERROR(Materialize(distance));

  const std::vector<CandidateScores>& table = scores_.at(distance);
  TopKTracker tracker(k, space_.views().size());
  for (const CandidateScores& cs : table) {
    ScoredView scored;
    scored.view = space_.views()[cs.view_index];
    scored.bins = cs.bins;
    scored.deviation = cs.deviation;
    scored.accuracy = cs.accuracy;
    scored.usability = cs.usability;
    scored.utility =
        Utility(weights, cs.deviation, cs.accuracy, cs.usability);
    tracker.Update(cs.view_index, scored);
  }
  return tracker.TopK();
}

}  // namespace muve::core
