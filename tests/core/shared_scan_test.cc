// Shared-scan execution (SeeDB's shared-computation optimization) must be
// a pure cost optimization: identical scores and recommendations, far
// fewer query executions.

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "core/view_evaluator.h"
#include "test_util.h"

namespace muve::core {
namespace {

TEST(SharedBatchTest, ScoresMatchPerViewProbes) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());

  // All four (M, F) views over dimension x.
  std::vector<View> batch;
  for (const View& v : space->views()) {
    if (v.dimension == "x") batch.push_back(v);
  }
  ASSERT_EQ(batch.size(), 4u);

  for (const int bins : {1, 2, 5, 13, 29}) {
    ViewEvaluator shared_eval(ds, *space);
    const auto scores = shared_eval.EvaluateSharedBatch(batch, bins);
    ViewEvaluator plain_eval(ds, *space);
    for (size_t i = 0; i < batch.size(); ++i) {
      EXPECT_DOUBLE_EQ(scores.deviations[i],
                       plain_eval.EvaluateDeviation(batch[i], bins))
          << batch[i].Label() << " bins=" << bins;
      EXPECT_DOUBLE_EQ(scores.accuracies[i],
                       plain_eval.EvaluateAccuracy(batch[i], bins))
          << batch[i].Label() << " bins=" << bins;
    }
    // One target + one comparison scan for the whole batch.
    EXPECT_EQ(shared_eval.stats().target_queries, 1);
    EXPECT_EQ(shared_eval.stats().comparison_queries, 1);
    EXPECT_EQ(shared_eval.stats().deviation_evals,
              static_cast<int64_t>(batch.size()));
  }
}

TEST(SharedBatchTest, RawSeriesSharedAcrossBatchesAndBins) {
  const data::Dataset ds = testutil::MakeToyDataset();
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());
  std::vector<View> batch;
  for (const View& v : space->views()) {
    if (v.dimension == "x") batch.push_back(v);
  }
  ViewEvaluator eval(ds, *space);
  eval.EvaluateSharedBatch(batch, 3);
  const int64_t rows_after_first = eval.stats().rows_scanned;
  eval.EvaluateSharedBatch(batch, 7);
  // Second batch: target + comparison scans only; raw series cached.
  EXPECT_EQ(eval.stats().rows_scanned - rows_after_first,
            static_cast<int64_t>(ds.target_rows.size() +
                                 ds.all_rows.size()));
}

TEST(SharedScanRecommenderTest, IdenticalToLinearLinear) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions linear;
  linear.horizontal = HorizontalStrategy::kLinear;
  linear.vertical = VerticalStrategy::kLinear;
  SearchOptions shared = linear;
  shared.shared_scans = true;

  auto r_linear = recommender->Recommend(linear);
  auto r_shared = recommender->Recommend(shared);
  ASSERT_TRUE(r_linear.ok());
  ASSERT_TRUE(r_shared.ok()) << r_shared.status().ToString();
  EXPECT_EQ(r_shared->scheme, "Linear-Linear(Sh)");
  ASSERT_EQ(r_linear->views.size(), r_shared->views.size());
  for (size_t i = 0; i < r_linear->views.size(); ++i) {
    EXPECT_NEAR(r_linear->views[i].utility, r_shared->views[i].utility,
                1e-12);
    EXPECT_EQ(r_linear->views[i].bins, r_shared->views[i].bins);
  }
  // Query sharing: |M| x |F| = 4 views per dimension collapse into one
  // query per (dimension, bins) pair.
  EXPECT_LT(r_shared->stats.target_queries,
            r_linear->stats.target_queries / 3);
  EXPECT_LT(r_shared->stats.comparison_queries,
            r_linear->stats.comparison_queries / 3);
}

TEST(SharedScanRecommenderTest, WorksWithPartitioning) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions shared;
  shared.horizontal = HorizontalStrategy::kLinear;
  shared.vertical = VerticalStrategy::kLinear;
  shared.shared_scans = true;
  shared.partition.kind = PartitionKind::kGeometric;
  SearchOptions plain = shared;
  plain.shared_scans = false;

  auto r_shared = recommender->Recommend(shared);
  auto r_plain = recommender->Recommend(plain);
  ASSERT_TRUE(r_shared.ok());
  ASSERT_TRUE(r_plain.ok());
  ASSERT_EQ(r_shared->views.size(), r_plain->views.size());
  for (size_t i = 0; i < r_plain->views.size(); ++i) {
    EXPECT_NEAR(r_plain->views[i].utility, r_shared->views[i].utility,
                1e-12);
  }
}

TEST(SharedScanRecommenderTest, RejectedForPruningSchemes) {
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());
  SearchOptions bad;
  bad.horizontal = HorizontalStrategy::kMuve;
  bad.vertical = VerticalStrategy::kMuve;
  bad.shared_scans = true;
  EXPECT_FALSE(recommender->Recommend(bad).ok());

  SearchOptions bad_approx;
  bad_approx.horizontal = HorizontalStrategy::kLinear;
  bad_approx.vertical = VerticalStrategy::kLinear;
  bad_approx.shared_scans = true;
  bad_approx.approximation = VerticalApproximation::kRefinement;
  EXPECT_FALSE(recommender->Recommend(bad_approx).ok());
}

}  // namespace
}  // namespace muve::core
