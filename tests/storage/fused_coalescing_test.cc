// Single-flight coalescing of fused base-histogram builds
// (BaseHistogramCache::FusedBuild with coalesce=true; DESIGN.md §13).
//
// The stampede proof: N threads hit one cold cache with IDENTICAL build
// requests while a `fused_scan.morsel` failpoint delay holds the leader
// in flight — exactly ONE pass scans rows, every other caller waits and
// adopts the leader's entries.  The cancellation proof: a waiter whose
// own deadline trips while parked gives up with ITS expiry status and
// the shared flight is not poisoned — the leader still completes and
// later callers are served from cache.
//
// The delay-dependent tests skip unless the build compiles failpoints in
// (-DMUVE_FAILPOINTS=ON, `ctest -L faults`); the plain concurrency test
// runs everywhere and is the TSan target.

#include "storage/base_histogram_cache.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/failpoint.h"
#include "common/status.h"
#include "storage/table.h"

namespace muve::storage {
namespace {

using common::Status;

class FusedCoalescingTest : public ::testing::Test {
 protected:
  FusedCoalescingTest()
      : table_(Schema({{"d", ValueType::kInt64},
                       {"m1", ValueType::kDouble},
                       {"m2", ValueType::kDouble}})) {
    for (int64_t i = 0; i < 512; ++i) {
      EXPECT_TRUE(table_
                      .AppendRow({Value(i % 13), Value(0.5 * (i % 7)),
                                  Value(1.0 * (i % 5))})
                      .ok());
    }
    for (uint32_t i = 0; i < 512; ++i) rows_.push_back(i);
  }

  ~FusedCoalescingTest() override { common::ClearFailpoints(); }

  BaseHistogramCache::FusedHistogramBuildRequest Request() {
    BaseHistogramCache::FusedHistogramBuildRequest request;
    request.rows = &rows_;
    request.pairs = {{"t|d|m1", "d", "m1"}, {"t|d|m2", "d", "m2"}};
    request.coalesce = true;
    return request;
  }

  Table table_;
  RowSet rows_;
};

// Runs everywhere (and under -DMUVE_SANITIZE=thread): concurrent
// identical coalesced builds are correct — whoever scans, everyone ends
// with both histograms resident and consistent counters.
TEST_F(FusedCoalescingTest, ConcurrentIdenticalBuildsAreCorrect) {
  BaseHistogramCache cache;
  constexpr int kThreads = 8;
  std::atomic<int> ready{0};
  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<BaseHistogramCache::FusedBuildOutcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      const auto request = Request();
      statuses[t] = cache.FusedBuild(table_, request, &outcomes[t]);
    });
  }
  for (auto& t : threads) t.join();

  int64_t total_passes = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(statuses[t].ok()) << statuses[t].ToString();
    total_passes += outcomes[t].passes;
    // Every caller accounts for both pairs, one way or another.
    EXPECT_EQ(outcomes[t].histograms_built + outcomes[t].already_cached, 2)
        << "thread " << t;
  }
  EXPECT_GE(total_passes, 1);
  EXPECT_TRUE(cache.Contains("t|d|m1"));
  EXPECT_TRUE(cache.Contains("t|d|m2"));
  const auto stats = cache.TotalStats();
  EXPECT_EQ(stats.hits + stats.misses, stats.lookups);
}

// The stampede pin: with the leader held in flight by a failpoint delay,
// the N-thread stampede performs EXACTLY one fused pass.
TEST_F(FusedCoalescingTest, StampedePerformsExactlyOneFusedPass) {
  if (!common::FailpointsCompiledIn()) {
    GTEST_SKIP() << "build has no failpoints (-DMUVE_FAILPOINTS=ON)";
  }
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "delay(100ms)").ok());
  BaseHistogramCache cache;
  constexpr int kThreads = 6;
  std::atomic<int> ready{0};
  std::vector<Status> statuses(kThreads, Status::OK());
  std::vector<BaseHistogramCache::FusedBuildOutcome> outcomes(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) std::this_thread::yield();
      const auto request = Request();
      statuses[t] = cache.FusedBuild(table_, request, &outcomes[t]);
    });
  }
  for (auto& t : threads) t.join();

  int64_t total_passes = 0;
  int64_t total_coalesced = 0;
  int64_t total_rows = 0;
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_TRUE(statuses[t].ok()) << statuses[t].ToString();
    total_passes += outcomes[t].passes;
    total_coalesced += outcomes[t].coalesced;
    total_rows += outcomes[t].rows_scanned;
  }
  // The heart of the feature: one scan, everyone else waited.
  EXPECT_EQ(total_passes, 1);
  EXPECT_EQ(total_rows, static_cast<int64_t>(rows_.size()));
  EXPECT_GE(total_coalesced, kThreads - 1);
  EXPECT_TRUE(cache.Contains("t|d|m1"));
  EXPECT_TRUE(cache.Contains("t|d|m2"));
}

// A deadline-tripped waiter returns ITS OWN expiry and must not poison
// the shared flight: the leader completes, the cache fills, and later
// coalesced callers are served without another scan.
TEST_F(FusedCoalescingTest, ExpiredWaiterDoesNotPoisonTheFlight) {
  if (!common::FailpointsCompiledIn()) {
    GTEST_SKIP() << "build has no failpoints (-DMUVE_FAILPOINTS=ON)";
  }
  ASSERT_TRUE(common::SetFailpoint("fused_scan.morsel", "delay(200ms)").ok());
  BaseHistogramCache cache;

  Status leader_status = Status::OK();
  BaseHistogramCache::FusedBuildOutcome leader_outcome;
  std::atomic<bool> leader_started{false};
  std::thread leader([&] {
    leader_started.store(true);
    const auto request = Request();
    leader_status = cache.FusedBuild(table_, request, &leader_outcome);
  });
  while (!leader_started.load()) std::this_thread::yield();
  // Give the leader time to register its flight and enter the delayed
  // scan before the doomed waiter arrives.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  common::ExecContext exec;
  exec.SetDeadlineAfterMillis(20.0);
  auto request = Request();
  request.exec = &exec;
  BaseHistogramCache::FusedBuildOutcome waiter_outcome;
  const Status waiter_status =
      cache.FusedBuild(table_, request, &waiter_outcome);
  // The waiter gave up with its own deadline, having scanned nothing.
  EXPECT_EQ(waiter_status.code(), common::StatusCode::kDeadlineExceeded)
      << waiter_status.ToString();
  EXPECT_EQ(waiter_outcome.passes, 0);

  leader.join();
  EXPECT_TRUE(leader_status.ok()) << leader_status.ToString();
  EXPECT_EQ(leader_outcome.passes, 1);
  EXPECT_TRUE(cache.Contains("t|d|m1"));
  EXPECT_TRUE(cache.Contains("t|d|m2"));

  // The flight is clean: a fresh coalesced caller is served from cache.
  common::ClearFailpoints();
  BaseHistogramCache::FusedBuildOutcome after_outcome;
  const auto after = Request();
  EXPECT_TRUE(cache.FusedBuild(table_, after, &after_outcome).ok());
  EXPECT_EQ(after_outcome.passes, 0);
  EXPECT_EQ(after_outcome.already_cached, 2);
}

}  // namespace
}  // namespace muve::storage
