#include "core/horizontal_search.h"

#include <limits>
#include <unordered_map>

#include "common/logging.h"

namespace muve::core {

namespace {

constexpr double kNoThreshold = -std::numeric_limits<double>::infinity();

void TakeIfBetter(std::optional<ScoredView>* best, const ScoredView& cand) {
  if (!best->has_value() || cand.utility > (*best)->utility) {
    *best = cand;
  }
}

}  // namespace

HorizontalResult HorizontalLinear(ViewEvaluator& evaluator, const View& view,
                                  const std::vector<int>& domain,
                                  const SearchOptions& options) {
  ++evaluator.stats().views_searched;
  HorizontalResult result;
  for (size_t idx = 0; idx < domain.size(); ++idx) {
    if (common::Expired(evaluator.exec())) {
      result.truncated = true;
      result.bins_skipped = static_cast<int64_t>(domain.size() - idx);
      break;
    }
    const CandidateResult cand =
        EvaluateCandidate(evaluator, view, domain[idx], options, kNoThreshold,
                          /*allow_pruning=*/false);
    MUVE_DCHECK(cand.outcome == CandidateResult::Outcome::kFullyEvaluated);
    TakeIfBetter(&result.best, cand.scored);
  }
  return result;
}

HorizontalResult HorizontalHillClimbing(ViewEvaluator& evaluator,
                                        const View& view, int max_bins,
                                        const SearchOptions& options,
                                        common::Rng& rng) {
  ++evaluator.stats().views_searched;
  MUVE_CHECK(max_bins >= 1);
  std::unordered_map<int, ScoredView> memo;

  // Returns by VALUE on purpose.  An earlier version returned
  // `const ScoredView&` into `memo` and one climbing step held that
  // reference across the *second* evaluate() call (b - s, then b + s),
  // which inserts and can rehash.  That was only safe because
  // unordered_map happens to guarantee node stability under rehash; the
  // copy removes the silent dependence on that container property, so
  // `memo` can become a flat/open-addressing map without introducing a
  // dangling read (ScoredView is a few doubles — the copy is free next
  // to a probe).  Pinned by
  // HorizontalSearchTest.MemoRehashDoesNotInvalidateCandidates.
  auto evaluate = [&](int bins) -> ScoredView {
    const auto it = memo.find(bins);
    if (it != memo.end()) return it->second;
    const CandidateResult cand = EvaluateCandidate(
        evaluator, view, bins, options, kNoThreshold, /*allow_pruning=*/false);
    MUVE_DCHECK(cand.outcome == CandidateResult::Outcome::kFullyEvaluated);
    return memo.emplace(bins, cand.scored).first->second;
  };

  int current = static_cast<int>(rng.UniformInt(1, max_bins));
  ScoredView best = evaluate(current);
  int step = max_bins;
  bool truncated = false;
  while (step >= 1) {
    // Boundary poll: stop climbing once execution control expires.  The
    // best-so-far is a valid HC answer (the climb just stops early, as
    // it would on convergence).
    if (common::Expired(evaluator.exec())) {
      truncated = true;
      break;
    }
    // Consider b - s and b + s; move to the better one if it improves.
    std::optional<ScoredView> move;
    for (const int cand_bins : {current - step, current + step}) {
      if (cand_bins < 1 || cand_bins > max_bins) continue;
      const ScoredView scored = evaluate(cand_bins);
      if (scored.utility > best.utility &&
          (!move.has_value() || scored.utility > move->utility)) {
        move = scored;
      }
    }
    if (move.has_value()) {
      best = *move;
      current = best.bins;
    } else {
      step /= 2;
    }
  }

  HorizontalResult result;
  result.best = best;
  result.truncated = truncated;
  return result;
}

HorizontalResult HorizontalMuve(ViewEvaluator& evaluator, const View& view,
                                const std::vector<int>& domain,
                                const SearchOptions& options,
                                double initial_threshold) {
  ++evaluator.stats().views_searched;
  HorizontalResult result;
  double u_seen = initial_threshold;
  for (size_t idx = 0; idx < domain.size(); ++idx) {
    const int bins = domain[idx];
    // Execution-control poll FIRST: an expired run must not keep probing
    // even when early termination would not have fired yet.  (An
    // unexpired run falls straight through, so the probe sequence — and
    // hence the early-termination point — is untouched.)
    if (common::Expired(evaluator.exec())) {
      result.truncated = true;
      result.bins_skipped = static_cast<int64_t>(domain.size() - idx);
      break;
    }
    // Early termination: every later domain entry has strictly lower S,
    // so once the bound falls below U_seen nothing ahead can win.
    const double u_max = UtilityUpperBound(options.weights, Usability(bins));
    if (options.enable_early_termination && u_seen >= u_max) {
      result.early_terminated = true;
      ++evaluator.stats().early_terminations;
      break;
    }
    const CandidateResult cand = EvaluateCandidate(
        evaluator, view, bins, options, u_seen, /*allow_pruning=*/true);
    if (cand.outcome == CandidateResult::Outcome::kFullyEvaluated) {
      if (cand.scored.utility > u_seen) u_seen = cand.scored.utility;
      TakeIfBetter(&result.best, cand.scored);
    }
  }
  return result;
}

HorizontalResult RunHorizontalSearch(ViewEvaluator& evaluator,
                                     const View& view,
                                     const std::vector<int>& domain,
                                     int max_bins,
                                     const SearchOptions& options,
                                     common::Rng& rng) {
  switch (options.horizontal) {
    case HorizontalStrategy::kLinear:
      return HorizontalLinear(evaluator, view, domain, options);
    case HorizontalStrategy::kHillClimbing:
      return HorizontalHillClimbing(evaluator, view, max_bins, options, rng);
    case HorizontalStrategy::kMuve:
      return HorizontalMuve(evaluator, view, domain, options, kNoThreshold);
  }
  MUVE_CHECK(false) << "unknown horizontal strategy";
  return {};
}

}  // namespace muve::core
