#include "core/search_options.h"

namespace muve::core {

const char* HorizontalStrategyName(HorizontalStrategy s) {
  switch (s) {
    case HorizontalStrategy::kLinear:
      return "Linear";
    case HorizontalStrategy::kHillClimbing:
      return "HC";
    case HorizontalStrategy::kMuve:
      return "MuVE";
  }
  return "?";
}

const char* VerticalStrategyName(VerticalStrategy s) {
  switch (s) {
    case VerticalStrategy::kLinear:
      return "Linear";
    case VerticalStrategy::kMuve:
      return "MuVE";
  }
  return "?";
}

common::Status SearchOptions::Validate() const {
  MUVE_RETURN_IF_ERROR(weights.Validate());
  if (k < 1) {
    return common::Status::InvalidArgument("k must be >= 1");
  }
  if (partition.step < 1) {
    return common::Status::InvalidArgument("partition step must be >= 1");
  }
  if (refinement_default_bins < 1) {
    return common::Status::InvalidArgument(
        "refinement default bins must be >= 1");
  }
  if (num_threads < 1) {
    return common::Status::InvalidArgument("num_threads must be >= 1");
  }
  if (!(sample_fraction > 0.0) || sample_fraction > 1.0) {
    return common::Status::InvalidArgument(
        "sample_fraction must lie in (0, 1]");
  }
  if (max_rows_scanned < 0) {
    return common::Status::InvalidArgument(
        "max_rows_scanned must be >= 0 (0 = unbounded)");
  }
  if (shared_scans &&
      (horizontal != HorizontalStrategy::kLinear ||
       vertical != VerticalStrategy::kLinear ||
       approximation != VerticalApproximation::kNone)) {
    return common::Status::InvalidArgument(
        "shared scans require plain Linear-Linear (sharing computes every "
        "view of a batch; pruning-based schemes would discard most of it)");
  }
  if (vertical == VerticalStrategy::kMuve &&
      horizontal != HorizontalStrategy::kMuve) {
    return common::Status::InvalidArgument(
        "vertical MuVE requires horizontal MuVE (the paper's MuVE-MuVE "
        "integration); use vertical Linear for other horizontal searches");
  }
  return common::Status::OK();
}

std::string SearchOptions::SchemeName() const {
  std::string name = HorizontalStrategyName(horizontal);
  if (!partition.IsDefault()) {
    name += partition.kind == PartitionKind::kGeometric ? "(G)" : "(A)";
  }
  name += "-";
  name += VerticalStrategyName(vertical);
  if (approximation == VerticalApproximation::kRefinement) name += "(R)";
  if (approximation == VerticalApproximation::kSkipping) name += "(S)";
  if (shared_scans) name += "(Sh)";
  if (sample_fraction < 1.0) name += "(Smp)";
  return name;
}

}  // namespace muve::core
