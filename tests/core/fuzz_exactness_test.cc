// Exactness fuzzing: on randomly generated datasets — random shapes,
// distributions, null patterns, and workloads — the three exact schemes
// (Linear-Linear, MuVE-Linear, MuVE-MuVE) must recommend top-k sets with
// identical utilities, and the exploration session must agree with them.
// This is the repository's strongest guard on the pruning logic: any
// unsound bound shows up here as a utility mismatch.
//
// Seeding: every case seed derives from MUVE_FUZZ_SEED (fixed default)
// via tests/fuzz_util.h, and every failure prints the seeds needed to
// reproduce it.

#include <gtest/gtest.h>

#include <memory>

#include "common/logging.h"
#include "common/rng.h"
#include "core/exploration_session.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "fuzz_util.h"
#include "storage/predicate.h"

namespace muve::core {
namespace {

data::Dataset RandomDataset(uint64_t seed) {
  common::Rng rng(seed);
  const int num_numeric = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const bool with_categorical = rng.Bernoulli(0.4);
  const int num_measures = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const size_t rows = 30 + static_cast<size_t>(rng.UniformInt(0, 90));

  storage::Schema schema;
  data::Dataset ds;
  for (int d = 0; d < num_numeric; ++d) {
    const std::string name = "dim" + std::to_string(d);
    MUVE_CHECK(schema
                   .AddField({name, storage::ValueType::kInt64,
                              storage::FieldRole::kDimension})
                   .ok());
    ds.dimensions.push_back(name);
  }
  if (with_categorical) {
    MUVE_CHECK(schema
                   .AddField({"cat", storage::ValueType::kString,
                              storage::FieldRole::kCategoricalDimension})
                   .ok());
    ds.categorical_dimensions.push_back("cat");
  }
  MUVE_CHECK(
      schema.AddField({"sel", storage::ValueType::kInt64}).ok());
  for (int m = 0; m < num_measures; ++m) {
    const std::string name = "m" + std::to_string(m);
    MUVE_CHECK(schema
                   .AddField({name, storage::ValueType::kDouble,
                              storage::FieldRole::kMeasure})
                   .ok());
    ds.measures.push_back(name);
  }

  auto table = std::make_shared<storage::Table>(schema);
  const char* cats[] = {"p", "q", "r", "s"};
  // Per-dimension range in [4, 40].
  std::vector<int64_t> ranges(static_cast<size_t>(num_numeric));
  for (auto& r : ranges) r = 4 + rng.UniformInt(0, 36);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<storage::Value> row;
    for (int d = 0; d < num_numeric; ++d) {
      row.emplace_back(rng.UniformInt(0, ranges[static_cast<size_t>(d)]));
    }
    if (with_categorical) {
      row.emplace_back(cats[rng.UniformInt(0, 3)]);
    }
    row.emplace_back(rng.UniformInt(0, 2));  // sel in {0,1,2}
    for (int m = 0; m < num_measures; ++m) {
      if (rng.Bernoulli(0.05)) {
        row.emplace_back();  // occasional NULL measure
      } else {
        // Mixture: mostly positive, sometimes negative or zero.
        const double v = rng.Bernoulli(0.1)   ? 0.0
                         : rng.Bernoulli(0.1) ? rng.Uniform(-5, 0)
                                              : rng.Uniform(0, 20);
        row.emplace_back(v);
      }
    }
    MUVE_CHECK(table->AppendRow(row).ok());
  }

  ds.name = "fuzz" + std::to_string(seed);
  ds.table = table;
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg,
                  storage::AggregateFunction::kCount};
  ds.query_predicate_sql = "sel = 1";
  auto pred = storage::MakeComparison("sel", storage::CompareOp::kEq,
                                      storage::Value(int64_t{1}));
  auto selected = storage::Filter(*table, pred.get());
  MUVE_CHECK(selected.ok());
  ds.target_rows = std::move(selected).value();
  if (ds.target_rows.empty()) ds.target_rows = {0};
  ds.all_rows = storage::AllRows(table->num_rows());
  return ds;
}

Weights RandomWeights(common::Rng& rng) {
  double d = rng.Uniform(0, 1);
  double a = rng.Uniform(0, 1);
  double s = rng.Uniform(0, 1);
  const double total = d + a + s;
  if (total <= 0) return Weights::Equal();
  return Weights{d / total, a / total, s / total};
}

class FuzzExactnessTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(FuzzExactnessTest, ExactSchemesAndSessionAgree) {
  const uint64_t seed = testutil::FuzzSeed(GetParam());
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed * 977);
  const data::Dataset ds = RandomDataset(seed);
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();
  auto session = ExplorationSession::Create(ds);
  ASSERT_TRUE(session.ok());

  for (int trial = 0; trial < 3; ++trial) {
    SearchOptions base;
    base.weights = RandomWeights(rng);
    base.k = 1 + static_cast<int>(rng.UniformInt(0, 6));
    base.distance = static_cast<DistanceKind>(rng.UniformInt(0, 5));

    SearchOptions linear = base;
    linear.horizontal = HorizontalStrategy::kLinear;
    linear.vertical = VerticalStrategy::kLinear;
    SearchOptions muve_linear = base;
    muve_linear.horizontal = HorizontalStrategy::kMuve;
    muve_linear.vertical = VerticalStrategy::kLinear;
    SearchOptions muve_muve = base;
    muve_muve.horizontal = HorizontalStrategy::kMuve;
    muve_muve.vertical = VerticalStrategy::kMuve;

    auto r_lin = recommender->Recommend(linear);
    auto r_ml = recommender->Recommend(muve_linear);
    auto r_mm = recommender->Recommend(muve_muve);
    auto r_session =
        session->Recommend(base.weights, base.k, base.distance);
    ASSERT_TRUE(r_lin.ok());
    ASSERT_TRUE(r_ml.ok());
    ASSERT_TRUE(r_mm.ok());
    ASSERT_TRUE(r_session.ok());

    ASSERT_EQ(r_lin->views.size(), r_ml->views.size());
    ASSERT_EQ(r_lin->views.size(), r_mm->views.size());
    ASSERT_EQ(r_lin->views.size(), r_session->size());
    for (size_t i = 0; i < r_lin->views.size(); ++i) {
      const double expected = r_lin->views[i].utility;
      EXPECT_NEAR(r_ml->views[i].utility, expected, 1e-9)
          << "seed " << seed << " trial " << trial << " rank " << i
          << " weights " << base.weights.ToString();
      EXPECT_NEAR(r_mm->views[i].utility, expected, 1e-9)
          << "seed " << seed << " trial " << trial << " rank " << i
          << " weights " << base.weights.ToString();
      EXPECT_NEAR((*r_session)[i].utility, expected, 1e-9)
          << "seed " << seed << " trial " << trial << " rank " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FuzzExactnessTest,
                         ::testing::Range<uint64_t>(1, 21));

// Sampling composes with pruning: with a fixed (sample_fraction,
// sample_seed), every exact scheme evaluates the same deterministic row
// sample, so the schemes must still agree with one another — the pruning
// bounds hold on the sampled estimates exactly as they do on full scans.
// Datasets with categorical dimensions are included (40% of seeds), which
// exercises the sampled categorical-deviation merge path.
class SampledFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SampledFuzzTest, ExactSchemesAgreeUnderSampling) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0xA5A5A5A5ULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed * 1723);
  const data::Dataset ds = RandomDataset(seed);
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();

  for (int trial = 0; trial < 2; ++trial) {
    SearchOptions base;
    base.weights = RandomWeights(rng);
    base.k = 1 + static_cast<int>(rng.UniformInt(0, 4));
    base.sample_fraction = 0.3 + rng.Uniform(0, 0.6);  // (0.3, 0.9)
    base.sample_seed = seed * 31 + static_cast<uint64_t>(trial);

    SearchOptions linear = base;
    linear.horizontal = HorizontalStrategy::kLinear;
    linear.vertical = VerticalStrategy::kLinear;
    SearchOptions muve_linear = base;
    muve_linear.horizontal = HorizontalStrategy::kMuve;
    muve_linear.vertical = VerticalStrategy::kLinear;
    SearchOptions muve_muve = base;  // defaults are MuVE-MuVE

    auto r_lin = recommender->Recommend(linear);
    auto r_ml = recommender->Recommend(muve_linear);
    auto r_mm = recommender->Recommend(muve_muve);
    ASSERT_TRUE(r_lin.ok()) << r_lin.status().ToString();
    ASSERT_TRUE(r_ml.ok());
    ASSERT_TRUE(r_mm.ok());

    ASSERT_EQ(r_lin->views.size(), r_ml->views.size());
    ASSERT_EQ(r_lin->views.size(), r_mm->views.size());
    for (size_t i = 0; i < r_lin->views.size(); ++i) {
      const double expected = r_lin->views[i].utility;
      EXPECT_NEAR(r_ml->views[i].utility, expected, 1e-9)
          << "seed " << seed << " trial " << trial << " rank " << i
          << " fraction " << base.sample_fraction;
      EXPECT_NEAR(r_mm->views[i].utility, expected, 1e-9)
          << "seed " << seed << " trial " << trial << " rank " << i
          << " fraction " << base.sample_fraction;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SampledFuzzTest,
                         ::testing::Range<uint64_t>(1, 13));

// Parallel determinism fuzz: for every vertical strategy and
// approximation, a 3-thread run recommends the same utilities as the
// serial run on random datasets.  Exact vertical-Linear schemes must
// match view-for-view; pruning schemes (vertical MuVE, refinement,
// skipping) must match utility-for-utility (their lagging threshold
// snapshots can change probe counts and tie resolution, never the
// recommended utilities).
class ParallelFuzzTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ParallelFuzzTest, EverySchemeIsThreadCountInvariant) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0x7171717171ULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed * 409);
  const data::Dataset ds = RandomDataset(seed + 100);  // fresh shapes
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();

  SearchOptions base;
  base.weights = RandomWeights(rng);
  base.k = 1 + static_cast<int>(rng.UniformInt(0, 4));

  std::vector<SearchOptions> schemes;
  for (const HorizontalStrategy h :
       {HorizontalStrategy::kLinear, HorizontalStrategy::kHillClimbing,
        HorizontalStrategy::kMuve}) {
    SearchOptions o = base;
    o.horizontal = h;
    o.vertical = VerticalStrategy::kLinear;
    schemes.push_back(o);
  }
  {
    SearchOptions muve_muve = base;
    muve_muve.horizontal = HorizontalStrategy::kMuve;
    muve_muve.vertical = VerticalStrategy::kMuve;
    schemes.push_back(muve_muve);
    SearchOptions shared = base;
    shared.horizontal = HorizontalStrategy::kLinear;
    shared.vertical = VerticalStrategy::kLinear;
    shared.shared_scans = true;
    schemes.push_back(shared);
    SearchOptions refine = base;
    refine.horizontal = HorizontalStrategy::kLinear;
    refine.vertical = VerticalStrategy::kLinear;
    refine.approximation = VerticalApproximation::kRefinement;
    schemes.push_back(refine);
    SearchOptions skip = refine;
    skip.approximation = VerticalApproximation::kSkipping;
    schemes.push_back(skip);
  }

  for (const SearchOptions& serial : schemes) {
    SearchOptions parallel = serial;
    parallel.num_threads = 3;
    auto r_serial = recommender->Recommend(serial);
    auto r_parallel = recommender->Recommend(parallel);
    ASSERT_TRUE(r_serial.ok())
        << serial.SchemeName() << ": " << r_serial.status().ToString();
    ASSERT_TRUE(r_parallel.ok())
        << serial.SchemeName() << ": " << r_parallel.status().ToString();
    ASSERT_EQ(r_serial->views.size(), r_parallel->views.size())
        << serial.SchemeName();
    const bool pruning_shared_threshold =
        serial.vertical == VerticalStrategy::kMuve ||
        serial.approximation != VerticalApproximation::kNone;
    for (size_t i = 0; i < r_serial->views.size(); ++i) {
      EXPECT_NEAR(r_parallel->views[i].utility, r_serial->views[i].utility,
                  1e-12)
          << serial.SchemeName() << " seed " << seed << " rank " << i;
      if (!pruning_shared_threshold) {
        EXPECT_EQ(r_parallel->views[i].view.Key(),
                  r_serial->views[i].view.Key())
            << serial.SchemeName() << " seed " << seed << " rank " << i;
        EXPECT_EQ(r_parallel->views[i].bins, r_serial->views[i].bins)
            << serial.SchemeName() << " seed " << seed << " rank " << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelFuzzTest,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace muve::core
