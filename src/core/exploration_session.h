// Interactive exploration sessions: re-rank without re-executing.
//
// The deviation and accuracy of a binned view do not depend on the alpha
// weights or on k — only on the data, the view, the bin count, and the
// distance function.  An analyst who tunes weights interactively (the
// user-defined-weights workflow of Section III-B) therefore should not
// pay query-execution costs per adjustment.  ExplorationSession
// materializes the full (view, bins) -> (D, A) score table once per
// distance function (one exhaustive pass, shared scans) and answers any
// subsequent (weights, k) recommendation by pure re-ranking.
//
// Recommendations equal the exhaustive Linear-Linear scheme's for every
// weight setting; the session trades MuVE's per-query pruning for
// across-query reuse.

#ifndef MUVE_CORE_EXPLORATION_SESSION_H_
#define MUVE_CORE_EXPLORATION_SESSION_H_

#include <map>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/candidate.h"
#include "core/distance.h"
#include "core/exec_stats.h"
#include "core/recommender.h"
#include "core/view.h"
#include "data/dataset.h"

namespace muve::core {

class ExplorationSession {
 public:
  static common::Result<ExplorationSession> Create(data::Dataset dataset);

  // Top-k views under `weights` (descending utility, distinct views).
  // The first call per distance materializes all objective scores; later
  // calls re-rank in microseconds.  k >= 1; weights must validate.
  common::Result<std::vector<ScoredView>> Recommend(
      const Weights& weights, int k,
      DistanceKind distance = DistanceKind::kEuclidean);

  // Every materialized candidate's objective scores for `distance`
  // (materializing on first use).  The returned ScoredViews carry
  // deviation/accuracy/usability; `utility` is left 0 because it is
  // weight-dependent.  Used by the Pareto-front analysis.
  common::Result<std::vector<ScoredView>> AllCandidates(
      DistanceKind distance = DistanceKind::kEuclidean);

  // Cumulative execution statistics across all materializations.
  const ExecStats& stats() const { return stats_; }

  // Number of distance functions materialized so far.
  size_t materialized_distances() const { return scores_.size(); }

  const ViewSpace& space() const { return space_; }

 private:
  // Objective scores of one candidate; utility is weight-dependent and
  // computed at ranking time.
  struct CandidateScores {
    size_t view_index = 0;
    int bins = 1;
    double deviation = 0.0;
    double accuracy = 0.0;
    double usability = 0.0;
  };

  ExplorationSession(data::Dataset dataset, ViewSpace space)
      : dataset_(std::move(dataset)), space_(std::move(space)) {}

  common::Status Materialize(DistanceKind distance);

  data::Dataset dataset_;
  ViewSpace space_;
  std::map<DistanceKind, std::vector<CandidateScores>> scores_;
  ExecStats stats_;
};

}  // namespace muve::core

#endif  // MUVE_CORE_EXPLORATION_SESSION_H_
