#include "core/view_evaluator.h"

#include <algorithm>
#include <unordered_set>
#include <utility>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/distribution.h"
#include "core/objectives.h"
#include "storage/group_by.h"
#include "storage/multi_aggregate.h"

namespace muve::core {

namespace {

// splitmix64 finalizer: a stateless hash for per-row Bernoulli draws.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

// Whether `row` survives sampling.  The decision is a pure function of
// (seed, row id) — NOT of which row set the row is being drawn for — so
// the target and comparison samples come from ONE shared Bernoulli draw
// per row.  That preserves the D_Q ⊆ D_B premise under sampling:
// sample(D_Q) = D_Q ∩ sample(D_B) whenever D_Q ⊆ D_B.  (The previous
// implementation drew the two sets from independent RNG streams, so a
// sampled target row could be missing from the sampled comparison set,
// breaking the categorical alignment's subset invariant.)
bool KeepRow(uint64_t seed, uint32_t row, double fraction) {
  const uint64_t h = Mix64(seed ^ ((uint64_t{row} + 1) * 0xD6E8FEB86659FD93ULL));
  // 53 high-quality bits -> uniform double in [0, 1).
  return static_cast<double>(h >> 11) * 0x1.0p-53 < fraction;
}

storage::RowSet SampleSubset(const storage::RowSet& rows, double fraction,
                             uint64_t seed) {
  storage::RowSet out;
  out.reserve(static_cast<size_t>(
      static_cast<double>(rows.size()) * fraction) + 1);
  for (uint32_t row : rows) {
    if (KeepRow(seed, row, fraction)) out.push_back(row);
  }
  return out;
}

}  // namespace

ViewEvaluator::ViewEvaluator(const data::Dataset& dataset,
                             const ViewSpace& space, Options options)
    : dataset_(dataset), space_(space), options_(options) {
  MUVE_CHECK(options_.sample_fraction > 0.0 &&
             options_.sample_fraction <= 1.0)
      << "sample_fraction must lie in (0, 1]";
  if (options_.use_base_histogram_cache) {
    base_cache_ = options_.base_cache != nullptr
                      ? options_.base_cache
                      : std::make_shared<storage::BaseHistogramCache>();
  }
  if (options_.sample_fraction < 1.0) {
    all_rows_ = SampleSubset(dataset.all_rows, options_.sample_fraction,
                             options_.sample_seed);
    target_rows_ = SampleSubset(dataset.target_rows, options_.sample_fraction,
                                options_.sample_seed);
    // Keep at least one target row so probes never see an empty D_Q; the
    // kept row is forced into the comparison sample as well to maintain
    // the subset invariant (row sets are ascending, so insert sorted).
    if (target_rows_.empty() && !dataset.target_rows.empty()) {
      const uint32_t kept = dataset.target_rows.front();
      target_rows_.push_back(kept);
      const auto it =
          std::lower_bound(all_rows_.begin(), all_rows_.end(), kept);
      if (it == all_rows_.end() || *it != kept) all_rows_.insert(it, kept);
    }
    if (all_rows_.empty() && !dataset.all_rows.empty()) {
      all_rows_.push_back(dataset.all_rows.front());
    }
  } else {
    target_rows_ = dataset.target_rows;
    all_rows_ = dataset.all_rows;
  }
}

bool ViewEvaluator::CacheEligible(const View& view) const {
  if (base_cache_ == nullptr) return false;
  if (space_.dimension_info(view.dimension).categorical) return false;
  if (!storage::BaseServableFunction(view.function)) return false;
  // String measures only pair with COUNT on the direct path; the base
  // histogram stores measure moments, so they stay direct.
  auto measure = dataset_.table->ColumnByName(view.measure);
  return measure.ok() &&
         (*measure)->type() != storage::ValueType::kString;
}

std::vector<storage::BaseHistogramCache::FusedPairRequest>
ViewEvaluator::MissingPairs(const std::string* dimension,
                            bool target_side) const {
  std::vector<storage::BaseHistogramCache::FusedPairRequest> pairs;
  if (base_cache_ == nullptr) return pairs;
  const int64_t expected_rows = static_cast<int64_t>(
      (target_side ? target_rows_ : all_rows_).size());
  std::unordered_set<std::string> seen;
  for (const View& view : space_.views()) {
    if (dimension != nullptr && view.dimension != *dimension) continue;
    if (!CacheEligible(view)) continue;
    std::string key = (target_side ? "t|" : "c|") + view.dimension + "|" +
                      view.measure;
    if (!seen.insert(key).second) continue;  // one request per (A, M)
    if (base_cache_->Contains(key, expected_rows)) continue;
    pairs.push_back({std::move(key), view.dimension, view.measure});
  }
  return pairs;
}

void ViewEvaluator::ChargeProbeRows(int64_t rows) {
  stats_.rows_scanned += rows;
  stats_.probe_rows_scanned += rows;
  if (options_.exec != nullptr) options_.exec->ChargeRows(rows);
}

void ViewEvaluator::ChargeBuildRows(int64_t rows) {
  stats_.rows_scanned += rows;
  stats_.build_rows_scanned += rows;
  if (options_.exec != nullptr) options_.exec->ChargeRows(rows);
}

void ViewEvaluator::RunFusedBuild(
    storage::BaseHistogramCache::FusedHistogramBuildRequest request) {
  if (request.pairs.empty()) return;
  request.exec = options_.exec;
  request.coalesce = options_.fused_coalescing;
  storage::BaseHistogramCache::FusedBuildOutcome outcome;
  const common::Status status = base_cache_->FusedBuild(
      *dataset_.table, request, &outcome, &fused_scratch_);
  stats_.fused_coalesced += outcome.coalesced;
  if (!status.ok()) {
    // Graceful degradation, not a programming error: the fused pass was
    // aborted between morsels (expired context or injected fault) and
    // cached nothing.  The caller's GetOrBuild falls back to a direct
    // single-pair build, so the probe still gets its histogram.
    return;
  }
  // One pass = one row-set traversal, whatever the number of pairs it
  // builds; `passes` is 0 when a concurrent builder beat us to all of
  // them, and then nothing is charged.
  stats_.base_builds += outcome.passes;
  stats_.fused_builds += outcome.passes;
  ChargeBuildRows(outcome.rows_scanned);
  stats_.morsels_dispatched += outcome.morsels;
}

void ViewEvaluator::PrewarmBaseHistograms(common::ThreadPool* pool) {
  if (base_cache_ == nullptr) return;
  for (const bool target_side : {true, false}) {
    // A bounded run that is already out of time skips prewarm entirely:
    // demand-path probes (if any still run) build exactly what they need.
    if (common::Expired(options_.exec)) return;
    std::vector<storage::BaseHistogramCache::FusedPairRequest> pairs =
        MissingPairs(/*dimension=*/nullptr, target_side);
    if (pairs.empty()) continue;
    common::Stopwatch timer;
    storage::BaseHistogramCache::FusedHistogramBuildRequest request;
    request.rows = target_side ? &target_rows_ : &all_rows_;
    request.pairs = std::move(pairs);
    request.pool = pool;
    request.morsel_size = options_.fused_morsel_size;
    RunFusedBuild(std::move(request));
    // The pass's wall-clock lands on the side it prepaid (C_t or C_c);
    // no CostModel observation — a whole-space fused pass is not a
    // representative per-probe cost and would skew the priority rule.
    const double ms = timer.ElapsedMillis();
    if (target_side) {
      stats_.target_time_ms += ms;
    } else {
      stats_.comparison_time_ms += ms;
    }
  }
}

std::shared_ptr<const storage::BaseHistogram> ViewEvaluator::BaseFor(
    const View& view, bool target_side) {
  // Key is F-agnostic: one histogram serves every servable aggregate of
  // the (A, M) pair.  '|' cannot occur in column names ('\x1f' separates
  // View::Key fields; '|' keeps these keys grep-able in logs).
  const std::string key = (target_side ? "t|" : "c|") + view.dimension +
                          "|" + view.measure;
  const storage::RowSet& rows = target_side ? target_rows_ : all_rows_;
  const bool missing =
      !base_cache_->Contains(key, static_cast<int64_t>(rows.size()));
  if (missing) {
    // Cache miss: one fused traversal builds every still-missing measure
    // of this (dimension, side) — the remaining misses of the batch turn
    // into hits without touching rows.  Runs inline (no pool): misses
    // fire inside worker lanes, and ParallelFor is not reentrant.
    storage::BaseHistogramCache::FusedHistogramBuildRequest request;
    request.rows = &rows;
    request.morsel_size = options_.fused_morsel_size;
    if (options_.fused_miss_batching) {
      request.pairs = MissingPairs(&view.dimension, target_side);
    } else {
      request.pairs.push_back({key, view.dimension, view.measure});
    }
    RunFusedBuild(std::move(request));
  }
  bool built = false;
  auto result = base_cache_->GetOrBuild(
      key,
      [&]() {
        return storage::BuildBaseHistogram(*dataset_.table, rows,
                                           view.dimension, view.measure,
                                           &fused_scratch_);
      },
      &built, static_cast<int64_t>(rows.size()));
  if (!result.ok()) {
    // Even the direct single-pair build failed (injected fault or real
    // I/O error).  BaseFor's callers return values, not Results, so the
    // Status rides a StatusError up to Recommender::Recommend — possibly
    // across the thread pool, whose ParallelFor rethrows caller-side —
    // where it is unwrapped back into the original error Status.  A
    // scan fault must fail the call gracefully, never abort the process.
    throw common::StatusError(result.status());
  }
  if (built) {
    // Fallback build: the fused pass was aborted or its entry was
    // evicted/refused before we could read it back.  Charged like any
    // single-pair build pass.
    ++stats_.base_builds;
    ChargeBuildRows(static_cast<int64_t>(rows.size()));
  } else if (!missing) {
    // Probes served from an already-built histogram touch zero rows.
    ++stats_.base_cache_hits;
  }
  return std::move(result).value();
}

storage::BinnedResult ViewEvaluator::ExecuteBinnedTarget(const View& view,
                                                         int bins) {
  if (options_.reuse_target_within_candidate &&
      cached_target_.has_value() && cached_target_bins_ == bins &&
      cached_target_key_ == view.Key()) {
    return *cached_target_;
  }
  const DimensionInfo& dim = space_.dimension_info(view.dimension);
  common::Stopwatch timer;
  common::Result<storage::BinnedResult> result = [&] {
    if (CacheEligible(view)) {
      // Build (first touch) + coarsen; the whole probe's wall-clock is
      // charged to C_t below, so the cost model sees the true per-probe
      // cost including amortized builds.
      return common::Result<storage::BinnedResult>(CoarsenBaseHistogram(
          *BaseFor(view, /*target_side=*/true), view.function, bins,
          dim.lo, dim.hi));
    }
    ChargeProbeRows(static_cast<int64_t>(target_rows_.size()));
    return storage::BinnedAggregate(*dataset_.table, target_rows_,
                                    view.dimension, view.measure,
                                    view.function, bins, dim.lo, dim.hi);
  }();
  const double ms = timer.ElapsedMillis();
  MUVE_CHECK(result.ok()) << result.status().ToString();
  stats_.target_time_ms += ms;
  ++stats_.target_queries;
  cost_model_.Observe(CostKind::kTargetQuery, ms);
  if (options_.reuse_target_within_candidate) {
    cached_target_key_ = view.Key();
    cached_target_bins_ = bins;
    cached_target_ = result.value();
  }
  return std::move(result).value();
}

storage::BinnedResult ViewEvaluator::ExecuteBinnedComparison(const View& view,
                                                             int bins) {
  const DimensionInfo& dim = space_.dimension_info(view.dimension);
  common::Stopwatch timer;
  common::Result<storage::BinnedResult> result = [&] {
    if (CacheEligible(view)) {
      return common::Result<storage::BinnedResult>(CoarsenBaseHistogram(
          *BaseFor(view, /*target_side=*/false), view.function, bins,
          dim.lo, dim.hi));
    }
    ChargeProbeRows(static_cast<int64_t>(all_rows_.size()));
    return storage::BinnedAggregate(*dataset_.table, all_rows_,
                                    view.dimension, view.measure,
                                    view.function, bins, dim.lo, dim.hi);
  }();
  const double ms = timer.ElapsedMillis();
  MUVE_CHECK(result.ok()) << result.status().ToString();
  stats_.comparison_time_ms += ms;
  ++stats_.comparison_queries;
  cost_model_.Observe(CostKind::kComparisonQuery, ms);
  return std::move(result).value();
}

const ViewEvaluator::RawSeries& ViewEvaluator::RawTargetSeries(
    const View& view) {
  const std::string key = view.Key();
  const auto it = raw_cache_.find(key);
  if (it != raw_cache_.end()) return it->second;

  common::Stopwatch timer;
  RawSeries series;
  if (CacheEligible(view)) {
    // The raw series IS the base histogram finished per fine bin: same
    // keys, same per-group association, zero rows touched on a hit.
    BaseRawSeries(*BaseFor(view, /*target_side=*/true), view.function,
                  &series.keys, &series.aggregates);
  } else {
    auto grouped = storage::GroupByAggregate(*dataset_.table, target_rows_,
                                             view.dimension, view.measure,
                                             view.function);
    MUVE_CHECK(grouped.ok()) << grouped.status().ToString();
    series.keys.reserve(grouped->num_groups());
    series.aggregates = grouped->aggregates;
    for (const storage::Value& v : grouped->keys) {
      auto d = v.ToDouble();
      MUVE_CHECK(d.ok()) << d.status().ToString();
      series.keys.push_back(*d);
    }
    ChargeProbeRows(static_cast<int64_t>(target_rows_.size()));
  }
  const double ms = timer.ElapsedMillis();
  // The raw series is an input to the accuracy objective; its (one-off)
  // computation is charged to C_a.
  stats_.accuracy_time_ms += ms;
  cost_model_.Observe(CostKind::kAccuracy, ms);
  return raw_cache_.emplace(key, std::move(series)).first->second;
}

double ViewEvaluator::NormalizedSeriesDistance(
    const std::vector<double>& target_aggs,
    const std::vector<double>& comparison_aggs) {
  MUVE_DCHECK(target_aggs.size() == comparison_aggs.size())
      << "distribution length mismatch";
  const size_t n = target_aggs.size();
  if (dist_p_.size() < n) {
    dist_p_.resize(n);
    dist_q_.resize(n);
  }
  NormalizeToDistribution(target_aggs.data(), n, dist_p_.data());
  NormalizeToDistribution(comparison_aggs.data(), n, dist_q_.data());
  return Distance(options_.distance, dist_p_.data(), dist_q_.data(), n);
}

double ViewEvaluator::EvaluateDeviation(const View& view, int bins) {
  if (space_.dimension_info(view.dimension).categorical) {
    return EvaluateCategoricalDeviation(view);
  }
  const storage::BinnedResult target = ExecuteBinnedTarget(view, bins);
  const storage::BinnedResult comparison =
      ExecuteBinnedComparison(view, bins);

  common::Stopwatch timer;
  const double deviation =
      NormalizedSeriesDistance(target.aggregates, comparison.aggregates);
  const double ms = timer.ElapsedMillis();
  stats_.deviation_time_ms += ms;
  ++stats_.deviation_evals;
  cost_model_.Observe(CostKind::kDeviation, ms);
  return deviation;
}

double ViewEvaluator::EvaluateCategoricalDeviation(const View& view) {
  // Comparison group-by over D_B; its group set is a superset of the
  // target's (D_Q's rows are a subset of D_B's), so aligning the target
  // onto the comparison keys loses nothing.
  common::Stopwatch comparison_timer;
  auto comparison = storage::GroupByAggregate(
      *dataset_.table, all_rows_, view.dimension, view.measure,
      view.function);
  MUVE_CHECK(comparison.ok()) << comparison.status().ToString();
  const double comparison_ms = comparison_timer.ElapsedMillis();
  stats_.comparison_time_ms += comparison_ms;
  ++stats_.comparison_queries;
  ChargeProbeRows(static_cast<int64_t>(all_rows_.size()));
  cost_model_.Observe(CostKind::kComparisonQuery, comparison_ms);

  common::Stopwatch target_timer;
  auto target = storage::GroupByAggregate(*dataset_.table,
                                          target_rows_,
                                          view.dimension, view.measure,
                                          view.function);
  MUVE_CHECK(target.ok()) << target.status().ToString();
  const double target_ms = target_timer.ElapsedMillis();
  stats_.target_time_ms += target_ms;
  ++stats_.target_queries;
  ChargeProbeRows(static_cast<int64_t>(target_rows_.size()));
  cost_model_.Observe(CostKind::kTargetQuery, target_ms);

  common::Stopwatch distance_timer;
  // Align the target series onto the comparison key order with a sorted
  // two-pointer merge (both group-bys return keys ascending).  The old
  // loop only advanced `t` on an exact match, so one target key missing
  // from the comparison keys silently shifted every later target
  // aggregate into the wrong group.  With D_Q ⊆ D_B (guaranteed even
  // under sampling by the shared per-row draw in SampleSubset) no target
  // key can be missing — enforced below rather than assumed.
  std::vector<double> aligned(comparison->num_groups(), 0.0);
  size_t t = 0;
  for (size_t c = 0;
       c < comparison->num_groups() && t < target->num_groups(); ++c) {
    const storage::Value& comparison_key = comparison->keys[c];
    const storage::Value& target_key = target->keys[t];
    if (target_key == comparison_key) {
      aligned[c] = target->aggregates[t];
      ++t;
    } else {
      MUVE_CHECK(comparison_key < target_key)
          << "categorical alignment: target group key " << target_key
          << " is absent from the comparison view — D_Q is not a subset "
             "of D_B";
      // comparison_key < target_key: a comparison-only group; its target
      // mass stays 0 and only `c` advances.
    }
  }
  MUVE_CHECK(t == target->num_groups())
      << "categorical alignment dropped " << (target->num_groups() - t)
      << " trailing target group(s) — D_Q is not a subset of D_B";
  const double deviation =
      NormalizedSeriesDistance(aligned, comparison->aggregates);
  const double ms = distance_timer.ElapsedMillis();
  stats_.deviation_time_ms += ms;
  ++stats_.deviation_evals;
  cost_model_.Observe(CostKind::kDeviation, ms);
  return deviation;
}

double ViewEvaluator::EvaluateAccuracy(const View& view, int bins) {
  if (space_.dimension_info(view.dimension).categorical) {
    // No binning approximation: the view shows every group exactly.
    ++stats_.accuracy_evals;
    return 1.0;
  }
  const RawSeries& raw = RawTargetSeries(view);
  const storage::BinnedResult target = ExecuteBinnedTarget(view, bins);

  common::Stopwatch timer;
  const double accuracy =
      AccuracyFromSeries(raw.keys, raw.aggregates, target);
  const double ms = timer.ElapsedMillis();
  stats_.accuracy_time_ms += ms;
  ++stats_.accuracy_evals;
  cost_model_.Observe(CostKind::kAccuracy, ms);
  return accuracy;
}

ViewEvaluator::BatchScores ViewEvaluator::EvaluateSharedBatch(
    const std::vector<View>& views, int bins) {
  MUVE_CHECK(!views.empty());
  const DimensionInfo& dim = space_.dimension_info(views[0].dimension);
  MUVE_CHECK(!dim.categorical)
      << "shared scans apply to numeric dimensions only";

  // Cache-eligible views derive their binned results per view from the
  // shared base histograms (zero rows after first touch); the rest ride
  // the legacy multi-aggregate shared scans.  Counter compatibility: one
  // batch still charges exactly ONE target and ONE comparison query —
  // the batch remains "one shared scan's worth" of querying regardless
  // of which engine serves it.
  std::vector<size_t> ineligible;
  std::vector<storage::AggregateSpec> specs;
  for (size_t i = 0; i < views.size(); ++i) {
    MUVE_DCHECK(views[i].dimension == views[0].dimension)
        << "batch must share one dimension";
    if (!CacheEligible(views[i])) {
      ineligible.push_back(i);
      specs.push_back({views[i].measure, views[i].function});
    }
  }

  std::vector<storage::BinnedResult> targets(views.size());
  std::vector<storage::BinnedResult> comparisons(views.size());

  common::Stopwatch target_timer;
  for (size_t i = 0; i < views.size(); ++i) {
    if (CacheEligible(views[i])) {
      targets[i] = CoarsenBaseHistogram(
          *BaseFor(views[i], /*target_side=*/true), views[i].function,
          bins, dim.lo, dim.hi);
    }
  }
  if (!ineligible.empty()) {
    auto multi = storage::MultiBinnedAggregate(
        *dataset_.table, target_rows_, views[0].dimension, specs, bins,
        dim.lo, dim.hi);
    MUVE_CHECK(multi.ok()) << multi.status().ToString();
    ChargeProbeRows(static_cast<int64_t>(target_rows_.size()));
    for (size_t j = 0; j < ineligible.size(); ++j) {
      targets[ineligible[j]] = std::move((*multi)[j]);
    }
  }
  const double target_ms = target_timer.ElapsedMillis();
  stats_.target_time_ms += target_ms;
  ++stats_.target_queries;
  cost_model_.Observe(CostKind::kTargetQuery, target_ms);

  common::Stopwatch comparison_timer;
  for (size_t i = 0; i < views.size(); ++i) {
    if (CacheEligible(views[i])) {
      comparisons[i] = CoarsenBaseHistogram(
          *BaseFor(views[i], /*target_side=*/false), views[i].function,
          bins, dim.lo, dim.hi);
    }
  }
  if (!ineligible.empty()) {
    auto multi = storage::MultiBinnedAggregate(
        *dataset_.table, all_rows_, views[0].dimension, specs, bins,
        dim.lo, dim.hi);
    MUVE_CHECK(multi.ok()) << multi.status().ToString();
    ChargeProbeRows(static_cast<int64_t>(all_rows_.size()));
    for (size_t j = 0; j < ineligible.size(); ++j) {
      comparisons[ineligible[j]] = std::move((*multi)[j]);
    }
  }
  const double comparison_ms = comparison_timer.ElapsedMillis();
  stats_.comparison_time_ms += comparison_ms;
  ++stats_.comparison_queries;
  cost_model_.Observe(CostKind::kComparisonQuery, comparison_ms);

  // Raw series for any view whose accuracy input is not cached yet:
  // eligible views finish theirs from the base histogram, the rest share
  // one multi group-by scan.
  common::Stopwatch raw_timer;
  bool raw_work = false;
  std::vector<size_t> missing;
  std::vector<storage::AggregateSpec> missing_specs;
  for (size_t i = 0; i < views.size(); ++i) {
    if (raw_cache_.contains(views[i].Key())) continue;
    if (CacheEligible(views[i])) {
      RawSeries series;
      BaseRawSeries(*BaseFor(views[i], /*target_side=*/true),
                    views[i].function, &series.keys, &series.aggregates);
      raw_cache_.emplace(views[i].Key(), std::move(series));
      raw_work = true;
    } else {
      missing.push_back(i);
      missing_specs.push_back({views[i].measure, views[i].function});
    }
  }
  if (!missing.empty()) {
    auto raw = storage::MultiGroupByAggregate(
        *dataset_.table, target_rows_, views[0].dimension, missing_specs);
    MUVE_CHECK(raw.ok()) << raw.status().ToString();
    ChargeProbeRows(static_cast<int64_t>(target_rows_.size()));
    for (size_t m = 0; m < missing.size(); ++m) {
      RawSeries series;
      series.aggregates = (*raw)[m].aggregates;
      series.keys.reserve((*raw)[m].num_groups());
      for (const storage::Value& v : (*raw)[m].keys) {
        auto d = v.ToDouble();
        MUVE_CHECK(d.ok()) << d.status().ToString();
        series.keys.push_back(*d);
      }
      raw_cache_.emplace(views[missing[m]].Key(), std::move(series));
    }
    raw_work = true;
  }
  if (raw_work) {
    const double raw_ms = raw_timer.ElapsedMillis();
    stats_.accuracy_time_ms += raw_ms;
    cost_model_.Observe(CostKind::kAccuracy, raw_ms);
  }

  BatchScores scores;
  scores.deviations.resize(views.size());
  scores.accuracies.resize(views.size());
  for (size_t i = 0; i < views.size(); ++i) {
    common::Stopwatch distance_timer;
    scores.deviations[i] = NormalizedSeriesDistance(
        targets[i].aggregates, comparisons[i].aggregates);
    const double distance_ms = distance_timer.ElapsedMillis();
    stats_.deviation_time_ms += distance_ms;
    ++stats_.deviation_evals;
    cost_model_.Observe(CostKind::kDeviation, distance_ms);

    common::Stopwatch accuracy_timer;
    const RawSeries& raw = raw_cache_.at(views[i].Key());
    scores.accuracies[i] =
        AccuracyFromSeries(raw.keys, raw.aggregates, targets[i]);
    const double accuracy_ms = accuracy_timer.ElapsedMillis();
    stats_.accuracy_time_ms += accuracy_ms;
    ++stats_.accuracy_evals;
    cost_model_.Observe(CostKind::kAccuracy, accuracy_ms);
  }
  return scores;
}

double ViewEvaluator::CandidateUsability(const View& view, int bins) const {
  const DimensionInfo& info = space_.dimension_info(view.dimension);
  if (info.categorical) {
    return 1.0 / static_cast<double>(info.distinct_values);
  }
  return Usability(bins);
}

bool ViewEvaluator::AccuracyFirst(const Weights& weights) const {
  const double ct = cost_model_.Estimate(CostKind::kTargetQuery);
  const double cc = cost_model_.Estimate(CostKind::kComparisonQuery);
  const double cd = cost_model_.Estimate(CostKind::kDeviation);
  const double ca = cost_model_.Estimate(CostKind::kAccuracy);
  const double accuracy_cost = ct + ca;
  const double deviation_cost = ct + cc + cd;
  if (accuracy_cost <= 0.0 || deviation_cost <= 0.0) {
    // No observations yet: bootstrap with deviation first (it seeds the
    // most cost estimates in one probe).
    return false;
  }
  return weights.accuracy / accuracy_cost >
         weights.deviation / deviation_cost;
}

void ViewEvaluator::ResetAccounting() {
  stats_ = ExecStats();
  cost_model_ = CostModel(cost_model_.beta());
}

void ViewEvaluator::ResetAll() {
  ResetAccounting();
  raw_cache_.clear();
  cached_target_.reset();
  cached_target_key_.clear();
  cached_target_bins_ = -1;
  // Note: clears the SHARED store when Options::base_cache was handed
  // in — ResetAll means "cold-cache run", and a shared cache that kept
  // entries would silently serve them to this evaluator again.
  if (base_cache_ != nullptr) base_cache_->Clear();
}

}  // namespace muve::core
