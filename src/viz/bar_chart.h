// ASCII bar-chart rendering of (binned) views.
//
// The examples use this to reproduce the paper's Figures 1-3 in the
// terminal: a target view, a comparison view, or both side by side as
// normalized probability distributions.

#ifndef MUVE_VIZ_BAR_CHART_H_
#define MUVE_VIZ_BAR_CHART_H_

#include <string>
#include <vector>

namespace muve::viz {

struct BarChartOptions {
  size_t max_bar_width = 50;   // characters at 100%
  int value_precision = 3;     // digits for the printed value
  char bar_char = '#';
  bool normalize = false;      // render values as fractions of their sum
};

// One labeled series: label_i -> value_i.
struct Series {
  std::string title;
  std::vector<std::string> labels;
  std::vector<double> values;
};

// Renders a single horizontal bar chart.
std::string RenderBarChart(const Series& series,
                           const BarChartOptions& options = {});

// Renders two series with shared labels side by side (target vs
// comparison), each bar scaled within its own series.  Label vectors must
// match; value vectors must have the same length as the labels.
std::string RenderSideBySide(const Series& left, const Series& right,
                             const BarChartOptions& options = {});

// Builds bin labels "[lo, hi)" for an equi-width binning.
std::vector<std::string> BinLabels(double lo, double hi, int num_bins,
                                   int precision = 0);

}  // namespace muve::viz

#endif  // MUVE_VIZ_BAR_CHART_H_
