#include "sql/executor.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "common/string_util.h"
#include "sql/parser.h"
#include "storage/binned_group_by.h"
#include "storage/csv.h"
#include "storage/group_by.h"
#include "storage/predicate.h"

namespace muve::sql {

namespace {

using common::Result;
using common::Status;
using storage::AggregateFunction;
using storage::Field;
using storage::FieldRole;
using storage::RowSet;
using storage::Schema;
using storage::Table;
using storage::Value;
using storage::ValueType;

// Output column type for an aggregate.
ValueType AggregateOutputType(AggregateFunction f) {
  return f == AggregateFunction::kCount ? ValueType::kInt64
                                        : ValueType::kDouble;
}

Value AggregateOutputValue(AggregateFunction f, double finished) {
  if (f == AggregateFunction::kCount) {
    return Value(static_cast<int64_t>(std::llround(finished)));
  }
  return Value(finished);
}

Result<Table> ExecuteProjection(const SelectStatement& stmt,
                                const Table& table, const RowSet& rows) {
  // Expand the select list into concrete source column indexes.
  std::vector<size_t> source_cols;
  Schema out_schema;
  for (const SelectItem& item : stmt.items) {
    if (item.kind == SelectItem::Kind::kStar) {
      for (size_t c = 0; c < table.schema().num_fields(); ++c) {
        source_cols.push_back(c);
        MUVE_RETURN_IF_ERROR(out_schema.AddField(table.schema().field(c)));
      }
      continue;
    }
    if (item.kind == SelectItem::Kind::kAggregate) {
      return Status::InvalidArgument(
          "mixed aggregate and plain columns require GROUP BY");
    }
    MUVE_ASSIGN_OR_RETURN(const size_t idx,
                          table.schema().FieldIndex(item.column));
    source_cols.push_back(idx);
    Field f = table.schema().field(idx);
    if (!item.alias.empty()) f.name = item.alias;
    MUVE_RETURN_IF_ERROR(out_schema.AddField(std::move(f)));
  }

  Table out(out_schema);
  out.Reserve(rows.size());
  std::vector<Value> row(source_cols.size());
  for (uint32_t r : rows) {
    for (size_t c = 0; c < source_cols.size(); ++c) {
      row[c] = table.At(r, source_cols[c]);
    }
    MUVE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

Result<Table> ExecuteScalarAggregate(const SelectStatement& stmt,
                                     const Table& table, const RowSet& rows) {
  Schema out_schema;
  std::vector<Value> row;
  for (const SelectItem& item : stmt.items) {
    if (item.kind != SelectItem::Kind::kAggregate) {
      return Status::InvalidArgument(
          "non-aggregate select item requires GROUP BY");
    }
    MUVE_RETURN_IF_ERROR(out_schema.AddField(
        Field(item.OutputName(), AggregateOutputType(item.function))));
    storage::AggregateAccumulator acc(item.function);
    if (item.count_star) {
      for (size_t i = 0; i < rows.size(); ++i) acc.Add(1.0);
    } else {
      MUVE_ASSIGN_OR_RETURN(const storage::Column* col,
                            table.ColumnByName(item.column));
      const bool is_count = item.function == AggregateFunction::kCount;
      if (col->type() == ValueType::kString && !is_count) {
        return Status::TypeMismatch("cannot aggregate string column '" +
                                    item.column + "'");
      }
      for (uint32_t r : rows) {
        if (col->IsNull(r)) continue;
        acc.Add(is_count ? 1.0 : col->NumericAt(r));
      }
    }
    row.push_back(AggregateOutputValue(item.function, acc.Finish()));
  }
  Table out(out_schema);
  MUVE_RETURN_IF_ERROR(out.AppendRow(row));
  return out;
}

Result<Table> ExecuteGroupBy(const SelectStatement& stmt, const Table& table,
                             const RowSet& rows) {
  const std::string& dim = *stmt.group_by;
  // Partition the select list: at most one reference to the group-by
  // column plus one or more aggregates.
  std::vector<const SelectItem*> aggregates;
  bool saw_dim = false;
  std::string dim_output_name = dim;
  for (const SelectItem& item : stmt.items) {
    switch (item.kind) {
      case SelectItem::Kind::kStar:
        return Status::InvalidArgument("'*' not allowed with GROUP BY");
      case SelectItem::Kind::kColumn:
        if (!common::EqualsIgnoreCase(item.column, dim)) {
          return Status::InvalidArgument(
              "column '" + item.column +
              "' must appear in GROUP BY or an aggregate");
        }
        saw_dim = true;
        if (!item.alias.empty()) dim_output_name = item.alias;
        break;
      case SelectItem::Kind::kAggregate:
        aggregates.push_back(&item);
        break;
    }
  }
  if (aggregates.empty()) {
    return Status::InvalidArgument("GROUP BY requires at least one aggregate");
  }
  MUVE_ASSIGN_OR_RETURN(const size_t dim_idx, table.schema().FieldIndex(dim));
  const ValueType dim_type = table.schema().field(dim_idx).type;

  if (stmt.num_bins.has_value()) {
    // Binned aggregation: bin over the whole table's dimension range.
    const storage::Column& dim_col = table.column(dim_idx);
    if (dim_col.type() == ValueType::kString) {
      return Status::TypeMismatch("cannot bin string dimension '" + dim + "'");
    }
    MUVE_ASSIGN_OR_RETURN(const double lo, dim_col.NumericMin());
    MUVE_ASSIGN_OR_RETURN(const double hi, dim_col.NumericMax());

    Schema out_schema;
    if (saw_dim) {
      MUVE_RETURN_IF_ERROR(out_schema.AddField(
          Field(dim_output_name + "_bin_lo", ValueType::kDouble)));
      MUVE_RETURN_IF_ERROR(out_schema.AddField(
          Field(dim_output_name + "_bin_hi", ValueType::kDouble)));
    }
    for (const SelectItem* agg : aggregates) {
      MUVE_RETURN_IF_ERROR(out_schema.AddField(
          Field(agg->OutputName(), AggregateOutputType(agg->function))));
    }

    std::vector<storage::BinnedResult> results;
    for (const SelectItem* agg : aggregates) {
      const std::string& measure = agg->count_star ? dim : agg->column;
      MUVE_ASSIGN_OR_RETURN(
          storage::BinnedResult res,
          storage::BinnedAggregate(table, rows, dim, measure, agg->function,
                                   *stmt.num_bins, lo, hi));
      results.push_back(std::move(res));
    }

    Table out(out_schema);
    const int b = *stmt.num_bins;
    for (int bin = 0; bin < b; ++bin) {
      std::vector<Value> row;
      if (saw_dim) {
        row.emplace_back(results[0].BinStart(bin));
        row.emplace_back(results[0].BinEnd(bin));
      }
      for (size_t a = 0; a < aggregates.size(); ++a) {
        row.push_back(AggregateOutputValue(
            aggregates[a]->function,
            results[a].aggregates[static_cast<size_t>(bin)]));
      }
      MUVE_RETURN_IF_ERROR(out.AppendRow(row));
    }
    return out;
  }

  // Plain group-by.
  Schema out_schema;
  if (saw_dim) {
    MUVE_RETURN_IF_ERROR(out_schema.AddField(Field(dim_output_name, dim_type)));
  }
  for (const SelectItem* agg : aggregates) {
    MUVE_RETURN_IF_ERROR(out_schema.AddField(
        Field(agg->OutputName(), AggregateOutputType(agg->function))));
  }
  std::vector<storage::GroupByResult> results;
  for (const SelectItem* agg : aggregates) {
    const std::string& measure = agg->count_star ? dim : agg->column;
    MUVE_ASSIGN_OR_RETURN(
        storage::GroupByResult res,
        storage::GroupByAggregate(table, rows, dim, measure, agg->function));
    results.push_back(std::move(res));
  }
  // Different aggregates can have different group sets when measures have
  // NULLs in different rows; merge over the union of keys.
  // (With NULL-free data all key sets are identical.)
  std::vector<Value> all_keys;
  for (const auto& res : results) {
    for (const Value& k : res.keys) all_keys.push_back(k);
  }
  std::sort(all_keys.begin(), all_keys.end());
  all_keys.erase(std::unique(all_keys.begin(), all_keys.end()),
                 all_keys.end());

  Table out(out_schema);
  out.Reserve(all_keys.size());
  for (const Value& key : all_keys) {
    std::vector<Value> row;
    if (saw_dim) row.push_back(key);
    for (const auto& res : results) {
      const auto it = std::lower_bound(res.keys.begin(), res.keys.end(), key);
      double v = 0.0;
      if (it != res.keys.end() && *it == key) {
        v = res.aggregates[static_cast<size_t>(it - res.keys.begin())];
      }
      // Find which aggregate this result corresponds to for typing.
      const size_t a = static_cast<size_t>(&res - results.data());
      row.push_back(AggregateOutputValue(aggregates[a]->function, v));
    }
    MUVE_RETURN_IF_ERROR(out.AppendRow(row));
  }
  return out;
}

// Filters the aggregated result by the HAVING predicate (bound against
// the result's output schema).
Result<Table> ApplyHaving(const SelectStatement& stmt, Table result) {
  if (stmt.having == nullptr) return result;
  MUVE_ASSIGN_OR_RETURN(
      const RowSet keep,
      storage::Filter(result, stmt.having.get()));
  Table filtered(result.schema());
  filtered.Reserve(keep.size());
  std::vector<Value> row(result.num_columns());
  for (uint32_t r : keep) {
    for (size_t c = 0; c < result.num_columns(); ++c) {
      row[c] = result.At(r, c);
    }
    MUVE_RETURN_IF_ERROR(filtered.AppendRow(row));
  }
  return filtered;
}

Result<Table> ApplyOrderAndLimit(const SelectStatement& stmt, Table result) {
  if (stmt.order_by.has_value()) {
    MUVE_ASSIGN_OR_RETURN(const size_t col, result.schema().FieldIndex(
                                                stmt.order_by->column));
    std::vector<size_t> order(result.num_rows());
    std::iota(order.begin(), order.end(), 0);
    const bool desc = stmt.order_by->descending;
    std::stable_sort(order.begin(), order.end(),
                     [&](size_t a, size_t b) {
                       const Value va = result.At(a, col);
                       const Value vb = result.At(b, col);
                       return desc ? vb < va : va < vb;
                     });
    Table sorted(result.schema());
    sorted.Reserve(order.size());
    std::vector<Value> row(result.num_columns());
    for (size_t r : order) {
      for (size_t c = 0; c < result.num_columns(); ++c) {
        row[c] = result.At(r, c);
      }
      MUVE_RETURN_IF_ERROR(sorted.AppendRow(row));
    }
    result = std::move(sorted);
  }
  if (stmt.limit.has_value() &&
      static_cast<size_t>(*stmt.limit) < result.num_rows()) {
    Table limited(result.schema());
    const size_t n = static_cast<size_t>(*stmt.limit);
    limited.Reserve(n);
    std::vector<Value> row(result.num_columns());
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < result.num_columns(); ++c) {
        row[c] = result.At(r, c);
      }
      MUVE_RETURN_IF_ERROR(limited.AppendRow(row));
    }
    result = std::move(limited);
  }
  return result;
}

}  // namespace

common::Result<storage::Table> Execute(SelectStatement& stmt,
                                       const Catalog& catalog) {
  MUVE_ASSIGN_OR_RETURN(const Table* table, catalog.GetTable(stmt.table_name));
  if (stmt.items.empty()) {
    return Status::InvalidArgument("empty select list");
  }

  RowSet rows;
  if (stmt.where != nullptr) {
    MUVE_ASSIGN_OR_RETURN(rows, storage::Filter(*table, stmt.where.get()));
  } else {
    rows = storage::AllRows(table->num_rows());
  }

  if (stmt.having != nullptr && !stmt.group_by.has_value()) {
    return Status::InvalidArgument("HAVING requires GROUP BY");
  }
  Result<Table> result = [&]() -> Result<Table> {
    if (stmt.group_by.has_value()) {
      return ExecuteGroupBy(stmt, *table, rows);
    }
    const bool any_aggregate =
        std::any_of(stmt.items.begin(), stmt.items.end(), [](const auto& i) {
          return i.kind == SelectItem::Kind::kAggregate;
        });
    if (any_aggregate) {
      return ExecuteScalarAggregate(stmt, *table, rows);
    }
    return ExecuteProjection(stmt, *table, rows);
  }();
  if (!result.ok()) return result.status();
  MUVE_ASSIGN_OR_RETURN(Table with_having,
                        ApplyHaving(stmt, std::move(result).value()));
  return ApplyOrderAndLimit(stmt, std::move(with_having));
}

common::Result<StatementResult> ExecuteStatement(Statement& stmt,
                                                 Catalog& catalog) {
  StatementResult result;
  switch (stmt.kind) {
    case Statement::Kind::kSelect: {
      MUVE_ASSIGN_OR_RETURN(storage::Table table,
                            Execute(stmt.select, catalog));
      result.message =
          "(" + std::to_string(table.num_rows()) + " rows)";
      result.table = std::move(table);
      return result;
    }
    case Statement::Kind::kCreateTable: {
      if (stmt.create_table.schema.num_fields() == 0) {
        return Status::InvalidArgument("CREATE TABLE needs columns");
      }
      MUVE_RETURN_IF_ERROR(catalog.RegisterTable(
          stmt.create_table.table_name,
          storage::Table(stmt.create_table.schema)));
      result.message = "created table " + stmt.create_table.table_name;
      return result;
    }
    case Statement::Kind::kInsert: {
      MUVE_ASSIGN_OR_RETURN(storage::Table * table,
                            catalog.GetMutableTable(stmt.insert.table_name));
      // Validate every row against a scratch table first so a bad row
      // leaves the target untouched (atomic insert).
      storage::Table scratch(table->schema());
      for (size_t r = 0; r < stmt.insert.rows.size(); ++r) {
        if (const Status st = scratch.AppendRow(stmt.insert.rows[r]);
            !st.ok()) {
          return Status::InvalidArgument(
              "row " + std::to_string(r + 1) + ": " + st.message());
        }
      }
      for (const auto& row : stmt.insert.rows) {
        MUVE_RETURN_IF_ERROR(table->AppendRow(row));
      }
      result.message = "inserted " +
                       std::to_string(stmt.insert.rows.size()) +
                       " rows into " + stmt.insert.table_name;
      return result;
    }
    case Statement::Kind::kLoadCsv: {
      MUVE_ASSIGN_OR_RETURN(
          storage::Table * table,
          catalog.GetMutableTable(stmt.load_csv.table_name));
      storage::CsvOptions options;
      options.schema = table->schema();
      MUVE_ASSIGN_OR_RETURN(const storage::Table loaded,
                            storage::ReadCsvFile(stmt.load_csv.path,
                                                 options));
      std::vector<Value> row(loaded.num_columns());
      for (size_t r = 0; r < loaded.num_rows(); ++r) {
        for (size_t c = 0; c < loaded.num_columns(); ++c) {
          row[c] = loaded.At(r, c);
        }
        MUVE_RETURN_IF_ERROR(table->AppendRow(row));
      }
      result.message = "loaded " + std::to_string(loaded.num_rows()) +
                       " rows from '" + stmt.load_csv.path + "' into " +
                       stmt.load_csv.table_name;
      return result;
    }
    case Statement::Kind::kRecommend:
      return Status::InvalidArgument(
          "RECOMMEND needs the recommendation engine; use "
          "core::ExecuteRecommend");
  }
  return Status::Internal("unhandled statement kind");
}

common::Result<storage::Table> ExecuteSql(const std::string& sql,
                                          const Catalog& catalog) {
  MUVE_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return Status::InvalidArgument(
        "ExecuteSql only handles SELECT; use the recommender glue for "
        "RECOMMEND statements");
  }
  return Execute(stmt.select, catalog);
}

}  // namespace muve::sql
