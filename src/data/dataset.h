// Dataset bundle: a table plus the exploration setup the paper's
// experiments assume — which attributes are dimensions, which are
// measures, which aggregate functions are in play, and the analyst's
// query predicate T that selects the subset D_Q.

#ifndef MUVE_DATA_DATASET_H_
#define MUVE_DATA_DATASET_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/aggregate.h"
#include "storage/predicate.h"
#include "storage/table.h"

namespace muve::data {

// A fully-specified exploration workload over one table.
struct Dataset {
  std::string name;
  std::shared_ptr<const storage::Table> table;

  // The paper's A (numerical dimension attributes) and M (measures).
  std::vector<std::string> dimensions;
  std::vector<std::string> measures;
  std::vector<storage::AggregateFunction> functions;

  // Categorical dimensions (no binning; the SeeDB setting).  Views over
  // these enter the vertical search with a single candidate each.
  std::vector<std::string> categorical_dimensions;

  // SQL text of the analyst's selection predicate (e.g. "team = 'GSW'"),
  // kept as text so each consumer can build and bind its own tree.
  std::string query_predicate_sql;

  // Rows of D_Q (the predicate's selection) and D_B (everything).
  storage::RowSet target_rows;
  storage::RowSet all_rows;

  // Setup accounting (outside the paper's per-probe cost C): rows the
  // analyst predicate eliminated when selecting D_Q, and wall-clock spent
  // on data load + predicate filtering.  The Recommender copies these
  // into every Recommendation's ExecStats (predicate_rows_filtered /
  // setup_time_ms) so end-to-end runs report one-off costs explicitly.
  int64_t predicate_rows_filtered = 0;
  // Column chunks the setup predicate never scanned because their zone
  // maps decided them wholesale (0 on single-chunk tables).
  int64_t chunks_skipped = 0;
  double setup_time_ms = 0.0;
};

// Restricts `dataset`'s workload to the first `num_dimensions` dimensions /
// `num_measures` measures / `num_functions` functions (for the paper's
// scalability sweeps).  Counts are clamped to what is available.
Dataset WithWorkloadSize(const Dataset& dataset, size_t num_dimensions,
                         size_t num_measures, size_t num_functions);

}  // namespace muve::data

#endif  // MUVE_DATA_DATASET_H_
