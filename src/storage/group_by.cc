#include "storage/group_by.h"

#include <algorithm>
#include <map>

namespace muve::storage {

common::Result<GroupByResult> GroupByAggregate(const Table& table,
                                               const RowSet& rows,
                                               std::string_view dimension,
                                               std::string_view measure,
                                               AggregateFunction function) {
  MUVE_ASSIGN_OR_RETURN(const Column* dim, table.ColumnByName(dimension));
  MUVE_ASSIGN_OR_RETURN(const Column* mea, table.ColumnByName(measure));
  if (mea->type() == ValueType::kString &&
      function != AggregateFunction::kCount) {
    return common::Status::TypeMismatch(
        "cannot aggregate string measure '" + std::string(measure) +
        "' with " + AggregateName(function));
  }

  // An ordered map keeps groups sorted by key, which the distribution and
  // accuracy computations downstream rely on.
  std::map<Value, AggregateAccumulator> groups;
  const bool is_count = function == AggregateFunction::kCount;
  for (uint32_t row : rows) {
    if (dim->IsNull(row)) continue;
    // SQL semantics: COUNT(M) also ignores NULL measures.
    if (mea->IsNull(row)) continue;
    const Value key = dim->ValueAt(row);
    auto it = groups.find(key);
    if (it == groups.end()) {
      it = groups.emplace(key, AggregateAccumulator(function)).first;
    }
    it->second.Add(is_count ? 1.0 : mea->NumericAt(row));
  }

  GroupByResult out;
  out.keys.reserve(groups.size());
  out.aggregates.reserve(groups.size());
  out.row_counts.reserve(groups.size());
  for (const auto& [key, acc] : groups) {
    out.keys.push_back(key);
    out.aggregates.push_back(acc.Finish());
    out.row_counts.push_back(acc.count());
  }
  return out;
}

}  // namespace muve::storage
