// The hybrid multi-objective utility function (Eq. 5):
//
//   U(V_{i,b}) = alpha_D * D + alpha_A * A + alpha_S * S
//
// with alpha_D + alpha_A + alpha_S = 1, every objective in [0, 1], and
// therefore U in [0, 1].

#ifndef MUVE_CORE_UTILITY_H_
#define MUVE_CORE_UTILITY_H_

#include <string>

#include "common/status.h"

namespace muve::core {

// The objective weights (alpha_D, alpha_A, alpha_S).
struct Weights {
  double deviation = 0.2;  // alpha_D
  double accuracy = 0.2;   // alpha_A
  double usability = 0.6;  // alpha_S — the paper's default setting

  // Validates weights: each in [0, 1] and summing to 1 (tolerance 1e-6).
  common::Status Validate() const;

  // Convenience constructors for common settings.
  static Weights PaperDefault() { return Weights{0.2, 0.2, 0.6}; }
  static Weights Equal() { return Weights{1.0 / 3, 1.0 / 3, 1.0 / 3}; }
  // Deviation-only reduces Eq. 5 to the SeeDB utility.
  static Weights DeviationOnly() { return Weights{1.0, 0.0, 0.0}; }

  std::string ToString() const;
};

// The usability objective S(V_{i,b}) = w / L = 1 / b (Eq. 3).
double Usability(int bins);

// Evaluates Eq. 5 from the three objective values.
double Utility(const Weights& w, double deviation, double accuracy,
               double usability);

// Upper bound on the utility of a candidate whose deviation and accuracy
// are not yet known (both assumed to score the maximum 1.0); this is the
// paper's pruning threshold U_max = alpha_D + alpha_A + alpha_S * S.
double UtilityUpperBound(const Weights& w, double usability);

}  // namespace muve::core

#endif  // MUVE_CORE_UTILITY_H_
