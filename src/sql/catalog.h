// Table catalog: the named-table namespace SQL statements resolve against.

#ifndef MUVE_SQL_CATALOG_H_
#define MUVE_SQL_CATALOG_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/table.h"

namespace muve::sql {

// Owns tables by name (case-insensitive).  Registered tables are immutable
// from the catalog's point of view.
class Catalog {
 public:
  Catalog() = default;
  Catalog(const Catalog&) = delete;
  Catalog& operator=(const Catalog&) = delete;

  // Takes ownership.  AlreadyExists if the name is taken.
  common::Status RegisterTable(std::string name, storage::Table table);

  common::Result<const storage::Table*> GetTable(std::string_view name) const;

  // Mutable access for DML (INSERT / LOAD CSV).
  common::Result<storage::Table*> GetMutableTable(std::string_view name);

  bool HasTable(std::string_view name) const;

  std::vector<std::string> TableNames() const;

 private:
  std::unordered_map<std::string, std::unique_ptr<storage::Table>> tables_;
};

}  // namespace muve::sql

#endif  // MUVE_SQL_CATALOG_H_
