#include "storage/predicate.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace muve::storage {
namespace {

class PredicateTest : public ::testing::Test {
 protected:
  PredicateTest()
      : table_(Schema({{"x", ValueType::kInt64},
                       {"name", ValueType::kString},
                       {"w", ValueType::kDouble}})) {
    Append(1, "a", 0.5);
    Append(2, "b", 1.5);
    Append(3, "a", 2.5);
    Append(4, "c", 3.5);
    AppendNullX("d", 4.5);
  }

  void Append(int64_t x, const char* name, double w) {
    ASSERT_TRUE(
        table_.AppendRow({Value(x), Value(name), Value(w)}).ok());
  }
  void AppendNullX(const char* name, double w) {
    ASSERT_TRUE(
        table_.AppendRow({Value::Null(), Value(name), Value(w)}).ok());
  }

  RowSet Run(PredicatePtr pred) {
    auto result = Filter(table_, pred.get());
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    return result.ok() ? *result : RowSet{};
  }

  Table table_;
};

TEST_F(PredicateTest, ComparisonOperators) {
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kEq, Value(int64_t{2}))),
            (RowSet{1}));
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kNe, Value(int64_t{2}))),
            (RowSet{0, 2, 3}));  // NULL row never matches
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kLt, Value(int64_t{3}))),
            (RowSet{0, 1}));
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kLe, Value(int64_t{3}))),
            (RowSet{0, 1, 2}));
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kGt, Value(int64_t{3}))),
            (RowSet{3}));
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kGe, Value(int64_t{3}))),
            (RowSet{2, 3}));
}

TEST_F(PredicateTest, StringEquality) {
  EXPECT_EQ(Run(MakeComparison("name", CompareOp::kEq, Value("a"))),
            (RowSet{0, 2}));
}

TEST_F(PredicateTest, CrossTypeNumericComparison) {
  // Integer column compared against double literal.
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kEq, Value(2.0))),
            (RowSet{1}));
  EXPECT_EQ(Run(MakeComparison("x", CompareOp::kGt, Value(2.5))),
            (RowSet{2, 3}));
}

TEST_F(PredicateTest, Between) {
  EXPECT_EQ(Run(MakeBetween("x", Value(int64_t{2}), Value(int64_t{3}))),
            (RowSet{1, 2}));
}

TEST_F(PredicateTest, AndOrNot) {
  auto both = MakeAnd(MakeComparison("name", CompareOp::kEq, Value("a")),
                      MakeComparison("x", CompareOp::kGt, Value(int64_t{1})));
  EXPECT_EQ(Run(std::move(both)), (RowSet{2}));

  auto either = MakeOr(MakeComparison("x", CompareOp::kEq, Value(int64_t{1})),
                       MakeComparison("x", CompareOp::kEq, Value(int64_t{4})));
  EXPECT_EQ(Run(std::move(either)), (RowSet{0, 3}));

  auto negated =
      MakeNot(MakeComparison("name", CompareOp::kEq, Value("a")));
  EXPECT_EQ(Run(std::move(negated)), (RowSet{1, 3, 4}));
}

TEST_F(PredicateTest, InList) {
  EXPECT_EQ(Run(MakeInList("x", {Value(int64_t{1}), Value(int64_t{4})})),
            (RowSet{0, 3}));
  EXPECT_EQ(Run(MakeInList("name", {Value("a"), Value("c")})),
            (RowSet{0, 2, 3}));
  // Cross-type numeric membership.
  EXPECT_EQ(Run(MakeInList("x", {Value(2.0)})), (RowSet{1}));
  // Empty list matches nothing.
  EXPECT_EQ(Run(MakeInList("x", {})), (RowSet{}));
  // NULL cells never match, even against a NULL literal.
  EXPECT_EQ(Run(MakeInList("x", {Value::Null()})), (RowSet{}));
}

TEST_F(PredicateTest, IsNull) {
  EXPECT_EQ(Run(MakeIsNull("x")), (RowSet{4}));
  EXPECT_EQ(Run(MakeIsNull("x", /*negate=*/true)), (RowSet{0, 1, 2, 3}));
  EXPECT_EQ(Run(MakeIsNull("w")), (RowSet{}));
}

TEST_F(PredicateTest, TrueMatchesEverything) {
  EXPECT_EQ(Run(MakeTrue()), (RowSet{0, 1, 2, 3, 4}));
}

TEST_F(PredicateTest, NullComparisonsNeverMatch) {
  // Row 4 has NULL x; no comparison on x selects it.
  for (const CompareOp op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kGe}) {
    const RowSet rows = Run(MakeComparison("x", op, Value(int64_t{100})));
    for (uint32_t r : rows) EXPECT_NE(r, 4u);
  }
}

TEST_F(PredicateTest, FilterOverBaseRowSet) {
  auto pred = MakeComparison("x", CompareOp::kGe, Value(int64_t{2}));
  const RowSet base = {0, 2, 4};
  auto result = Filter(table_, pred.get(), &base);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(*result, (RowSet{2}));
}

TEST_F(PredicateTest, UnknownColumnFailsBind) {
  auto pred = MakeComparison("missing", CompareOp::kEq, Value(int64_t{1}));
  EXPECT_FALSE(Filter(table_, pred.get()).ok());
}

TEST_F(PredicateTest, ToStringRoundReadable) {
  auto pred = MakeAnd(MakeComparison("x", CompareOp::kLe, Value(int64_t{3})),
                      MakeNot(MakeComparison("name", CompareOp::kEq,
                                             Value("a"))));
  EXPECT_EQ(pred->ToString(), "(x <= 3 AND NOT (name = a))");
}

}  // namespace
}  // namespace muve::storage
