#include "storage/predicate.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "storage/chunk.h"
#include "storage/chunk_run.h"
#include "storage/validity_bitmap.h"

namespace muve::storage {

void Predicate::FilterInto(const Table& table, const RowSet& candidates,
                           RowSet* out, FilterStats*) const {
  // Generic fallback: per-row virtual Matches.  Leaf nodes override with
  // typed kernels; this path remains for mixed-type comparisons.
  for (const uint32_t row : candidates) {
    if (Matches(table, row)) out->push_back(row);
  }
}

namespace {

// Zone-map verdict for one chunk: scan it, skip it wholesale (no cell
// can match — nothing touched, counted in FilterStats::chunks_skipped),
// or accept every candidate row in it (every cell provably matches).
enum class ZoneDecision { kScan, kSkip, kAcceptAll };

// Numeric comparison verdict from the chunk zone map.  min/max exclude
// NaN cells, so:
//   * "no match" conclusions for ordering ops stay sound with NaNs
//     present (a NaN cell fails every <, <=, >, >=, = comparison), but
//     `!=` must not conclude "all equal the literal" when a NaN hides
//     outside the range (NaN != lit is TRUE);
//   * "all match" conclusions additionally require zero NULLs (NULL
//     cells never match) and zero NaNs (a NaN fails ordering ops).
ZoneDecision ZoneForCompare(const ColumnChunk& c, CompareOp op, double lit) {
  const bool ranged = c.HasRange();
  const bool pure = c.AllValid() && !c.HasNaN();
  switch (op) {
    case CompareOp::kEq:
      if (!ranged || lit < c.min() || lit > c.max()) return ZoneDecision::kSkip;
      if (pure && c.min() == c.max() && c.min() == lit) {
        return ZoneDecision::kAcceptAll;
      }
      return ZoneDecision::kScan;
    case CompareOp::kNe:
      if (!c.HasNaN() &&
          (!ranged || (c.min() == c.max() && c.min() == lit))) {
        return ZoneDecision::kSkip;
      }
      if (c.AllValid() && (!ranged || lit < c.min() || lit > c.max())) {
        // Every non-NULL cell is NaN (matches !=) or provably != lit.
        return ZoneDecision::kAcceptAll;
      }
      return ZoneDecision::kScan;
    case CompareOp::kLt:
      if (!ranged || c.min() >= lit) return ZoneDecision::kSkip;
      if (pure && c.max() < lit) return ZoneDecision::kAcceptAll;
      return ZoneDecision::kScan;
    case CompareOp::kLe:
      if (!ranged || c.min() > lit) return ZoneDecision::kSkip;
      if (pure && c.max() <= lit) return ZoneDecision::kAcceptAll;
      return ZoneDecision::kScan;
    case CompareOp::kGt:
      if (!ranged || c.max() <= lit) return ZoneDecision::kSkip;
      if (pure && c.min() > lit) return ZoneDecision::kAcceptAll;
      return ZoneDecision::kScan;
    case CompareOp::kGe:
      if (!ranged || c.max() < lit) return ZoneDecision::kSkip;
      if (pure && c.min() >= lit) return ZoneDecision::kAcceptAll;
      return ZoneDecision::kScan;
  }
  return ZoneDecision::kScan;
}

ZoneDecision ZoneForBetween(const ColumnChunk& c, double lo, double hi) {
  if (!c.HasRange() || hi < c.min() || lo > c.max()) {
    return ZoneDecision::kSkip;
  }
  if (c.AllValid() && !c.HasNaN() && lo <= c.min() && c.max() <= hi) {
    return ZoneDecision::kAcceptAll;
  }
  return ZoneDecision::kScan;
}

// Tight typed scan over one chunk run: one comparator instantiation per
// CompareOp, null-skip hoisted to a per-chunk AllValid check (the common
// case — the MuVE datasets carry no NULLs on predicate columns — runs a
// branch-per-row-free loop over the chunk's raw array).
template <typename T, typename Cmp>
void ScanChunkRun(const ColumnChunk& chunk, const T* data, const RowSet& rows,
                  size_t begin, size_t end, uint32_t mask, Cmp cmp,
                  RowSet* out) {
  if (chunk.AllValid()) {
    for (size_t p = begin; p < end; ++p) {
      const uint32_t row = rows[p];
      if (cmp(data[row & mask])) out->push_back(row);
    }
    return;
  }
  const ValidityBitmap& valid = chunk.validity();
  for (size_t p = begin; p < end; ++p) {
    const uint32_t row = rows[p];
    const uint32_t i = row & mask;
    if (valid.Get(i) && cmp(data[i])) out->push_back(row);
  }
}

// Numeric comparison kernel for one chunk run.  Values compare after
// coercion to double, exactly like Value::operator== / operator< (which
// also coerce int64 through double), so kernel results match Matches
// bit-for-bit.
template <typename T>
void ScanCompareNumericRun(const ColumnChunk& chunk, const T* data,
                           const RowSet& rows, size_t begin, size_t end,
                           uint32_t mask, CompareOp op, double lit,
                           RowSet* out) {
  switch (op) {
    case CompareOp::kEq:
      ScanChunkRun(chunk, data, rows, begin, end, mask,
                   [lit](T v) { return static_cast<double>(v) == lit; }, out);
      return;
    case CompareOp::kNe:
      ScanChunkRun(chunk, data, rows, begin, end, mask,
                   [lit](T v) { return static_cast<double>(v) != lit; }, out);
      return;
    case CompareOp::kLt:
      ScanChunkRun(chunk, data, rows, begin, end, mask,
                   [lit](T v) { return static_cast<double>(v) < lit; }, out);
      return;
    case CompareOp::kLe:
      ScanChunkRun(chunk, data, rows, begin, end, mask,
                   [lit](T v) { return static_cast<double>(v) <= lit; }, out);
      return;
    case CompareOp::kGt:
      ScanChunkRun(chunk, data, rows, begin, end, mask,
                   [lit](T v) { return static_cast<double>(v) > lit; }, out);
      return;
    case CompareOp::kGe:
      ScanChunkRun(chunk, data, rows, begin, end, mask,
                   [lit](T v) { return static_cast<double>(v) >= lit; }, out);
      return;
  }
}

void AcceptRun(const RowSet& candidates, size_t begin, size_t end,
               RowSet* out) {
  out->insert(out->end(), candidates.begin() + static_cast<ptrdiff_t>(begin),
              candidates.begin() + static_cast<ptrdiff_t>(end));
}

// Chunk-run driver for a numeric predicate: zone map first, typed kernel
// only for runs the zone map cannot decide.  `zone` maps a chunk to a
// ZoneDecision; `scan` runs the kernel over one undecided run.
template <typename ZoneFn, typename ScanFn>
void FilterChunked(const Column& col, const RowSet& candidates,
                   FilterStats* stats, ZoneFn zone, ScanFn scan,
                   RowSet* out) {
  const uint32_t mask = col.chunk_mask();
  ForEachChunkRun(
      candidates, 0, candidates.size(), col.chunk_shift(),
      [&](uint32_t c, size_t begin, size_t end) {
        const ColumnChunk& chunk = col.chunk(c);
        switch (zone(chunk)) {
          case ZoneDecision::kSkip:
            if (stats != nullptr) ++stats->chunks_skipped;
            return;
          case ZoneDecision::kAcceptAll:
            AcceptRun(candidates, begin, end, out);
            return;
          case ZoneDecision::kScan:
            scan(chunk, begin, end, mask);
            return;
        }
      });
}

// String predicates evaluate the comparison ONCE per distinct dictionary
// entry, then scan the dense codes.  NULL rows carry ColumnChunk::kNoCode,
// which indexes no match-table slot — the kNoCode guard doubles as the
// null check, so no validity bitmap lookups happen at all.
//
// `match` maps a dictionary string to bool.  Returns the per-code match
// table; `any`/`all` report whether the chunk can short-circuit.
struct DictMatch {
  std::vector<uint8_t> table;
  bool any = false;
  bool all = true;
};

template <typename MatchFn>
DictMatch BuildDictMatch(const ColumnChunk& chunk, MatchFn match) {
  const std::vector<std::string>& dict = chunk.dict();
  DictMatch out;
  out.table.resize(dict.size());
  for (size_t i = 0; i < dict.size(); ++i) {
    const bool m = match(dict[i]);
    out.table[i] = m ? 1 : 0;
    out.any = out.any || m;
    out.all = out.all && m;
  }
  return out;
}

void ScanCodesRun(const ColumnChunk& chunk, const DictMatch& match,
                  const RowSet& rows, size_t begin, size_t end, uint32_t mask,
                  RowSet* out) {
  const uint32_t* codes = chunk.codes();
  for (size_t p = begin; p < end; ++p) {
    const uint32_t row = rows[p];
    const uint32_t code = codes[row & mask];
    if (code != ColumnChunk::kNoCode && match.table[code] != 0) {
      out->push_back(row);
    }
  }
}

// Chunk-run driver for string predicates via dictionary match tables.
template <typename MatchFn>
void FilterStringChunked(const Column& col, const RowSet& candidates,
                         FilterStats* stats, MatchFn match, RowSet* out) {
  const uint32_t mask = col.chunk_mask();
  ForEachChunkRun(
      candidates, 0, candidates.size(), col.chunk_shift(),
      [&](uint32_t c, size_t begin, size_t end) {
        const ColumnChunk& chunk = col.chunk(c);
        const DictMatch dm = BuildDictMatch(chunk, match);
        if (!dm.any) {
          // No distinct string of this chunk matches: NULL rows match
          // nothing either, so the whole run is gone without reading a
          // single code.
          if (stats != nullptr) ++stats->chunks_skipped;
          return;
        }
        if (dm.all && chunk.AllValid()) {
          AcceptRun(candidates, begin, end, out);
          return;
        }
        ScanCodesRun(chunk, dm, candidates, begin, end, mask, out);
      });
}

// Numeric literal as double under the same coercion Value uses.
double LiteralAsDouble(const Value& v) {
  return v.type() == ValueType::kInt64 ? static_cast<double>(v.AsInt64())
                                       : v.AsDoubleExact();
}

// Canonical literal rendering for cache keys.  Numerics render through a
// 17-significant-digit round-trip double form whether typed int64 or
// double — Value comparisons coerce int64 through double, so `10` and
// `10.0` are one literal semantically and must share a key.  Strings are
// length-prefixed so literal content cannot forge the key grammar's
// separators.
void AppendCanonicalValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "null";
      return;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", LiteralAsDouble(v));
      *out += "n:";
      *out += buf;
      return;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      *out += 's';
      *out += std::to_string(s.size());
      *out += ':';
      *out += s;
      return;
    }
  }
}

void AppendCanonicalColumn(const std::string& column, std::string* out) {
  *out += 'c';
  *out += std::to_string(column.size());
  *out += ':';
  *out += column;
}

// Sorted union of two ascending row sets into `out` (appended).
void UnionInto(const RowSet& a, const RowSet& b, RowSet* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out->push_back(b[j++]);
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
  out->insert(out->end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
}

// Rows of `candidates` not present in `exclude` (both ascending,
// `exclude` a subset of `candidates`), appended onto `out`.
void DifferenceInto(const RowSet& candidates, const RowSet& exclude,
                    RowSet* out) {
  size_t j = 0;
  for (const uint32_t row : candidates) {
    if (j < exclude.size() && exclude[j] == row) {
      ++j;
      continue;
    }
    out->push_back(row);
  }
}

}  // namespace

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

class ComparisonPredicate final : public Predicate {
 public:
  ComparisonPredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    bound_ = true;
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null() || literal_.is_null()) return false;
    switch (op_) {
      case CompareOp::kEq:
        return v == literal_;
      case CompareOp::kNe:
        return v != literal_;
      case CompareOp::kLt:
        return v < literal_;
      case CompareOp::kLe:
        return v < literal_ || v == literal_;
      case CompareOp::kGt:
        return literal_ < v;
      case CompareOp::kGe:
        return literal_ < v || v == literal_;
    }
    return false;
  }

  void FilterInto(const Table& table, const RowSet& candidates, RowSet* out,
                  FilterStats* stats) const override {
    if (literal_.is_null()) return;  // comparisons with NULL never match
    const Column& col = table.column(index_);
    switch (col.type()) {
      case ValueType::kInt64:
        if (literal_.is_numeric()) {
          const double lit = LiteralAsDouble(literal_);
          FilterChunked(
              col, candidates, stats,
              [this, lit](const ColumnChunk& c) {
                return ZoneForCompare(c, op_, lit);
              },
              [&](const ColumnChunk& c, size_t b, size_t e, uint32_t mask) {
                ScanCompareNumericRun(c, c.int64_data(), candidates, b, e,
                                      mask, op_, lit, out);
              },
              out);
          return;
        }
        break;
      case ValueType::kDouble:
        if (literal_.is_numeric()) {
          const double lit = LiteralAsDouble(literal_);
          FilterChunked(
              col, candidates, stats,
              [this, lit](const ColumnChunk& c) {
                return ZoneForCompare(c, op_, lit);
              },
              [&](const ColumnChunk& c, size_t b, size_t e, uint32_t mask) {
                ScanCompareNumericRun(c, c.double_data(), candidates, b, e,
                                      mask, op_, lit, out);
              },
              out);
          return;
        }
        break;
      case ValueType::kString:
        if (literal_.type() == ValueType::kString) {
          const std::string& lit = literal_.AsString();
          if (op_ == CompareOp::kEq) {
            // Equality probes the chunk dictionary directly: absent
            // literal = skipped chunk; present literal = a single-code
            // compare per row (NULL rows hold kNoCode, which can never
            // equal a dictionary code).
            const uint32_t mask = col.chunk_mask();
            ForEachChunkRun(
                candidates, 0, candidates.size(), col.chunk_shift(),
                [&](uint32_t c, size_t begin, size_t end) {
                  const ColumnChunk& chunk = col.chunk(c);
                  const uint32_t code = chunk.CodeOf(lit);
                  if (code == ColumnChunk::kNoCode) {
                    if (stats != nullptr) ++stats->chunks_skipped;
                    return;
                  }
                  const uint32_t* codes = chunk.codes();
                  for (size_t p = begin; p < end; ++p) {
                    const uint32_t row = candidates[p];
                    if (codes[row & mask] == code) out->push_back(row);
                  }
                });
            return;
          }
          const CompareOp op = op_;
          FilterStringChunked(
              col, candidates, stats,
              [&lit, op](const std::string& v) {
                switch (op) {
                  case CompareOp::kEq:
                    return v == lit;
                  case CompareOp::kNe:
                    return v != lit;
                  case CompareOp::kLt:
                    return v < lit;
                  case CompareOp::kLe:
                    return v <= lit;
                  case CompareOp::kGt:
                    return v > lit;
                  case CompareOp::kGe:
                    return v >= lit;
                }
                return false;
              },
              out);
          return;
        }
        break;
      case ValueType::kNull:
        break;
    }
    // Mixed type classes (string column vs numeric literal and vice
    // versa) keep the rank-ordering semantics of Value::operator<.
    Predicate::FilterInto(table, candidates, out, stats);
  }

  std::string ToString() const override {
    return column_ + " " + CompareOpSymbol(op_) + " " + literal_.ToString();
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += "cmp(";
    AppendCanonicalColumn(column_, out);
    *out += ',';
    *out += CompareOpSymbol(op_);
    *out += ',';
    AppendCanonicalValue(literal_, out);
    *out += ')';
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
  size_t index_ = 0;
  bool bound_ = false;
};

class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null() || lo_.is_null() || hi_.is_null()) return false;
    const bool ge_lo = lo_ < v || v == lo_;
    const bool le_hi = v < hi_ || v == hi_;
    return ge_lo && le_hi;
  }

  void FilterInto(const Table& table, const RowSet& candidates, RowSet* out,
                  FilterStats* stats) const override {
    if (lo_.is_null() || hi_.is_null()) return;  // never matches
    const Column& col = table.column(index_);
    if ((col.type() == ValueType::kInt64 ||
         col.type() == ValueType::kDouble) &&
        lo_.is_numeric() && hi_.is_numeric()) {
      const double lo = LiteralAsDouble(lo_);
      const double hi = LiteralAsDouble(hi_);
      auto in_range = [lo, hi](auto v) {
        const double d = static_cast<double>(v);
        return lo <= d && d <= hi;
      };
      FilterChunked(
          col, candidates, stats,
          [lo, hi](const ColumnChunk& c) { return ZoneForBetween(c, lo, hi); },
          [&](const ColumnChunk& c, size_t b, size_t e, uint32_t mask) {
            if (c.type() == ValueType::kInt64) {
              ScanChunkRun(c, c.int64_data(), candidates, b, e, mask,
                           in_range, out);
            } else {
              ScanChunkRun(c, c.double_data(), candidates, b, e, mask,
                           in_range, out);
            }
          },
          out);
      return;
    }
    if (col.type() == ValueType::kString &&
        lo_.type() == ValueType::kString &&
        hi_.type() == ValueType::kString) {
      const std::string& lo = lo_.AsString();
      const std::string& hi = hi_.AsString();
      FilterStringChunked(
          col, candidates, stats,
          [&lo, &hi](const std::string& v) { return lo <= v && v <= hi; },
          out);
      return;
    }
    Predicate::FilterInto(table, candidates, out, stats);
  }

  std::string ToString() const override {
    return column_ + " BETWEEN " + lo_.ToString() + " AND " + hi_.ToString();
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += "between(";
    AppendCanonicalColumn(column_, out);
    *out += ',';
    AppendCanonicalValue(lo_, out);
    *out += ',';
    AppendCanonicalValue(hi_, out);
    *out += ')';
  }

 private:
  std::string column_;
  Value lo_;
  Value hi_;
  size_t index_ = 0;
};

class InListPredicate final : public Predicate {
 public:
  InListPredicate(std::string column, std::vector<Value> values)
      : column_(std::move(column)), values_(std::move(values)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null()) return false;
    for (const Value& candidate : values_) {
      if (v == candidate) return true;
    }
    return false;
  }

  void FilterInto(const Table& table, const RowSet& candidates, RowSet* out,
                  FilterStats* stats) const override {
    const Column& col = table.column(index_);
    if (col.type() == ValueType::kInt64 || col.type() == ValueType::kDouble) {
      // NULL list elements never match and non-numeric elements cannot
      // equal a numeric cell (Value::operator== requires matching type
      // classes), so both drop out of the probe set.
      std::vector<double> lits;
      lits.reserve(values_.size());
      for (const Value& v : values_) {
        if (v.is_numeric()) lits.push_back(LiteralAsDouble(v));
      }
      // Linear probe over the (small) literal list: `==` comparisons
      // exactly mirror Matches, including NaN cells never matching.
      auto contains = [&lits](auto v) {
        const double d = static_cast<double>(v);
        for (const double lit : lits) {
          if (d == lit) return true;
        }
        return false;
      };
      FilterChunked(
          col, candidates, stats,
          [&lits](const ColumnChunk& c) {
            // Equality can only fire inside the chunk range; a list with
            // no literal in [min, max] cannot match any cell (NaN cells
            // never compare equal either).
            if (!c.HasRange()) return ZoneDecision::kSkip;
            for (const double lit : lits) {
              if (lit >= c.min() && lit <= c.max()) {
                return ZoneDecision::kScan;
              }
            }
            return ZoneDecision::kSkip;
          },
          [&](const ColumnChunk& c, size_t b, size_t e, uint32_t mask) {
            if (c.type() == ValueType::kInt64) {
              ScanChunkRun(c, c.int64_data(), candidates, b, e, mask,
                           contains, out);
            } else {
              ScanChunkRun(c, c.double_data(), candidates, b, e, mask,
                           contains, out);
            }
          },
          out);
      return;
    }
    if (col.type() == ValueType::kString) {
      std::vector<std::string> lits;
      lits.reserve(values_.size());
      for (const Value& v : values_) {
        if (v.type() == ValueType::kString) lits.push_back(v.AsString());
      }
      std::sort(lits.begin(), lits.end());
      lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
      // An IN list none of whose literals appear in the chunk dictionary
      // skips the chunk inside FilterStringChunked (empty match table).
      FilterStringChunked(
          col, candidates, stats,
          [&lits](const std::string& v) {
            return std::binary_search(lits.begin(), lits.end(), v);
          },
          out);
      return;
    }
    Predicate::FilterInto(table, candidates, out, stats);
  }

  std::string ToString() const override {
    std::string out = column_ + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    return out + ")";
  }

  void AppendCanonicalKey(std::string* out) const override {
    // IN is an OR of equalities: element order is irrelevant and
    // duplicates are idempotent, so the rendered literals sort and dedup.
    std::vector<std::string> lits;
    lits.reserve(values_.size());
    for (const Value& v : values_) {
      std::string lit;
      AppendCanonicalValue(v, &lit);
      lits.push_back(std::move(lit));
    }
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    *out += "in(";
    AppendCanonicalColumn(column_, out);
    for (const std::string& lit : lits) {
      *out += ',';
      *out += lit;
    }
    *out += ')';
  }

 private:
  std::string column_;
  std::vector<Value> values_;
  size_t index_ = 0;
};

class IsNullPredicate final : public Predicate {
 public:
  IsNullPredicate(std::string column, bool negate)
      : column_(std::move(column)), negate_(negate) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    return table.column(index_).IsNull(row) != negate_;
  }

  void FilterInto(const Table& table, const RowSet& candidates, RowSet* out,
                  FilterStats* stats) const override {
    const Column& col = table.column(index_);
    const bool want_valid = negate_;
    const uint32_t mask = col.chunk_mask();
    ForEachChunkRun(
        candidates, 0, candidates.size(), col.chunk_shift(),
        [&](uint32_t c, size_t begin, size_t end) {
          const ColumnChunk& chunk = col.chunk(c);
          // The null count IS the zone map here: an all-valid chunk
          // decides both variants outright, as does an all-null one.
          if (chunk.null_count() == 0) {
            if (want_valid) {
              AcceptRun(candidates, begin, end, out);
            } else if (stats != nullptr) {
              ++stats->chunks_skipped;
            }
            return;
          }
          if (chunk.null_count() == chunk.size()) {
            if (!want_valid) {
              AcceptRun(candidates, begin, end, out);
            } else if (stats != nullptr) {
              ++stats->chunks_skipped;
            }
            return;
          }
          const ValidityBitmap& valid = chunk.validity();
          for (size_t p = begin; p < end; ++p) {
            const uint32_t row = candidates[p];
            if (valid.Get(row & mask) == want_valid) out->push_back(row);
          }
        });
  }

  std::string ToString() const override {
    return column_ + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += negate_ ? "notnull(" : "isnull(";
    AppendCanonicalColumn(column_, out);
    *out += ')';
  }

 private:
  std::string column_;
  bool negate_;
  size_t index_ = 0;
};

class BinaryLogicalPredicate final : public Predicate {
 public:
  enum class Kind { kAnd, kOr };

  BinaryLogicalPredicate(Kind kind, PredicatePtr lhs, PredicatePtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_RETURN_IF_ERROR(lhs_->Bind(schema));
    return rhs_->Bind(schema);
  }

  bool Matches(const Table& table, size_t row) const override {
    if (kind_ == Kind::kAnd) {
      return lhs_->Matches(table, row) && rhs_->Matches(table, row);
    }
    return lhs_->Matches(table, row) || rhs_->Matches(table, row);
  }

  void FilterInto(const Table& table, const RowSet& candidates, RowSet* out,
                  FilterStats* stats) const override {
    if (kind_ == Kind::kAnd) {
      // Selection-vector intersection by cascade: the rhs kernel only
      // scans rows the lhs kept.
      RowSet kept;
      lhs_->FilterInto(table, candidates, &kept, stats);
      rhs_->FilterInto(table, kept, out, stats);
      return;
    }
    // OR: union of two ascending selections.  rhs scans only the rows
    // lhs rejected, so each candidate is evaluated at most twice and the
    // merge is a linear sorted union.
    RowSet left;
    lhs_->FilterInto(table, candidates, &left, stats);
    RowSet rest;
    DifferenceInto(candidates, left, &rest);
    RowSet right;
    rhs_->FilterInto(table, rest, &right, stats);
    UnionInto(left, right, out);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() +
           (kind_ == Kind::kAnd ? " AND " : " OR ") + rhs_->ToString() + ")";
  }

  void AppendCanonicalKey(std::string* out) const override {
    // Flatten the same-kind subtree (associativity), sort the operand
    // keys (commutativity), and dedup (idempotence — Matches combines
    // children with plain && / ||, so a repeated operand cannot change
    // the outcome).  A chain collapsing to one distinct operand IS that
    // operand: `p AND p` keys like `p`.
    std::vector<std::string> operands;
    CollectOperands(*lhs_, kind_, &operands);
    CollectOperands(*rhs_, kind_, &operands);
    std::sort(operands.begin(), operands.end());
    operands.erase(std::unique(operands.begin(), operands.end()),
                   operands.end());
    if (operands.size() == 1) {
      *out += operands[0];
      return;
    }
    *out += kind_ == Kind::kAnd ? "and(" : "or(";
    for (size_t i = 0; i < operands.size(); ++i) {
      if (i > 0) *out += ';';
      *out += operands[i];
    }
    *out += ')';
  }

 private:
  static void CollectOperands(const Predicate& node, Kind kind,
                              std::vector<std::string>* out) {
    const auto* same = dynamic_cast<const BinaryLogicalPredicate*>(&node);
    if (same != nullptr && same->kind_ == kind) {
      CollectOperands(*same->lhs_, kind, out);
      CollectOperands(*same->rhs_, kind, out);
      return;
    }
    std::string key;
    node.AppendCanonicalKey(&key);
    out->push_back(std::move(key));
  }

  Kind kind_;
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}

  common::Status Bind(const Schema& schema) override {
    return inner_->Bind(schema);
  }

  bool Matches(const Table& table, size_t row) const override {
    return !inner_->Matches(table, row);
  }

  void FilterInto(const Table& table, const RowSet& candidates, RowSet* out,
                  FilterStats* stats) const override {
    // Sorted difference: candidates minus the inner selection.  Keeps
    // the two-valued NULL semantics (NOT of a false NULL-comparison is
    // true) because rows the inner kernel skipped stay in the result.
    RowSet inner;
    inner_->FilterInto(table, candidates, &inner, stats);
    DifferenceInto(candidates, inner, out);
  }

  std::string ToString() const override {
    return "NOT (" + inner_->ToString() + ")";
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += "not(";
    inner_->AppendCanonicalKey(out);
    *out += ')';
  }

 private:
  PredicatePtr inner_;
};

class TruePredicate final : public Predicate {
 public:
  common::Status Bind(const Schema&) override { return common::Status::OK(); }
  bool Matches(const Table&, size_t) const override { return true; }
  void FilterInto(const Table&, const RowSet& candidates, RowSet* out,
                  FilterStats*) const override {
    out->insert(out->end(), candidates.begin(), candidates.end());
  }
  std::string ToString() const override { return "TRUE"; }
  void AppendCanonicalKey(std::string* out) const override { *out += "true"; }
};

}  // namespace

PredicatePtr MakeComparison(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparisonPredicate>(std::move(column), op,
                                               std::move(literal));
}

PredicatePtr MakeBetween(std::string column, Value lo, Value hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}

PredicatePtr MakeInList(std::string column, std::vector<Value> values) {
  return std::make_unique<InListPredicate>(std::move(column),
                                           std::move(values));
}

PredicatePtr MakeIsNull(std::string column, bool negate) {
  return std::make_unique<IsNullPredicate>(std::move(column), negate);
}

PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_unique<BinaryLogicalPredicate>(
      BinaryLogicalPredicate::Kind::kAnd, std::move(lhs), std::move(rhs));
}

PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_unique<BinaryLogicalPredicate>(
      BinaryLogicalPredicate::Kind::kOr, std::move(lhs), std::move(rhs));
}

PredicatePtr MakeNot(PredicatePtr inner) {
  return std::make_unique<NotPredicate>(std::move(inner));
}

PredicatePtr MakeTrue() { return std::make_unique<TruePredicate>(); }

std::string CanonicalPredicateKey(const Predicate& pred) {
  std::string key;
  pred.AppendCanonicalKey(&key);
  return key;
}

common::Result<RowSet> Filter(const Table& table, Predicate* pred,
                              const RowSet* base, FilterStats* stats) {
  MUVE_RETURN_IF_ERROR(pred->Bind(table.schema()));
  RowSet out;
  if (base != nullptr) {
    out.reserve(base->size());
    pred->FilterInto(table, *base, &out, stats);
    if (stats != nullptr) {
      stats->rows_in += static_cast<int64_t>(base->size());
      stats->rows_out += static_cast<int64_t>(out.size());
    }
    return out;
  }
  const RowSet all = AllRows(table.num_rows());
  out.reserve(all.size());
  pred->FilterInto(table, all, &out, stats);
  if (stats != nullptr) {
    stats->rows_in += static_cast<int64_t>(all.size());
    stats->rows_out += static_cast<int64_t>(out.size());
  }
  return out;
}

}  // namespace muve::storage
