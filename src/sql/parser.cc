#include "sql/parser.h"

#include <utility>

#include "common/string_util.h"
#include "sql/lexer.h"

namespace muve::sql {

namespace {

using common::Result;
using common::Status;
using storage::CompareOp;
using storage::PredicatePtr;
using storage::Value;

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<Statement> ParseStatement() {
    Statement stmt;
    if (PeekKeyword("SELECT")) {
      stmt.kind = Statement::Kind::kSelect;
      MUVE_ASSIGN_OR_RETURN(stmt.select, ParseSelectStatement());
    } else if (PeekKeyword("RECOMMEND")) {
      stmt.kind = Statement::Kind::kRecommend;
      MUVE_ASSIGN_OR_RETURN(stmt.recommend, ParseRecommendStatement());
    } else if (PeekKeyword("CREATE")) {
      stmt.kind = Statement::Kind::kCreateTable;
      MUVE_ASSIGN_OR_RETURN(stmt.create_table, ParseCreateTableStatement());
    } else if (PeekKeyword("INSERT")) {
      stmt.kind = Statement::Kind::kInsert;
      MUVE_ASSIGN_OR_RETURN(stmt.insert, ParseInsertStatement());
    } else if (PeekKeyword("LOAD")) {
      stmt.kind = Statement::Kind::kLoadCsv;
      MUVE_ASSIGN_OR_RETURN(stmt.load_csv, ParseLoadCsvStatement());
    } else {
      return Error(
          "expected SELECT, RECOMMEND, CREATE, INSERT, or LOAD");
    }
    if (Peek().type == TokenType::kSemicolon) Advance();
    if (Peek().type != TokenType::kEnd) {
      return Error("unexpected trailing input");
    }
    return stmt;
  }

 private:
  const Token& Peek(size_t ahead = 0) const {
    const size_t i = pos_ + ahead;
    return i < tokens_.size() ? tokens_[i] : tokens_.back();
  }
  const Token& Advance() { return tokens_[pos_++]; }

  bool PeekKeyword(const char* kw, size_t ahead = 0) const {
    return IsKeyword(Peek(ahead), kw);
  }

  bool ConsumeKeyword(const char* kw) {
    if (PeekKeyword(kw)) {
      Advance();
      return true;
    }
    return false;
  }

  Status ExpectKeyword(const char* kw) {
    if (!ConsumeKeyword(kw)) {
      return Error("expected " + std::string(kw) + ", got '" +
                   Peek().ToString() + "'");
    }
    return Status::OK();
  }

  Status Expect(TokenType type) {
    if (Peek().type != type) {
      return Error(std::string("expected ") + TokenTypeName(type) +
                   ", got '" + Peek().ToString() + "'");
    }
    Advance();
    return Status::OK();
  }

  Status Error(const std::string& message) const {
    return Status::ParseError(message + " (at position " +
                              std::to_string(Peek().position) + ")");
  }

  Result<std::string> ExpectIdentifier() {
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected identifier, got '" + Peek().ToString() + "'");
    }
    return Advance().text;
  }

  Result<int64_t> ExpectInteger() {
    if (Peek().type != TokenType::kInteger) {
      return Error("expected integer, got '" + Peek().ToString() + "'");
    }
    return Advance().int_value;
  }

  Result<double> ExpectNumber() {
    if (Peek().type == TokenType::kInteger) {
      return static_cast<double>(Advance().int_value);
    }
    if (Peek().type == TokenType::kFloat) {
      return Advance().float_value;
    }
    return Error("expected number, got '" + Peek().ToString() + "'");
  }

  Result<Value> ParseLiteral() {
    const Token& tok = Peek();
    switch (tok.type) {
      case TokenType::kInteger:
        return Value(Advance().int_value);
      case TokenType::kFloat:
        return Value(Advance().float_value);
      case TokenType::kString:
        return Value(Advance().text);
      case TokenType::kKeyword:
        if (tok.text == "NULL") {
          Advance();
          return Value::Null();
        }
        [[fallthrough]];
      default:
        return Error("expected literal, got '" + tok.ToString() + "'");
    }
  }

  // ---- SELECT ----

  Result<SelectStatement> ParseSelectStatement() {
    MUVE_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SelectStatement stmt;
    MUVE_ASSIGN_OR_RETURN(stmt.items, ParseSelectList());
    MUVE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MUVE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      MUVE_ASSIGN_OR_RETURN(stmt.where, ParseOrExpr());
    }
    if (ConsumeKeyword("GROUP")) {
      MUVE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      MUVE_ASSIGN_OR_RETURN(std::string dim, ExpectIdentifier());
      stmt.group_by = std::move(dim);
      if (ConsumeKeyword("NUMBER")) {
        MUVE_RETURN_IF_ERROR(ExpectKeyword("OF"));
        MUVE_RETURN_IF_ERROR(ExpectKeyword("BINS"));
        MUVE_ASSIGN_OR_RETURN(const int64_t bins, ExpectInteger());
        if (bins < 1) return Error("NUMBER OF BINS must be >= 1");
        stmt.num_bins = static_cast<int>(bins);
      }
      if (ConsumeKeyword("HAVING")) {
        MUVE_ASSIGN_OR_RETURN(stmt.having, ParseOrExpr());
      }
    }
    if (ConsumeKeyword("ORDER")) {
      MUVE_RETURN_IF_ERROR(ExpectKeyword("BY"));
      OrderBy ob;
      MUVE_ASSIGN_OR_RETURN(ob.column, ExpectIdentifier());
      if (ConsumeKeyword("DESC")) {
        ob.descending = true;
      } else {
        ConsumeKeyword("ASC");
      }
      stmt.order_by = std::move(ob);
    }
    if (ConsumeKeyword("LIMIT")) {
      MUVE_ASSIGN_OR_RETURN(const int64_t lim, ExpectInteger());
      if (lim < 0) return Error("LIMIT must be non-negative");
      stmt.limit = lim;
    }
    return stmt;
  }

  Result<std::vector<SelectItem>> ParseSelectList() {
    std::vector<SelectItem> items;
    while (true) {
      MUVE_ASSIGN_OR_RETURN(SelectItem item, ParseSelectItem());
      items.push_back(std::move(item));
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return items;
  }

  Result<SelectItem> ParseSelectItem() {
    SelectItem item;
    if (Peek().type == TokenType::kStar) {
      Advance();
      item.kind = SelectItem::Kind::kStar;
      return item;
    }
    if (Peek().type != TokenType::kIdentifier) {
      return Error("expected column or aggregate, got '" + Peek().ToString() +
                   "'");
    }
    // `ident (` means an aggregate call when ident names a function.
    if (Peek(1).type == TokenType::kLParen) {
      const std::string name = Advance().text;
      const auto func = storage::AggregateFromName(name);
      if (!func.ok()) {
        return Error("unknown aggregate function '" + name + "'");
      }
      Advance();  // (
      item.kind = SelectItem::Kind::kAggregate;
      item.function = *func;
      if (Peek().type == TokenType::kStar) {
        Advance();
        if (item.function != storage::AggregateFunction::kCount) {
          return Error("only COUNT accepts '*'");
        }
        item.count_star = true;
      } else {
        MUVE_ASSIGN_OR_RETURN(item.column, ExpectIdentifier());
      }
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    } else {
      item.kind = SelectItem::Kind::kColumn;
      item.column = Advance().text;
    }
    if (ConsumeKeyword("AS")) {
      MUVE_ASSIGN_OR_RETURN(item.alias, ExpectIdentifier());
    }
    return item;
  }

  // ---- WHERE expressions ----

  Result<PredicatePtr> ParseOrExpr() {
    MUVE_ASSIGN_OR_RETURN(PredicatePtr lhs, ParseAndExpr());
    while (ConsumeKeyword("OR")) {
      MUVE_ASSIGN_OR_RETURN(PredicatePtr rhs, ParseAndExpr());
      lhs = storage::MakeOr(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<PredicatePtr> ParseAndExpr() {
    MUVE_ASSIGN_OR_RETURN(PredicatePtr lhs, ParseNotExpr());
    while (ConsumeKeyword("AND")) {
      MUVE_ASSIGN_OR_RETURN(PredicatePtr rhs, ParseNotExpr());
      lhs = storage::MakeAnd(std::move(lhs), std::move(rhs));
    }
    return lhs;
  }

  Result<PredicatePtr> ParseNotExpr() {
    if (ConsumeKeyword("NOT")) {
      MUVE_ASSIGN_OR_RETURN(PredicatePtr inner, ParseNotExpr());
      return storage::MakeNot(std::move(inner));
    }
    return ParsePrimaryExpr();
  }

  Result<PredicatePtr> ParsePrimaryExpr() {
    if (Peek().type == TokenType::kLParen) {
      Advance();
      MUVE_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOrExpr());
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      return inner;
    }
    if (PeekKeyword("TRUE")) {
      Advance();
      return storage::MakeTrue();
    }
    if (PeekKeyword("FALSE")) {
      Advance();
      return storage::MakeNot(storage::MakeTrue());
    }
    MUVE_ASSIGN_OR_RETURN(std::string column, ExpectIdentifier());
    if (ConsumeKeyword("IS")) {
      const bool negate = ConsumeKeyword("NOT");
      MUVE_RETURN_IF_ERROR(ExpectKeyword("NULL"));
      return storage::MakeIsNull(std::move(column), negate);
    }
    if (PeekKeyword("IN") ||
        (PeekKeyword("NOT") && PeekKeyword("IN", 1))) {
      const bool negate = ConsumeKeyword("NOT");
      MUVE_RETURN_IF_ERROR(ExpectKeyword("IN"));
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      std::vector<Value> values;
      while (true) {
        MUVE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        values.push_back(std::move(v));
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      PredicatePtr in_list =
          storage::MakeInList(std::move(column), std::move(values));
      if (negate) return storage::MakeNot(std::move(in_list));
      return in_list;
    }
    if (ConsumeKeyword("BETWEEN")) {
      MUVE_ASSIGN_OR_RETURN(Value lo, ParseLiteral());
      MUVE_RETURN_IF_ERROR(ExpectKeyword("AND"));
      MUVE_ASSIGN_OR_RETURN(Value hi, ParseLiteral());
      return storage::MakeBetween(std::move(column), std::move(lo),
                                  std::move(hi));
    }
    CompareOp op;
    switch (Peek().type) {
      case TokenType::kEq:
        op = CompareOp::kEq;
        break;
      case TokenType::kNe:
        op = CompareOp::kNe;
        break;
      case TokenType::kLt:
        op = CompareOp::kLt;
        break;
      case TokenType::kLe:
        op = CompareOp::kLe;
        break;
      case TokenType::kGt:
        op = CompareOp::kGt;
        break;
      case TokenType::kGe:
        op = CompareOp::kGe;
        break;
      default:
        return Error("expected comparison operator, got '" +
                     Peek().ToString() + "'");
    }
    Advance();
    MUVE_ASSIGN_OR_RETURN(Value literal, ParseLiteral());
    return storage::MakeComparison(std::move(column), op, std::move(literal));
  }

  // ---- DDL / DML ----

  Result<storage::ValueType> ParseColumnType() {
    MUVE_ASSIGN_OR_RETURN(const std::string name, ExpectIdentifier());
    const std::string upper = common::ToUpper(name);
    if (upper == "INT" || upper == "INTEGER" || upper == "BIGINT") {
      return storage::ValueType::kInt64;
    }
    if (upper == "DOUBLE" || upper == "FLOAT" || upper == "REAL") {
      return storage::ValueType::kDouble;
    }
    if (upper == "TEXT" || upper == "STRING" || upper == "VARCHAR") {
      return storage::ValueType::kString;
    }
    return Error("unknown column type '" + name + "'");
  }

  Result<CreateTableStatement> ParseCreateTableStatement() {
    MUVE_RETURN_IF_ERROR(ExpectKeyword("CREATE"));
    MUVE_RETURN_IF_ERROR(ExpectKeyword("TABLE"));
    CreateTableStatement stmt;
    MUVE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
    MUVE_RETURN_IF_ERROR(Expect(TokenType::kLParen));
    while (true) {
      storage::Field field;
      MUVE_ASSIGN_OR_RETURN(field.name, ExpectIdentifier());
      MUVE_ASSIGN_OR_RETURN(field.type, ParseColumnType());
      if (Peek().type == TokenType::kIdentifier) {
        const std::string role = common::ToUpper(Peek().text);
        if (role == "DIMENSION") {
          field.role = storage::FieldRole::kDimension;
          Advance();
        } else if (role == "MEASURE") {
          field.role = storage::FieldRole::kMeasure;
          Advance();
        } else if (role == "CATEGORICAL") {
          field.role = storage::FieldRole::kCategoricalDimension;
          Advance();
        } else {
          return Error("unknown column role '" + Peek().text + "'");
        }
      }
      if (const common::Status st = stmt.schema.AddField(std::move(field));
          !st.ok()) {
        return Error(st.message());
      }
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    MUVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    return stmt;
  }

  Result<InsertStatement> ParseInsertStatement() {
    MUVE_RETURN_IF_ERROR(ExpectKeyword("INSERT"));
    MUVE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    InsertStatement stmt;
    MUVE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
    MUVE_RETURN_IF_ERROR(ExpectKeyword("VALUES"));
    while (true) {
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      std::vector<Value> row;
      while (true) {
        MUVE_ASSIGN_OR_RETURN(Value v, ParseLiteral());
        row.push_back(std::move(v));
        if (Peek().type == TokenType::kComma) {
          Advance();
          continue;
        }
        break;
      }
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
      stmt.rows.push_back(std::move(row));
      if (Peek().type == TokenType::kComma) {
        Advance();
        continue;
      }
      break;
    }
    return stmt;
  }

  Result<LoadCsvStatement> ParseLoadCsvStatement() {
    MUVE_RETURN_IF_ERROR(ExpectKeyword("LOAD"));
    MUVE_RETURN_IF_ERROR(ExpectKeyword("CSV"));
    LoadCsvStatement stmt;
    if (Peek().type != TokenType::kString) {
      return Error("expected a quoted CSV path");
    }
    stmt.path = Advance().text;
    MUVE_RETURN_IF_ERROR(ExpectKeyword("INTO"));
    MUVE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
    return stmt;
  }

  // ---- RECOMMEND ----

  Result<RecommendStatement> ParseRecommendStatement() {
    MUVE_RETURN_IF_ERROR(ExpectKeyword("RECOMMEND"));
    RecommendStatement stmt;
    if (ConsumeKeyword("TOP")) {
      MUVE_ASSIGN_OR_RETURN(const int64_t k, ExpectInteger());
      if (k < 1) return Error("TOP k must be >= 1");
      stmt.top_k = static_cast<int>(k);
    }
    MUVE_RETURN_IF_ERROR(ExpectKeyword("VIEWS"));
    MUVE_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    MUVE_ASSIGN_OR_RETURN(stmt.table_name, ExpectIdentifier());
    if (ConsumeKeyword("WHERE")) {
      MUVE_ASSIGN_OR_RETURN(stmt.where, ParseOrExpr());
    }
    if (ConsumeKeyword("USING")) {
      MUVE_ASSIGN_OR_RETURN(stmt.scheme, ExpectIdentifier());
    }
    if (ConsumeKeyword("WEIGHTS")) {
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kLParen));
      MUVE_ASSIGN_OR_RETURN(stmt.alpha_d, ExpectNumber());
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kComma));
      MUVE_ASSIGN_OR_RETURN(stmt.alpha_a, ExpectNumber());
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kComma));
      MUVE_ASSIGN_OR_RETURN(stmt.alpha_s, ExpectNumber());
      MUVE_RETURN_IF_ERROR(Expect(TokenType::kRParen));
    }
    if (ConsumeKeyword("DISTANCE")) {
      MUVE_ASSIGN_OR_RETURN(stmt.distance, ExpectIdentifier());
    }
    return stmt;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

common::Result<Statement> Parse(const std::string& sql) {
  MUVE_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser parser(std::move(tokens));
  return parser.ParseStatement();
}

common::Result<SelectStatement> ParseSelect(const std::string& sql) {
  MUVE_ASSIGN_OR_RETURN(Statement stmt, Parse(sql));
  if (stmt.kind != Statement::Kind::kSelect) {
    return common::Status::InvalidArgument("statement is not a SELECT");
  }
  return std::move(stmt.select);
}

}  // namespace muve::sql
