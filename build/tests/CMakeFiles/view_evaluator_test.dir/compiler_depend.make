# Empty compiler generated dependencies file for view_evaluator_test.
# This may be replaced when dependencies are built.
