file(REMOVE_RECURSE
  "CMakeFiles/recommend_sql_test.dir/core/recommend_sql_test.cc.o"
  "CMakeFiles/recommend_sql_test.dir/core/recommend_sql_test.cc.o.d"
  "recommend_sql_test"
  "recommend_sql_test.pdb"
  "recommend_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/recommend_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
