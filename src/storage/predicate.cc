#include "storage/predicate.h"

#include <algorithm>
#include <cstdio>
#include <utility>

#include "storage/validity_bitmap.h"

namespace muve::storage {

void Predicate::FilterInto(const Table& table, const RowSet& candidates,
                           RowSet* out) const {
  // Generic fallback: per-row virtual Matches.  Leaf nodes override with
  // typed kernels; this path remains for mixed-type comparisons.
  for (const uint32_t row : candidates) {
    if (Matches(table, row)) out->push_back(row);
  }
}

namespace {

// Tight typed scan: one comparator instantiation per CompareOp, null-skip
// hoisted to a whole-column AllValid check (the common case — the MuVE
// datasets carry no NULLs on predicate columns — runs a branch-per-row-
// free loop over the raw array).
template <typename T, typename Cmp>
void ScanTyped(const ValidityBitmap& valid, const T* data,
               const RowSet& candidates, Cmp cmp, RowSet* out) {
  if (valid.AllValid()) {
    for (const uint32_t row : candidates) {
      if (cmp(data[row])) out->push_back(row);
    }
    return;
  }
  for (const uint32_t row : candidates) {
    if (valid.Get(row) && cmp(data[row])) out->push_back(row);
  }
}

// Numeric comparison kernel.  Values compare after coercion to double,
// exactly like Value::operator== / operator< (which also coerce int64
// through double), so kernel results match Matches bit-for-bit.
template <typename T>
void ScanCompareNumeric(const ValidityBitmap& valid, const T* data,
                        const RowSet& candidates, CompareOp op, double lit,
                        RowSet* out) {
  switch (op) {
    case CompareOp::kEq:
      ScanTyped(valid, data, candidates,
                [lit](T v) { return static_cast<double>(v) == lit; }, out);
      return;
    case CompareOp::kNe:
      ScanTyped(valid, data, candidates,
                [lit](T v) { return static_cast<double>(v) != lit; }, out);
      return;
    case CompareOp::kLt:
      ScanTyped(valid, data, candidates,
                [lit](T v) { return static_cast<double>(v) < lit; }, out);
      return;
    case CompareOp::kLe:
      ScanTyped(valid, data, candidates,
                [lit](T v) { return static_cast<double>(v) <= lit; }, out);
      return;
    case CompareOp::kGt:
      ScanTyped(valid, data, candidates,
                [lit](T v) { return static_cast<double>(v) > lit; }, out);
      return;
    case CompareOp::kGe:
      ScanTyped(valid, data, candidates,
                [lit](T v) { return static_cast<double>(v) >= lit; }, out);
      return;
  }
}

void ScanCompareString(const ValidityBitmap& valid, const std::string* data,
                       const RowSet& candidates, CompareOp op,
                       const std::string& lit, RowSet* out) {
  switch (op) {
    case CompareOp::kEq:
      ScanTyped(valid, data, candidates,
                [&lit](const std::string& v) { return v == lit; }, out);
      return;
    case CompareOp::kNe:
      ScanTyped(valid, data, candidates,
                [&lit](const std::string& v) { return v != lit; }, out);
      return;
    case CompareOp::kLt:
      ScanTyped(valid, data, candidates,
                [&lit](const std::string& v) { return v < lit; }, out);
      return;
    case CompareOp::kLe:
      ScanTyped(valid, data, candidates,
                [&lit](const std::string& v) { return v <= lit; }, out);
      return;
    case CompareOp::kGt:
      ScanTyped(valid, data, candidates,
                [&lit](const std::string& v) { return v > lit; }, out);
      return;
    case CompareOp::kGe:
      ScanTyped(valid, data, candidates,
                [&lit](const std::string& v) { return v >= lit; }, out);
      return;
  }
}

// Numeric literal as double under the same coercion Value uses.
double LiteralAsDouble(const Value& v) {
  return v.type() == ValueType::kInt64 ? static_cast<double>(v.AsInt64())
                                       : v.AsDoubleExact();
}

// Canonical literal rendering for cache keys.  Numerics render through a
// 17-significant-digit round-trip double form whether typed int64 or
// double — Value comparisons coerce int64 through double, so `10` and
// `10.0` are one literal semantically and must share a key.  Strings are
// length-prefixed so literal content cannot forge the key grammar's
// separators.
void AppendCanonicalValue(const Value& v, std::string* out) {
  switch (v.type()) {
    case ValueType::kNull:
      *out += "null";
      return;
    case ValueType::kInt64:
    case ValueType::kDouble: {
      char buf[40];
      std::snprintf(buf, sizeof(buf), "%.17g", LiteralAsDouble(v));
      *out += "n:";
      *out += buf;
      return;
    }
    case ValueType::kString: {
      const std::string& s = v.AsString();
      *out += 's';
      *out += std::to_string(s.size());
      *out += ':';
      *out += s;
      return;
    }
  }
}

void AppendCanonicalColumn(const std::string& column, std::string* out) {
  *out += 'c';
  *out += std::to_string(column.size());
  *out += ':';
  *out += column;
}

// Sorted union of two ascending row sets into `out` (appended).
void UnionInto(const RowSet& a, const RowSet& b, RowSet* out) {
  size_t i = 0;
  size_t j = 0;
  while (i < a.size() && j < b.size()) {
    if (a[i] < b[j]) {
      out->push_back(a[i++]);
    } else if (b[j] < a[i]) {
      out->push_back(b[j++]);
    } else {
      out->push_back(a[i]);
      ++i;
      ++j;
    }
  }
  out->insert(out->end(), a.begin() + static_cast<ptrdiff_t>(i), a.end());
  out->insert(out->end(), b.begin() + static_cast<ptrdiff_t>(j), b.end());
}

// Rows of `candidates` not present in `exclude` (both ascending,
// `exclude` a subset of `candidates`), appended onto `out`.
void DifferenceInto(const RowSet& candidates, const RowSet& exclude,
                    RowSet* out) {
  size_t j = 0;
  for (const uint32_t row : candidates) {
    if (j < exclude.size() && exclude[j] == row) {
      ++j;
      continue;
    }
    out->push_back(row);
  }
}

}  // namespace

const char* CompareOpSymbol(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "<>";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

namespace {

class ComparisonPredicate final : public Predicate {
 public:
  ComparisonPredicate(std::string column, CompareOp op, Value literal)
      : column_(std::move(column)), op_(op), literal_(std::move(literal)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    bound_ = true;
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null() || literal_.is_null()) return false;
    switch (op_) {
      case CompareOp::kEq:
        return v == literal_;
      case CompareOp::kNe:
        return v != literal_;
      case CompareOp::kLt:
        return v < literal_;
      case CompareOp::kLe:
        return v < literal_ || v == literal_;
      case CompareOp::kGt:
        return literal_ < v;
      case CompareOp::kGe:
        return literal_ < v || v == literal_;
    }
    return false;
  }

  void FilterInto(const Table& table, const RowSet& candidates,
                  RowSet* out) const override {
    if (literal_.is_null()) return;  // comparisons with NULL never match
    const Column& col = table.column(index_);
    switch (col.type()) {
      case ValueType::kInt64:
        if (literal_.is_numeric()) {
          ScanCompareNumeric(col.validity(), col.int64_data(), candidates,
                             op_, LiteralAsDouble(literal_), out);
          return;
        }
        break;
      case ValueType::kDouble:
        if (literal_.is_numeric()) {
          ScanCompareNumeric(col.validity(), col.double_data(), candidates,
                             op_, LiteralAsDouble(literal_), out);
          return;
        }
        break;
      case ValueType::kString:
        if (literal_.type() == ValueType::kString) {
          ScanCompareString(col.validity(), col.string_data(), candidates,
                            op_, literal_.AsString(), out);
          return;
        }
        break;
      case ValueType::kNull:
        break;
    }
    // Mixed type classes (string column vs numeric literal and vice
    // versa) keep the rank-ordering semantics of Value::operator<.
    Predicate::FilterInto(table, candidates, out);
  }

  std::string ToString() const override {
    return column_ + " " + CompareOpSymbol(op_) + " " + literal_.ToString();
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += "cmp(";
    AppendCanonicalColumn(column_, out);
    *out += ',';
    *out += CompareOpSymbol(op_);
    *out += ',';
    AppendCanonicalValue(literal_, out);
    *out += ')';
  }

 private:
  std::string column_;
  CompareOp op_;
  Value literal_;
  size_t index_ = 0;
  bool bound_ = false;
};

class BetweenPredicate final : public Predicate {
 public:
  BetweenPredicate(std::string column, Value lo, Value hi)
      : column_(std::move(column)), lo_(std::move(lo)), hi_(std::move(hi)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null() || lo_.is_null() || hi_.is_null()) return false;
    const bool ge_lo = lo_ < v || v == lo_;
    const bool le_hi = v < hi_ || v == hi_;
    return ge_lo && le_hi;
  }

  void FilterInto(const Table& table, const RowSet& candidates,
                  RowSet* out) const override {
    if (lo_.is_null() || hi_.is_null()) return;  // never matches
    const Column& col = table.column(index_);
    if ((col.type() == ValueType::kInt64 ||
         col.type() == ValueType::kDouble) &&
        lo_.is_numeric() && hi_.is_numeric()) {
      const double lo = LiteralAsDouble(lo_);
      const double hi = LiteralAsDouble(hi_);
      auto in_range = [lo, hi](auto v) {
        const double d = static_cast<double>(v);
        return lo <= d && d <= hi;
      };
      if (col.type() == ValueType::kInt64) {
        ScanTyped(col.validity(), col.int64_data(), candidates, in_range,
                  out);
      } else {
        ScanTyped(col.validity(), col.double_data(), candidates, in_range,
                  out);
      }
      return;
    }
    if (col.type() == ValueType::kString &&
        lo_.type() == ValueType::kString &&
        hi_.type() == ValueType::kString) {
      const std::string& lo = lo_.AsString();
      const std::string& hi = hi_.AsString();
      ScanTyped(col.validity(), col.string_data(), candidates,
                [&lo, &hi](const std::string& v) {
                  return lo <= v && v <= hi;
                },
                out);
      return;
    }
    Predicate::FilterInto(table, candidates, out);
  }

  std::string ToString() const override {
    return column_ + " BETWEEN " + lo_.ToString() + " AND " + hi_.ToString();
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += "between(";
    AppendCanonicalColumn(column_, out);
    *out += ',';
    AppendCanonicalValue(lo_, out);
    *out += ',';
    AppendCanonicalValue(hi_, out);
    *out += ')';
  }

 private:
  std::string column_;
  Value lo_;
  Value hi_;
  size_t index_ = 0;
};

class InListPredicate final : public Predicate {
 public:
  InListPredicate(std::string column, std::vector<Value> values)
      : column_(std::move(column)), values_(std::move(values)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    const Value v = table.column(index_).ValueAt(row);
    if (v.is_null()) return false;
    for (const Value& candidate : values_) {
      if (v == candidate) return true;
    }
    return false;
  }

  void FilterInto(const Table& table, const RowSet& candidates,
                  RowSet* out) const override {
    const Column& col = table.column(index_);
    if (col.type() == ValueType::kInt64 || col.type() == ValueType::kDouble) {
      // NULL list elements never match and non-numeric elements cannot
      // equal a numeric cell (Value::operator== requires matching type
      // classes), so both drop out of the probe set.
      std::vector<double> lits;
      lits.reserve(values_.size());
      for (const Value& v : values_) {
        if (v.is_numeric()) lits.push_back(LiteralAsDouble(v));
      }
      // Linear probe over the (small) literal list: `==` comparisons
      // exactly mirror Matches, including NaN cells never matching.
      auto contains = [&lits](auto v) {
        const double d = static_cast<double>(v);
        for (const double lit : lits) {
          if (d == lit) return true;
        }
        return false;
      };
      if (col.type() == ValueType::kInt64) {
        ScanTyped(col.validity(), col.int64_data(), candidates, contains,
                  out);
      } else {
        ScanTyped(col.validity(), col.double_data(), candidates, contains,
                  out);
      }
      return;
    }
    if (col.type() == ValueType::kString) {
      std::vector<std::string> lits;
      lits.reserve(values_.size());
      for (const Value& v : values_) {
        if (v.type() == ValueType::kString) lits.push_back(v.AsString());
      }
      std::sort(lits.begin(), lits.end());
      lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
      ScanTyped(col.validity(), col.string_data(), candidates,
                [&lits](const std::string& v) {
                  return std::binary_search(lits.begin(), lits.end(), v);
                },
                out);
      return;
    }
    Predicate::FilterInto(table, candidates, out);
  }

  std::string ToString() const override {
    std::string out = column_ + " IN (";
    for (size_t i = 0; i < values_.size(); ++i) {
      if (i > 0) out += ", ";
      out += values_[i].ToString();
    }
    return out + ")";
  }

  void AppendCanonicalKey(std::string* out) const override {
    // IN is an OR of equalities: element order is irrelevant and
    // duplicates are idempotent, so the rendered literals sort and dedup.
    std::vector<std::string> lits;
    lits.reserve(values_.size());
    for (const Value& v : values_) {
      std::string lit;
      AppendCanonicalValue(v, &lit);
      lits.push_back(std::move(lit));
    }
    std::sort(lits.begin(), lits.end());
    lits.erase(std::unique(lits.begin(), lits.end()), lits.end());
    *out += "in(";
    AppendCanonicalColumn(column_, out);
    for (const std::string& lit : lits) {
      *out += ',';
      *out += lit;
    }
    *out += ')';
  }

 private:
  std::string column_;
  std::vector<Value> values_;
  size_t index_ = 0;
};

class IsNullPredicate final : public Predicate {
 public:
  IsNullPredicate(std::string column, bool negate)
      : column_(std::move(column)), negate_(negate) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_ASSIGN_OR_RETURN(index_, schema.FieldIndex(column_));
    return common::Status::OK();
  }

  bool Matches(const Table& table, size_t row) const override {
    return table.column(index_).IsNull(row) != negate_;
  }

  void FilterInto(const Table& table, const RowSet& candidates,
                  RowSet* out) const override {
    const ValidityBitmap& valid = table.column(index_).validity();
    if (valid.AllValid()) {
      // No NULLs at all: IS NULL selects nothing, IS NOT NULL everything.
      if (negate_) out->insert(out->end(), candidates.begin(),
                               candidates.end());
      return;
    }
    const bool want_valid = negate_;
    for (const uint32_t row : candidates) {
      if (valid.Get(row) == want_valid) out->push_back(row);
    }
  }

  std::string ToString() const override {
    return column_ + (negate_ ? " IS NOT NULL" : " IS NULL");
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += negate_ ? "notnull(" : "isnull(";
    AppendCanonicalColumn(column_, out);
    *out += ')';
  }

 private:
  std::string column_;
  bool negate_;
  size_t index_ = 0;
};

class BinaryLogicalPredicate final : public Predicate {
 public:
  enum class Kind { kAnd, kOr };

  BinaryLogicalPredicate(Kind kind, PredicatePtr lhs, PredicatePtr rhs)
      : kind_(kind), lhs_(std::move(lhs)), rhs_(std::move(rhs)) {}

  common::Status Bind(const Schema& schema) override {
    MUVE_RETURN_IF_ERROR(lhs_->Bind(schema));
    return rhs_->Bind(schema);
  }

  bool Matches(const Table& table, size_t row) const override {
    if (kind_ == Kind::kAnd) {
      return lhs_->Matches(table, row) && rhs_->Matches(table, row);
    }
    return lhs_->Matches(table, row) || rhs_->Matches(table, row);
  }

  void FilterInto(const Table& table, const RowSet& candidates,
                  RowSet* out) const override {
    if (kind_ == Kind::kAnd) {
      // Selection-vector intersection by cascade: the rhs kernel only
      // scans rows the lhs kept.
      RowSet kept;
      lhs_->FilterInto(table, candidates, &kept);
      rhs_->FilterInto(table, kept, out);
      return;
    }
    // OR: union of two ascending selections.  rhs scans only the rows
    // lhs rejected, so each candidate is evaluated at most twice and the
    // merge is a linear sorted union.
    RowSet left;
    lhs_->FilterInto(table, candidates, &left);
    RowSet rest;
    DifferenceInto(candidates, left, &rest);
    RowSet right;
    rhs_->FilterInto(table, rest, &right);
    UnionInto(left, right, out);
  }

  std::string ToString() const override {
    return "(" + lhs_->ToString() +
           (kind_ == Kind::kAnd ? " AND " : " OR ") + rhs_->ToString() + ")";
  }

  void AppendCanonicalKey(std::string* out) const override {
    // Flatten the same-kind subtree (associativity), sort the operand
    // keys (commutativity), and dedup (idempotence — Matches combines
    // children with plain && / ||, so a repeated operand cannot change
    // the outcome).  A chain collapsing to one distinct operand IS that
    // operand: `p AND p` keys like `p`.
    std::vector<std::string> operands;
    CollectOperands(*lhs_, kind_, &operands);
    CollectOperands(*rhs_, kind_, &operands);
    std::sort(operands.begin(), operands.end());
    operands.erase(std::unique(operands.begin(), operands.end()),
                   operands.end());
    if (operands.size() == 1) {
      *out += operands[0];
      return;
    }
    *out += kind_ == Kind::kAnd ? "and(" : "or(";
    for (size_t i = 0; i < operands.size(); ++i) {
      if (i > 0) *out += ';';
      *out += operands[i];
    }
    *out += ')';
  }

 private:
  static void CollectOperands(const Predicate& node, Kind kind,
                              std::vector<std::string>* out) {
    const auto* same = dynamic_cast<const BinaryLogicalPredicate*>(&node);
    if (same != nullptr && same->kind_ == kind) {
      CollectOperands(*same->lhs_, kind, out);
      CollectOperands(*same->rhs_, kind, out);
      return;
    }
    std::string key;
    node.AppendCanonicalKey(&key);
    out->push_back(std::move(key));
  }

  Kind kind_;
  PredicatePtr lhs_;
  PredicatePtr rhs_;
};

class NotPredicate final : public Predicate {
 public:
  explicit NotPredicate(PredicatePtr inner) : inner_(std::move(inner)) {}

  common::Status Bind(const Schema& schema) override {
    return inner_->Bind(schema);
  }

  bool Matches(const Table& table, size_t row) const override {
    return !inner_->Matches(table, row);
  }

  void FilterInto(const Table& table, const RowSet& candidates,
                  RowSet* out) const override {
    // Sorted difference: candidates minus the inner selection.  Keeps
    // the two-valued NULL semantics (NOT of a false NULL-comparison is
    // true) because rows the inner kernel skipped stay in the result.
    RowSet inner;
    inner_->FilterInto(table, candidates, &inner);
    DifferenceInto(candidates, inner, out);
  }

  std::string ToString() const override {
    return "NOT (" + inner_->ToString() + ")";
  }

  void AppendCanonicalKey(std::string* out) const override {
    *out += "not(";
    inner_->AppendCanonicalKey(out);
    *out += ')';
  }

 private:
  PredicatePtr inner_;
};

class TruePredicate final : public Predicate {
 public:
  common::Status Bind(const Schema&) override { return common::Status::OK(); }
  bool Matches(const Table&, size_t) const override { return true; }
  void FilterInto(const Table&, const RowSet& candidates,
                  RowSet* out) const override {
    out->insert(out->end(), candidates.begin(), candidates.end());
  }
  std::string ToString() const override { return "TRUE"; }
  void AppendCanonicalKey(std::string* out) const override { *out += "true"; }
};

}  // namespace

PredicatePtr MakeComparison(std::string column, CompareOp op, Value literal) {
  return std::make_unique<ComparisonPredicate>(std::move(column), op,
                                               std::move(literal));
}

PredicatePtr MakeBetween(std::string column, Value lo, Value hi) {
  return std::make_unique<BetweenPredicate>(std::move(column), std::move(lo),
                                            std::move(hi));
}

PredicatePtr MakeInList(std::string column, std::vector<Value> values) {
  return std::make_unique<InListPredicate>(std::move(column),
                                           std::move(values));
}

PredicatePtr MakeIsNull(std::string column, bool negate) {
  return std::make_unique<IsNullPredicate>(std::move(column), negate);
}

PredicatePtr MakeAnd(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_unique<BinaryLogicalPredicate>(
      BinaryLogicalPredicate::Kind::kAnd, std::move(lhs), std::move(rhs));
}

PredicatePtr MakeOr(PredicatePtr lhs, PredicatePtr rhs) {
  return std::make_unique<BinaryLogicalPredicate>(
      BinaryLogicalPredicate::Kind::kOr, std::move(lhs), std::move(rhs));
}

PredicatePtr MakeNot(PredicatePtr inner) {
  return std::make_unique<NotPredicate>(std::move(inner));
}

PredicatePtr MakeTrue() { return std::make_unique<TruePredicate>(); }

std::string CanonicalPredicateKey(const Predicate& pred) {
  std::string key;
  pred.AppendCanonicalKey(&key);
  return key;
}

common::Result<RowSet> Filter(const Table& table, Predicate* pred,
                              const RowSet* base, FilterStats* stats) {
  MUVE_RETURN_IF_ERROR(pred->Bind(table.schema()));
  RowSet out;
  if (base != nullptr) {
    out.reserve(base->size());
    pred->FilterInto(table, *base, &out);
    if (stats != nullptr) {
      stats->rows_in += static_cast<int64_t>(base->size());
      stats->rows_out += static_cast<int64_t>(out.size());
    }
    return out;
  }
  const RowSet all = AllRows(table.num_rows());
  out.reserve(all.size());
  pred->FilterInto(table, all, &out);
  if (stats != nullptr) {
    stats->rows_in += static_cast<int64_t>(all.size());
    stats->rows_out += static_cast<int64_t>(out.size());
  }
  return out;
}

}  // namespace muve::storage
