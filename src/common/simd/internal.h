// Internal glue between the dispatch table and the per-level kernel TUs.
// Not part of the public surface; include simd.h instead.

#ifndef MUVE_COMMON_SIMD_INTERNAL_H_
#define MUVE_COMMON_SIMD_INTERNAL_H_

#include <cstddef>
#include <cstdint>

#include "common/simd/simd.h"

namespace muve::common::simd {

// Portable reference kernels (kernels_scalar.cc).  Non-scalar tables
// reuse these for primitives they do not port (e.g. the NEON table keeps
// the scalar keyed accumulators).
namespace scalar_impl {

double SquaredL2Diff(const double* p, const double* q, size_t n);
double AbsDiffSum(const double* p, const double* q, size_t n);
double MaxAbsDiff(const double* p, const double* q, size_t n);
double PrefixAbsDiffSum(const double* p, const double* q, size_t n);
double Sum(const double* a, size_t n);
double RelativeSse(const double* g, const double* rep, size_t n);
double NormalizeInto(const double* src, size_t n, double* dst);
void BinIndexInto(const double* values, size_t n, double lo, double hi,
                  int num_bins, int32_t* out);
void CoarsenByPrefixDiff(const double* values, size_t d, double lo,
                         double hi, int num_bins,
                         const int64_t* prefix_counts,
                         const double* prefix_sums,
                         const double* prefix_sum_sqs, int64_t* out_counts,
                         double* out_sums, double* out_sum_sqs);
void AccumulateCountSumSqF64(const uint32_t* rows, size_t begin, size_t end,
                             const uint32_t* keys,
                             const uint64_t* validity_words,
                             const double* data, int64_t* counts,
                             double* sums, double* sum_sqs);
void AccumulateCountSumSqI64(const uint32_t* rows, size_t begin, size_t end,
                             const uint32_t* keys,
                             const uint64_t* validity_words,
                             const int64_t* data, int64_t* counts,
                             double* sums, double* sum_sqs);

}  // namespace scalar_impl

// Shared coarsen skeleton: the per-level tables differ only in how the
// fine-bin -> coarse-bin index array is produced (scalar BinIndexReference
// vs a vectorized bin_index_into), while the run sweep and the prefix
// diffs are identical — which is what makes the kernel bit-identical
// across levels by construction.
template <typename BinIndexBlockFn>
inline void CoarsenWithBinIndex(BinIndexBlockFn&& bin_index_block,
                                const double* values, size_t d, double lo,
                                double hi, int num_bins,
                                const int64_t* prefix_counts,
                                const double* prefix_sums,
                                const double* prefix_sum_sqs,
                                int64_t* out_counts, double* out_sums,
                                double* out_sum_sqs) {
  for (int k = 0; k < num_bins; ++k) {
    out_counts[k] = 0;
    out_sums[k] = 0.0;
    out_sum_sqs[k] = 0.0;
  }
  if (d == 0) return;

  constexpr size_t kBlock = 512;
  int32_t idx[kBlock];
  int32_t run_bin = -1;
  size_t run_start = 0;

  auto flush = [&](size_t run_end) {
    const int64_t count =
        prefix_counts[run_end] - prefix_counts[run_start];
    if (count > 0) {
      out_counts[run_bin] = count;
      out_sums[run_bin] = prefix_sums[run_end] - prefix_sums[run_start];
      out_sum_sqs[run_bin] =
          prefix_sum_sqs[run_end] - prefix_sum_sqs[run_start];
    }
  };

  for (size_t base = 0; base < d; base += kBlock) {
    const size_t len = d - base < kBlock ? d - base : kBlock;
    bin_index_block(values + base, len, lo, hi, num_bins, idx);
    for (size_t j = 0; j < len; ++j) {
      if (idx[j] != run_bin) {
        if (run_bin >= 0) flush(base + j);
        run_bin = idx[j];
        run_start = base + j;
      }
    }
  }
  flush(d);
}

// Per-level table constructors compiled only when their TU is in the
// build; dispatch.cc references them behind the matching macro.
#if defined(MUVE_SIMD_AVX2)
const KernelTable& Avx2KernelsImpl();
bool Avx2SupportedAtRuntime();
#endif
#if defined(MUVE_SIMD_NEON)
const KernelTable& NeonKernelsImpl();
#endif

}  // namespace muve::common::simd

#endif  // MUVE_COMMON_SIMD_INTERNAL_H_
