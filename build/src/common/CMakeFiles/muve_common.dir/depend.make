# Empty dependencies file for muve_common.
# This may be replaced when dependencies are built.
