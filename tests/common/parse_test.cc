// Unit tests for the shared strict numeric parser (common/parse.h): the
// single frontend for CLI flags, CSV cells, and muved protocol fields.

#include "common/parse.h"

#include <clocale>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <random>
#include <string>

#include "gtest/gtest.h"

namespace muve::common {
namespace {

TEST(ParseInt64Strict, AcceptsCanonicalIntegers) {
  EXPECT_EQ(*ParseInt64Strict("0"), 0);
  EXPECT_EQ(*ParseInt64Strict("42"), 42);
  EXPECT_EQ(*ParseInt64Strict("-7"), -7);
  EXPECT_EQ(*ParseInt64Strict("+5"), 5);
  EXPECT_EQ(*ParseInt64Strict("007"), 7);
  EXPECT_EQ(*ParseInt64Strict("-0"), 0);
}

TEST(ParseInt64Strict, ExactInt64Boundaries) {
  EXPECT_EQ(*ParseInt64Strict("9223372036854775807"),
            std::numeric_limits<int64_t>::max());
  EXPECT_EQ(*ParseInt64Strict("-9223372036854775808"),
            std::numeric_limits<int64_t>::min());
  // One past either end is out of range, not wrapped.
  EXPECT_FALSE(ParseInt64Strict("9223372036854775808").ok());
  EXPECT_FALSE(ParseInt64Strict("-9223372036854775809").ok());
  EXPECT_FALSE(ParseInt64Strict("99999999999999999999").ok());
}

TEST(ParseInt64Strict, RejectsMalformedTokens) {
  for (const char* bad :
       {"", " 5", "5 ", "5x", "x5", "1.5", "1e3", "0x10", "--3", "++5", "+-5",
        "+", "-", "1,000", "12 34"}) {
    EXPECT_FALSE(ParseInt64Strict(bad).ok()) << "accepted: '" << bad << "'";
  }
}

TEST(ParseInt64Strict, ErrorEchoesTokenBounded) {
  const std::string long_token(500, '9');
  auto result = ParseInt64Strict(long_token + "x");
  ASSERT_FALSE(result.ok());
  // The echoed token is truncated so hostile input can't balloon the
  // diagnostic.
  EXPECT_LT(result.status().message().size(), 200u);
}

TEST(ParseDoubleStrict, AcceptsDecimalAndScientific) {
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("1.5"), 1.5);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict(".5"), 0.5);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("7."), 7.0);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("1e30"), 1e30);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("+3E-2"), 0.03);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("-2.5e-3"), -2.5e-3);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("0"), 0.0);
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("-0.0"), 0.0);
}

TEST(ParseDoubleStrict, RejectsInfNanAndHexByPolicy) {
  for (const char* bad : {"inf", "INF", "-inf", "infinity", "nan", "NaN",
                          "-nan", "0x1p3", "0x10", "0X1.8p1"}) {
    EXPECT_FALSE(ParseDoubleStrict(bad).ok()) << "accepted: '" << bad << "'";
  }
}

TEST(ParseDoubleStrict, RejectsMalformedTokens) {
  for (const char* bad : {"", " 1.5", "1.5 ", "1.5x", "1,5", "1.2.3", "e5",
                          ".", "-.", "1e", "1e+", "1e1.5", "+-1", "--1"}) {
    EXPECT_FALSE(ParseDoubleStrict(bad).ok()) << "accepted: '" << bad << "'";
  }
}

TEST(ParseDoubleStrict, RejectsOverflowAndUnderflow) {
  // Overflow to inf and underflow past subnormals are both malformed by
  // policy — never a silent inf or 0.
  EXPECT_FALSE(ParseDoubleStrict("1e400").ok());
  EXPECT_FALSE(ParseDoubleStrict("-1e400").ok());
  EXPECT_FALSE(ParseDoubleStrict("1e-400").ok());
  // The largest finite double round-trips.
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("1.7976931348623157e308"),
                   std::numeric_limits<double>::max());
}

TEST(ParseDoubleStrict, LocaleIndependent) {
  // Force a decimal-comma C locale if the host has one; the parser must
  // not notice.  (setlocale only moves the C locale, which is exactly
  // what strtod-style parsers would have consulted.)
  const char* old = std::setlocale(LC_NUMERIC, nullptr);
  std::string saved = old != nullptr ? old : "C";
  bool injected = false;
  for (const char* name :
       {"de_DE.UTF-8", "de_DE.utf8", "de_DE", "fr_FR.UTF-8", "fr_FR"}) {
    if (std::setlocale(LC_NUMERIC, name) != nullptr) {
      injected = true;
      break;
    }
  }
  EXPECT_DOUBLE_EQ(*ParseDoubleStrict("1.5"), 1.5);
  EXPECT_FALSE(ParseDoubleStrict("1,5").ok());
  std::setlocale(LC_NUMERIC, saved.c_str());
  if (!injected) {
    GTEST_LOG_(INFO) << "no comma-decimal locale installed; ran under C";
  }
}

TEST(ParseFlagInt64, RangeCheckAndDiagnosticNamesFlag) {
  EXPECT_EQ(*ParseFlagInt64("--k", "10", 1, 100), 10);
  for (const char* bad : {"abc", "0", "-3", "101", "99999999999999999999"}) {
    auto result = ParseFlagInt64("--k", bad, 1, 100);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_NE(result.status().message().find("--k"), std::string::npos);
    EXPECT_NE(result.status().message().find("[1, 100]"), std::string::npos);
  }
}

TEST(ParseFlagDouble, RangeCheckAndDiagnosticNamesFlag) {
  EXPECT_DOUBLE_EQ(*ParseFlagDouble("--weights", "0.25", 0.0, 1.0), 0.25);
  for (const char* bad : {"abc", "-0.1", "1.1", "nan", "1e400"}) {
    auto result = ParseFlagDouble("--weights", bad, 0.0, 1.0);
    ASSERT_FALSE(result.ok()) << bad;
    EXPECT_NE(result.status().message().find("--weights"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Fuzz vs oracle: on tokens BOTH sides accept, the strict parser must
// agree exactly with the C library under the classic locale.
// ---------------------------------------------------------------------------

TEST(ParseFuzz, Int64AgreesWithStrtollOracle) {
  std::mt19937_64 rng(20260807);
  std::uniform_int_distribution<int> len_dist(1, 19);
  std::uniform_int_distribution<int> digit(0, 9);
  std::uniform_int_distribution<int> sign(0, 2);
  for (int iter = 0; iter < 20000; ++iter) {
    std::string token;
    const int s = sign(rng);
    if (s == 1) token += '-';
    if (s == 2) token += '+';
    const int len = len_dist(rng);
    for (int i = 0; i < len; ++i) token += static_cast<char>('0' + digit(rng));
    errno = 0;
    char* end = nullptr;
    const long long oracle = std::strtoll(token.c_str(), &end, 10);
    const bool oracle_ok =
        errno == 0 && end == token.c_str() + token.size();
    auto parsed = ParseInt64Strict(token);
    ASSERT_EQ(parsed.ok(), oracle_ok) << token;
    if (oracle_ok) {
      EXPECT_EQ(*parsed, static_cast<int64_t>(oracle)) << token;
    }
  }
}

TEST(ParseFuzz, DoubleRoundTripsPrintedValues) {
  // Print random finite doubles with %.17g (guaranteed round-trippable)
  // and parse them back: bit-exact equality required.
  std::mt19937_64 rng(20260808);
  std::uniform_real_distribution<double> mantissa(-1.0, 1.0);
  std::uniform_int_distribution<int> exponent(-300, 300);
  for (int iter = 0; iter < 20000; ++iter) {
    const double value = std::ldexp(mantissa(rng), exponent(rng));
    if (!std::isfinite(value)) continue;
    char buffer[64];
    std::snprintf(buffer, sizeof(buffer), "%.17g", value);
    auto parsed = ParseDoubleStrict(buffer);
    // %.17g of a tiny value may print as subnormal-range scientific
    // notation the parser rejects as underflow; only fully-normal values
    // are asserted round-trippable.
    if (value != 0.0 && std::fabs(value) < 2.3e-308) {
      continue;
    }
    ASSERT_TRUE(parsed.ok()) << buffer << " -> " << parsed.status().ToString();
    EXPECT_EQ(*parsed, value) << buffer;
  }
}

TEST(ParseFuzz, RandomJunkNeverCrashesAndNeverSilentlyTruncates) {
  std::mt19937_64 rng(20260809);
  const std::string alphabet = "0123456789+-.eEx, \tinfa";
  std::uniform_int_distribution<size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len_dist(0, 24);
  for (int iter = 0; iter < 50000; ++iter) {
    std::string token;
    const int len = len_dist(rng);
    for (int i = 0; i < len; ++i) token += alphabet[pick(rng)];
    auto as_int = ParseInt64Strict(token);
    auto as_double = ParseDoubleStrict(token);
    // Whatever parses as int64 must parse as the same double (ints embed
    // in the double grammar) unless it exceeds double's integer range.
    if (as_int.ok() && as_double.ok()) {
      EXPECT_EQ(*as_double, static_cast<double>(*as_int)) << token;
    }
    // Anything accepted must be whole-token: re-serializing through the
    // oracle and comparing lengths would be circular, so instead check
    // the cheap invariant that accepted tokens contain no blessed-junk
    // characters.
    if (as_double.ok()) {
      EXPECT_EQ(token.find_first_of("x, \tinfa"), std::string::npos) << token;
    }
  }
}

}  // namespace
}  // namespace muve::common
