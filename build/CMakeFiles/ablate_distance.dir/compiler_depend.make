# Empty compiler generated dependencies file for ablate_distance.
# This may be replaced when dependencies are built.
