#include "storage/schema.h"

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::storage {

const char* FieldRoleName(FieldRole role) {
  switch (role) {
    case FieldRole::kNone:
      return "none";
    case FieldRole::kDimension:
      return "dimension";
    case FieldRole::kMeasure:
      return "measure";
    case FieldRole::kCategoricalDimension:
      return "categorical_dimension";
  }
  return "unknown";
}

Schema::Schema(std::vector<Field> fields) {
  for (auto& f : fields) {
    const common::Status st = AddField(std::move(f));
    MUVE_CHECK(st.ok()) << st.ToString();
  }
}

common::Status Schema::AddField(Field field) {
  const std::string key = common::ToLower(field.name);
  if (index_.contains(key)) {
    return common::Status::AlreadyExists("duplicate field name: " +
                                         field.name);
  }
  index_.emplace(key, fields_.size());
  fields_.push_back(std::move(field));
  return common::Status::OK();
}

common::Result<size_t> Schema::FieldIndex(std::string_view name) const {
  const auto it = index_.find(common::ToLower(name));
  if (it == index_.end()) {
    return common::Status::NotFound("no field named '" + std::string(name) +
                                    "'");
  }
  return it->second;
}

bool Schema::HasField(std::string_view name) const {
  return index_.contains(common::ToLower(name));
}

std::vector<std::string> Schema::FieldNamesWithRole(FieldRole role) const {
  std::vector<std::string> names;
  for (const Field& f : fields_) {
    if (f.role == role) names.push_back(f.name);
  }
  return names;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out += ", ";
    out += fields_[i].name;
    out += ":";
    out += ValueTypeName(fields_[i].type);
    if (fields_[i].role != FieldRole::kNone) {
      out += ":";
      out += FieldRoleName(fields_[i].role);
    }
  }
  return out;
}

bool Schema::operator==(const Schema& other) const {
  if (fields_.size() != other.fields_.size()) return false;
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name != other.fields_[i].name ||
        fields_[i].type != other.fields_[i].type ||
        fields_[i].role != other.fields_[i].role) {
      return false;
    }
  }
  return true;
}

}  // namespace muve::storage
