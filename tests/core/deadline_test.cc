// Deadline-determinism and graceful-degradation suite for the
// execution-control layer (common/exec_context.h).
//
// The contract under test (core/recommender.h):
//   1. A run whose bounds never trip is BIT-IDENTICAL to the unbounded
//      run — same views, same bins, same exact utilities — at any thread
//      count.  The boundary polls sit strictly before work units, so an
//      unexpired poll cannot perturb the probe sequence.
//   2. A run whose bounds trip still returns OK with the best top-k found
//      so far, and ExecStats::completeness reports the degradation: the
//      degraded flag, the first cause as a StatusCode, and skip counters.
//   3. Expiring bounds never produce UB (run this suite under ASan/TSan:
//      it carries the `tsan` ctest label).
//
// Fuzzed over random datasets via tests/fuzz_util.h seeding.

#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "common/exec_context.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/recommender.h"
#include "data/dataset.h"
#include "data/toy.h"
#include "fuzz_util.h"
#include "storage/predicate.h"

namespace muve::core {
namespace {

// Same shape as fuzz_exactness_test's generator, kept local so the two
// suites can evolve their distributions independently.
data::Dataset RandomDataset(uint64_t seed) {
  common::Rng rng(seed);
  const int num_numeric = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const bool with_categorical = rng.Bernoulli(0.4);
  const int num_measures = 1 + static_cast<int>(rng.UniformInt(0, 1));
  const size_t rows = 30 + static_cast<size_t>(rng.UniformInt(0, 60));

  storage::Schema schema;
  data::Dataset ds;
  for (int d = 0; d < num_numeric; ++d) {
    const std::string name = "dim" + std::to_string(d);
    MUVE_CHECK(schema
                   .AddField({name, storage::ValueType::kInt64,
                              storage::FieldRole::kDimension})
                   .ok());
    ds.dimensions.push_back(name);
  }
  if (with_categorical) {
    MUVE_CHECK(schema
                   .AddField({"cat", storage::ValueType::kString,
                              storage::FieldRole::kCategoricalDimension})
                   .ok());
    ds.categorical_dimensions.push_back("cat");
  }
  MUVE_CHECK(schema.AddField({"sel", storage::ValueType::kInt64}).ok());
  for (int m = 0; m < num_measures; ++m) {
    const std::string name = "m" + std::to_string(m);
    MUVE_CHECK(schema
                   .AddField({name, storage::ValueType::kDouble,
                              storage::FieldRole::kMeasure})
                   .ok());
    ds.measures.push_back(name);
  }

  auto table = std::make_shared<storage::Table>(schema);
  const char* cats[] = {"p", "q", "r", "s"};
  std::vector<int64_t> ranges(static_cast<size_t>(num_numeric));
  for (auto& r : ranges) r = 4 + rng.UniformInt(0, 30);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<storage::Value> row;
    for (int d = 0; d < num_numeric; ++d) {
      row.emplace_back(rng.UniformInt(0, ranges[static_cast<size_t>(d)]));
    }
    if (with_categorical) row.emplace_back(cats[rng.UniformInt(0, 3)]);
    row.emplace_back(rng.UniformInt(0, 2));
    for (int m = 0; m < num_measures; ++m) {
      row.emplace_back(rng.Uniform(0, 20));
    }
    MUVE_CHECK(table->AppendRow(row).ok());
  }

  ds.name = "deadline_fuzz" + std::to_string(seed);
  ds.table = table;
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg,
                  storage::AggregateFunction::kCount};
  ds.query_predicate_sql = "sel = 1";
  auto pred = storage::MakeComparison("sel", storage::CompareOp::kEq,
                                      storage::Value(int64_t{1}));
  auto selected = storage::Filter(*table, pred.get());
  MUVE_CHECK(selected.ok());
  ds.target_rows = std::move(selected).value();
  if (ds.target_rows.empty()) ds.target_rows = {0};
  ds.all_rows = storage::AllRows(table->num_rows());
  return ds;
}

struct SchemeSpec {
  const char* name;
  HorizontalStrategy horizontal;
  VerticalStrategy vertical;
  VerticalApproximation approximation = VerticalApproximation::kNone;
  bool shared = false;
};

constexpr SchemeSpec kSchemes[] = {
    {"linear-linear", HorizontalStrategy::kLinear, VerticalStrategy::kLinear},
    {"hc-linear", HorizontalStrategy::kHillClimbing,
     VerticalStrategy::kLinear},
    {"muve-linear", HorizontalStrategy::kMuve, VerticalStrategy::kLinear},
    {"muve-muve", HorizontalStrategy::kMuve, VerticalStrategy::kMuve},
    {"linear-linear/shared", HorizontalStrategy::kLinear,
     VerticalStrategy::kLinear, VerticalApproximation::kNone, true},
    {"linear-linear/refine", HorizontalStrategy::kLinear,
     VerticalStrategy::kLinear, VerticalApproximation::kRefinement},
    {"linear-linear/skip", HorizontalStrategy::kLinear,
     VerticalStrategy::kLinear, VerticalApproximation::kSkipping},
};

SearchOptions OptionsFor(const SchemeSpec& scheme, int k, int threads) {
  SearchOptions options;
  options.horizontal = scheme.horizontal;
  options.vertical = scheme.vertical;
  options.approximation = scheme.approximation;
  options.shared_scans = scheme.shared;
  options.k = k;
  options.num_threads = threads;
  return options;
}

// Bit-identical comparison: exact double equality on utilities, exact
// identity on the recommended (view, bins) list.
void ExpectIdentical(const Recommendation& expected,
                     const Recommendation& actual, const char* label) {
  ASSERT_EQ(expected.views.size(), actual.views.size()) << label;
  for (size_t i = 0; i < expected.views.size(); ++i) {
    const ScoredView& e = expected.views[i];
    const ScoredView& a = actual.views[i];
    EXPECT_EQ(e.view.dimension, a.view.dimension) << label << " rank " << i;
    EXPECT_EQ(e.view.measure, a.view.measure) << label << " rank " << i;
    EXPECT_EQ(e.view.function, a.view.function) << label << " rank " << i;
    EXPECT_EQ(e.bins, a.bins) << label << " rank " << i;
    EXPECT_EQ(e.utility, a.utility) << label << " rank " << i;
  }
}

class DeadlineDeterminismTest : public ::testing::TestWithParam<uint64_t> {};

// Contract 1: a generous, never-tripping deadline (plus a generous row
// budget) leaves every scheme's output bit-identical to the unbounded
// run, serial and parallel.
TEST_P(DeadlineDeterminismTest, GenerousBoundsAreBitIdentical) {
  const uint64_t seed = testutil::FuzzSeed(GetParam());
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  const data::Dataset ds = RandomDataset(seed);
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();

  for (const SchemeSpec& scheme : kSchemes) {
    SCOPED_TRACE(scheme.name);
    const SearchOptions unbounded = OptionsFor(scheme, 4, 1);
    auto baseline = recommender->Recommend(unbounded);
    ASSERT_TRUE(baseline.ok()) << baseline.status().ToString();
    EXPECT_FALSE(baseline->stats.completeness.degraded);

    for (const int threads : {1, 8}) {
      SearchOptions bounded = OptionsFor(scheme, 4, threads);
      bounded.deadline_ms = 60'000.0;         // an hour-scale bound: never trips
      bounded.max_rows_scanned = 100'000'000;  // ditto
      bounded.cancel_token = std::make_shared<common::CancellationToken>();
      auto run = recommender->Recommend(bounded);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_FALSE(run->stats.completeness.degraded)
          << scheme.name << " threads=" << threads;
      EXPECT_EQ(run->stats.completeness.status, common::StatusCode::kOk);
      ExpectIdentical(*baseline, *run, scheme.name);
    }
  }
}

// Contract 2+3: an already-expired deadline degrades gracefully — OK
// status, empty top-k, degraded completeness with the deadline cause —
// at 1 and 8 threads, for every scheme.
TEST_P(DeadlineDeterminismTest, ZeroDeadlineDegradesGracefully) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0xD00DULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  const data::Dataset ds = RandomDataset(seed);
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();

  for (const SchemeSpec& scheme : kSchemes) {
    SCOPED_TRACE(scheme.name);
    for (const int threads : {1, 8}) {
      SearchOptions options = OptionsFor(scheme, 4, threads);
      options.deadline_ms = 0.0;
      auto run = recommender->Recommend(options);
      ASSERT_TRUE(run.ok()) << run.status().ToString();
      EXPECT_TRUE(run->views.empty()) << scheme.name;
      const ExecCompleteness& comp = run->stats.completeness;
      EXPECT_TRUE(comp.degraded) << scheme.name;
      EXPECT_EQ(comp.status, common::StatusCode::kDeadlineExceeded)
          << scheme.name;
      EXPECT_EQ(comp.views_fully_searched, 0) << scheme.name;
      EXPECT_GT(comp.bins_pruned_by_deadline, 0) << scheme.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DeadlineDeterminismTest,
                         ::testing::Range<uint64_t>(1, 9));

TEST(DeadlineTest, PreCancelledTokenReportsCancelled) {
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.cancel_token = std::make_shared<common::CancellationToken>();
  options.cancel_token->Cancel();
  auto run = recommender->Recommend(options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  EXPECT_TRUE(run->views.empty());
  EXPECT_TRUE(run->stats.completeness.degraded);
  EXPECT_EQ(run->stats.completeness.status, common::StatusCode::kCancelled);
}

TEST(DeadlineTest, TinyRowBudgetReportsResourceExhausted) {
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.max_rows_scanned = 1;  // trips after the first charged scan
  auto run = recommender->Recommend(options);
  ASSERT_TRUE(run.ok()) << run.status().ToString();
  const ExecCompleteness& comp = run->stats.completeness;
  EXPECT_TRUE(comp.degraded);
  EXPECT_EQ(comp.status, common::StatusCode::kResourceExhausted);
  // The budget is polled at boundaries, so a little overshoot is allowed,
  // but the run must stop well short of the unbounded row count.
  SearchOptions unbounded;
  auto full = recommender->Recommend(unbounded);
  ASSERT_TRUE(full.ok());
  EXPECT_LT(run->stats.rows_scanned, full->stats.rows_scanned);
}

TEST(DeadlineTest, MidRunCancellationFromAnotherThreadIsSafe) {
  // Races the cancel against the search: whichever way it lands, the run
  // must return OK, and a degraded run must report kCancelled.  Exercises
  // the concurrent-latch path under TSan.
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  for (int trial = 0; trial < 5; ++trial) {
    SearchOptions options;
    options.horizontal = HorizontalStrategy::kMuve;
    options.vertical = VerticalStrategy::kMuve;
    options.num_threads = 4;
    options.cancel_token = std::make_shared<common::CancellationToken>();
    std::thread canceller(
        [token = options.cancel_token] { token->Cancel(); });
    auto run = recommender->Recommend(options);
    canceller.join();
    ASSERT_TRUE(run.ok()) << run.status().ToString();
    const ExecCompleteness& comp = run->stats.completeness;
    if (comp.degraded) {
      EXPECT_EQ(comp.status, common::StatusCode::kCancelled);
    } else {
      EXPECT_EQ(comp.status, common::StatusCode::kOk);
    }
    // Whatever was returned is a valid descending top-k prefix.
    for (size_t i = 1; i < run->views.size(); ++i) {
      EXPECT_GE(run->views[i - 1].utility, run->views[i].utility);
    }
  }
}

TEST(DeadlineTest, InvalidRowBudgetIsRejected) {
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.max_rows_scanned = -5;
  auto run = recommender->Recommend(options);
  EXPECT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), common::StatusCode::kInvalidArgument);
}

TEST(DeadlineTest, DegradedStatsSurviveMergeIntoToString) {
  const data::Dataset ds = data::MakeToyDataset();
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  SearchOptions options;
  options.deadline_ms = 0.0;
  auto run = recommender->Recommend(options);
  ASSERT_TRUE(run.ok());
  const std::string text = run->stats.ToString();
  EXPECT_NE(text.find("DEGRADED"), std::string::npos) << text;
  EXPECT_NE(text.find("deadline_exceeded"), std::string::npos) << text;
  // An unbounded run's stats line must NOT carry degradation tokens
  // (pins the golden-file stability of complete runs).
  SearchOptions unbounded;
  auto full = recommender->Recommend(unbounded);
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->stats.ToString().find("DEGRADED"), std::string::npos);
}

}  // namespace
}  // namespace muve::core
