// Figure 7: impact of k on cost (DIAB).
//
// Paper findings to reproduce: Linear-Linear and MuVE-Linear are
// insensitive to k (both scan all views exhaustively in the vertical
// direction); MuVE-MuVE's cost grows with k and achieves its largest
// saving at k = 1 (up to ~90% vs Linear-Linear).

#include <iostream>

#include "core/recommender.h"
#include "data/diab.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 7: impact of k on cost (DIAB) ===\n";
  const muve::data::Dataset dataset = muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  muve::bench::TablePrinter table({"k", "Linear-Linear(ms)",
                                   "MuVE-Linear(ms)", "MuVE-MuVE(ms)",
                                   "MuVE-MuVE savings"});
  for (const int k : {1, 5, 10, 15, 20}) {
    auto linear = muve::bench::LinearLinear();
    auto muve_linear = muve::bench::MuveLinear();
    auto muve_muve = muve::bench::MuveMuve();
    linear.k = muve_linear.k = muve_muve.k = k;

    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_ml = RunScheme(*recommender, muve_linear);
    const auto r_mm = RunScheme(*recommender, muve_muve);
    table.AddRow({std::to_string(k), Ms(r_lin.cost_ms), Ms(r_ml.cost_ms),
                  Ms(r_mm.cost_ms),
                  muve::bench::Pct(1.0 - r_mm.cost_ms / r_lin.cost_ms)});
  }
  table.Print("Figure 7 — DIAB: cost vs k (paper default weights "
              "aD=0.2 aA=0.2 aS=0.6), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
  return 0;
}
