// Ablation: sampling-based approximation (the third optimization family
// of Section II-A, alongside shared computation and pruning).
//
// Probes run over deterministic uniform row samples; cost falls roughly
// linearly with the fraction while fidelity (vs the exact Linear-Linear
// top-k utilities) degrades gracefully.  Also shows that sampling
// composes with MuVE's pruning.

#include <iostream>

#include "common/logging.h"
#include "common/string_util.h"
#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::Pct;
  using muve::bench::RunScheme;

  std::cout << "=== Ablation: sampling fraction vs cost and fidelity "
               "(NBA) ===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  const muve::core::Weights weights{0.6, 0.2, 0.2};
  auto exact = muve::bench::LinearLinear();
  exact.weights = weights;
  const auto baseline = RunScheme(*recommender, exact);

  muve::bench::TablePrinter table({"fraction", "Linear(Smp) cost(ms)",
                                   "fidelity", "MuVE(Smp) cost(ms)",
                                   "rows vs exact"});
  for (const double fraction : {1.0, 0.75, 0.5, 0.25, 0.1}) {
    auto linear = exact;
    linear.sample_fraction = fraction;
    auto muve = muve::bench::MuveMuve();
    muve.weights = weights;
    muve.sample_fraction = fraction;

    const auto r_lin = RunScheme(*recommender, linear);
    const auto r_muve = RunScheme(*recommender, muve);
    table.AddRow(
        {muve::common::FormatDouble(fraction, 2), Ms(r_lin.cost_ms),
         Pct(muve::core::Fidelity(baseline.recommendation.views,
                                  r_lin.recommendation.views)),
         Ms(r_muve.cost_ms),
         Pct(static_cast<double>(r_lin.stats.rows_scanned) /
             static_cast<double>(baseline.stats.rows_scanned))});
  }
  table.Print("Sampling sweep (aD=0.6 aA=0.2 aS=0.2, k = 5), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");
  std::cout << "\n(fidelity compares the sampled scheme's picks — scored "
               "with their *sampled* utilities — against the exact "
               "optimum; sub-1.0 rows therefore mix estimation error "
               "with genuine utility loss)\n";
  return 0;
}
