#include "viz/svg_chart.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::viz {

std::string EscapeXml(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (const char c : text) {
    switch (c) {
      case '&':
        out += "&amp;";
        break;
      case '<':
        out += "&lt;";
        break;
      case '>':
        out += "&gt;";
        break;
      case '"':
        out += "&quot;";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

namespace {

struct Layout {
  double margin_left = 50;
  double margin_right = 20;
  double margin_top = 40;
  double margin_bottom = 60;
  double plot_width = 0;
  double plot_height = 0;
};

std::string Num(double v) { return common::FormatDouble(v, 1); }

void AppendBar(std::ostringstream& svg, double x, double y, double w,
               double h, const std::string& color) {
  svg << "  <rect x=\"" << Num(x) << "\" y=\"" << Num(y) << "\" width=\""
      << Num(w) << "\" height=\"" << Num(h) << "\" fill=\"" << color
      << "\"/>\n";
}

}  // namespace

std::string RenderSvg(const GroupedBarChart& chart,
                      const SvgChartOptions& options) {
  MUVE_CHECK(chart.labels.size() == chart.target.size())
      << "labels/target size mismatch";
  MUVE_CHECK(chart.labels.size() == chart.comparison.size())
      << "labels/comparison size mismatch";

  Layout layout;
  layout.plot_width =
      options.width - layout.margin_left - layout.margin_right;
  layout.plot_height =
      options.height - layout.margin_top - layout.margin_bottom;

  double max_value = 0.0;
  for (size_t i = 0; i < chart.labels.size(); ++i) {
    max_value = std::max({max_value, chart.target[i], chart.comparison[i]});
  }
  if (max_value <= 0.0) max_value = 1.0;

  std::ostringstream svg;
  svg << "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\""
      << options.width << "\" height=\"" << options.height
      << "\" viewBox=\"0 0 " << options.width << " " << options.height
      << "\">\n";
  svg << "  <rect width=\"100%\" height=\"100%\" fill=\"white\"/>\n";

  // Title.
  svg << "  <text x=\"" << options.width / 2 << "\" y=\"20\" "
      << "text-anchor=\"middle\" font-family=\"sans-serif\" font-size=\""
      << options.label_font_size + 3 << "\" font-weight=\"bold\">"
      << EscapeXml(chart.title) << "</text>\n";

  // Legend.
  const double legend_y = layout.margin_top - 12;
  svg << "  <rect x=\"" << Num(layout.margin_left) << "\" y=\""
      << Num(legend_y - 9) << "\" width=\"10\" height=\"10\" fill=\""
      << options.target_color << "\"/>\n"
      << "  <text x=\"" << Num(layout.margin_left + 14) << "\" y=\""
      << Num(legend_y) << "\" font-family=\"sans-serif\" font-size=\""
      << options.label_font_size << "\">" << EscapeXml(chart.target_legend)
      << "</text>\n";
  svg << "  <rect x=\"" << Num(layout.margin_left + 120) << "\" y=\""
      << Num(legend_y - 9) << "\" width=\"10\" height=\"10\" fill=\""
      << options.comparison_color << "\"/>\n"
      << "  <text x=\"" << Num(layout.margin_left + 134) << "\" y=\""
      << Num(legend_y) << "\" font-family=\"sans-serif\" font-size=\""
      << options.label_font_size << "\">"
      << EscapeXml(chart.comparison_legend) << "</text>\n";

  // Axes.
  const double x0 = layout.margin_left;
  const double y0 = layout.margin_top + layout.plot_height;
  svg << "  <line x1=\"" << Num(x0) << "\" y1=\"" << Num(layout.margin_top)
      << "\" x2=\"" << Num(x0) << "\" y2=\"" << Num(y0)
      << "\" stroke=\"black\"/>\n";
  svg << "  <line x1=\"" << Num(x0) << "\" y1=\"" << Num(y0) << "\" x2=\""
      << Num(x0 + layout.plot_width) << "\" y2=\"" << Num(y0)
      << "\" stroke=\"black\"/>\n";

  // Y-axis ticks at 0, max/2, max.
  for (const double frac : {0.0, 0.5, 1.0}) {
    const double y = y0 - frac * layout.plot_height;
    svg << "  <line x1=\"" << Num(x0 - 4) << "\" y1=\"" << Num(y)
        << "\" x2=\"" << Num(x0) << "\" y2=\"" << Num(y)
        << "\" stroke=\"black\"/>\n";
    svg << "  <text x=\"" << Num(x0 - 8) << "\" y=\"" << Num(y + 4)
        << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
        << "font-size=\"" << options.label_font_size - 2 << "\">"
        << common::FormatDouble(max_value * frac, 2) << "</text>\n";
  }

  // Grouped bars.
  const size_t n = chart.labels.size();
  if (n > 0) {
    const double group_width = layout.plot_width / static_cast<double>(n);
    const double bar_width = group_width * 0.35;
    for (size_t i = 0; i < n; ++i) {
      const double group_x = x0 + group_width * static_cast<double>(i);
      const double t_h =
          std::max(0.0, chart.target[i]) / max_value * layout.plot_height;
      const double c_h = std::max(0.0, chart.comparison[i]) / max_value *
                         layout.plot_height;
      AppendBar(svg, group_x + group_width * 0.12, y0 - t_h, bar_width,
                t_h, options.target_color);
      AppendBar(svg, group_x + group_width * 0.53, y0 - c_h, bar_width,
                c_h, options.comparison_color);
      // X label, rotated when crowded.
      const double label_x = group_x + group_width / 2;
      if (n <= 8) {
        svg << "  <text x=\"" << Num(label_x) << "\" y=\"" << Num(y0 + 16)
            << "\" text-anchor=\"middle\" font-family=\"sans-serif\" "
            << "font-size=\"" << options.label_font_size - 2 << "\">"
            << EscapeXml(chart.labels[i]) << "</text>\n";
      } else {
        svg << "  <text x=\"" << Num(label_x) << "\" y=\"" << Num(y0 + 10)
            << "\" text-anchor=\"end\" font-family=\"sans-serif\" "
            << "font-size=\"" << options.label_font_size - 3
            << "\" transform=\"rotate(-45 " << Num(label_x) << " "
            << Num(y0 + 10) << ")\">" << EscapeXml(chart.labels[i])
            << "</text>\n";
      }
    }
  }

  svg << "</svg>\n";
  return svg.str();
}

std::string RenderHtmlReport(const std::string& title,
                             const std::vector<GroupedBarChart>& charts,
                             const SvgChartOptions& options) {
  std::ostringstream html;
  html << "<!DOCTYPE html>\n<html>\n<head>\n<meta charset=\"utf-8\">\n"
       << "<title>" << EscapeXml(title) << "</title>\n"
       << "<style>body{font-family:sans-serif;max-width:"
       << options.width + 60
       << "px;margin:2em auto;}figure{margin:1.5em 0;}</style>\n"
       << "</head>\n<body>\n<h1>" << EscapeXml(title) << "</h1>\n";
  for (size_t i = 0; i < charts.size(); ++i) {
    html << "<figure>\n" << RenderSvg(charts[i], options) << "</figure>\n";
  }
  html << "</body>\n</html>\n";
  return html.str();
}

common::Status WriteHtmlReport(const std::string& path,
                               const std::string& title,
                               const std::vector<GroupedBarChart>& charts,
                               const SvgChartOptions& options) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return common::Status::IoError("cannot open file for write: " + path);
  }
  out << RenderHtmlReport(title, charts, options);
  if (!out) {
    return common::Status::IoError("write failed: " + path);
  }
  return common::Status::OK();
}

}  // namespace muve::viz
