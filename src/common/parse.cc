#include "common/parse.h"

#include <charconv>
#include <cmath>
#include <locale>
#include <sstream>

namespace muve::common {

namespace {

std::string Quoted(std::string_view text) {
  std::string out = "'";
  // Bound the echoed token so a pathological input can't balloon the
  // diagnostic (and with it, a protocol error frame).
  constexpr size_t kMaxEcho = 64;
  if (text.size() <= kMaxEcho) {
    out.append(text);
  } else {
    out.append(text.substr(0, kMaxEcho));
    out += "...";
  }
  out += "'";
  return out;
}

bool IsDigit(char c) { return c >= '0' && c <= '9'; }

// Validates the exact grammar both int and double parsing accept:
//   sign? ( digits ('.' digits?)? | '.' digits ) ( [eE] sign? digits )?
// The validator is what keeps the from_chars and fallback paths
// identical: strtod-family fallbacks would otherwise accept hex floats,
// "inf", "nan", and locale decimal points that from_chars never does.
bool ValidDoubleToken(std::string_view text) {
  size_t i = 0;
  const size_t n = text.size();
  if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
  size_t int_digits = 0;
  while (i < n && IsDigit(text[i])) ++i, ++int_digits;
  size_t frac_digits = 0;
  if (i < n && text[i] == '.') {
    ++i;
    while (i < n && IsDigit(text[i])) ++i, ++frac_digits;
  }
  if (int_digits + frac_digits == 0) return false;
  if (i < n && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < n && (text[i] == '+' || text[i] == '-')) ++i;
    size_t exp_digits = 0;
    while (i < n && IsDigit(text[i])) ++i, ++exp_digits;
    if (exp_digits == 0) return false;
  }
  return i == n;
}

}  // namespace

Result<int64_t> ParseInt64Strict(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty integer token");
  }
  // from_chars rejects a leading '+'; accept it here so "+5" parses the
  // way every other numeric frontend treats it.
  std::string_view body = text;
  if (body.front() == '+') {
    body.remove_prefix(1);
    if (body.empty() || body.front() == '-' || body.front() == '+') {
      return Status::InvalidArgument("cannot parse " + Quoted(text) +
                                     " as an integer");
    }
  }
  int64_t value = 0;
  const char* begin = body.data();
  const char* end = body.data() + body.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value, 10);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("integer " + Quoted(text) +
                                   " is out of int64 range");
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("cannot parse " + Quoted(text) +
                                   " as an integer");
  }
  return value;
}

Result<double> ParseDoubleStrict(std::string_view text) {
  if (text.empty()) {
    return Status::InvalidArgument("empty numeric token");
  }
  if (!ValidDoubleToken(text)) {
    return Status::InvalidArgument("cannot parse " + Quoted(text) +
                                   " as a number");
  }
  std::string_view body = text;
  if (body.front() == '+') body.remove_prefix(1);  // from_chars rejects '+'
  double value = 0.0;
#if defined(__cpp_lib_to_chars) && __cpp_lib_to_chars >= 201611L
  const char* begin = body.data();
  const char* end = body.data() + body.size();
  const auto [ptr, ec] = std::from_chars(begin, end, value);
  if (ec == std::errc::result_out_of_range) {
    return Status::InvalidArgument("number " + Quoted(text) +
                                   " is out of double range");
  }
  if (ec != std::errc() || ptr != end) {
    return Status::InvalidArgument("cannot parse " + Quoted(text) +
                                   " as a number");
  }
#else
  // Fallback: classic-locale stream extraction.  The validator above has
  // already pinned the grammar, so this only converts digits.
  std::istringstream in{std::string(body)};
  in.imbue(std::locale::classic());
  in >> value;
  if (!in || !in.eof()) {
    return Status::InvalidArgument("cannot parse " + Quoted(text) +
                                   " as a number");
  }
#endif
  if (!std::isfinite(value)) {
    return Status::InvalidArgument("number " + Quoted(text) +
                                   " is out of double range");
  }
  return value;
}

Result<int64_t> ParseFlagInt64(std::string_view flag, std::string_view text,
                               int64_t min_value, int64_t max_value) {
  auto parsed = ParseInt64Strict(text);
  if (!parsed.ok() || *parsed < min_value || *parsed > max_value) {
    return Status::InvalidArgument(
        std::string(flag) + ": expected an integer in [" +
        std::to_string(min_value) + ", " + std::to_string(max_value) +
        "], got " + Quoted(text));
  }
  return *parsed;
}

Result<double> ParseFlagDouble(std::string_view flag, std::string_view text,
                               double min_value, double max_value) {
  auto parsed = ParseDoubleStrict(text);
  if (!parsed.ok() || *parsed < min_value || *parsed > max_value) {
    std::ostringstream range;
    range.imbue(std::locale::classic());
    range << min_value << ", " << max_value;
    return Status::InvalidArgument(std::string(flag) +
                                   ": expected a number in [" + range.str() +
                                   "], got " + Quoted(text));
  }
  return *parsed;
}

}  // namespace muve::common
