file(REMOVE_RECURSE
  "CMakeFiles/view_space_test.dir/core/view_space_test.cc.o"
  "CMakeFiles/view_space_test.dir/core/view_space_test.cc.o.d"
  "view_space_test"
  "view_space_test.pdb"
  "view_space_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_space_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
