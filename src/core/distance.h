// Distance functions between probability distributions (Eq. 1 / Eq. 2).
//
// The paper lists Euclidean distance (its default), Earth Mover's
// distance, and K-L divergence as candidate `dist` functions.  All
// implementations here are normalized into [0, 1] because the
// multi-objective utility (Eq. 5) requires every objective on that scale:
//
//   Euclidean:  ||p - q||_2 / sqrt(2)         (sqrt(2) = max for two dists)
//   Manhattan:  ||p - q||_1 / 2               (total variation distance)
//   Chebyshev:  max_i |p_i - q_i|             (already <= 1)
//   EMD:        1-D earth mover's on bin indexes, / (b - 1)
//   KL:         symmetric (Jeffreys) divergence with epsilon smoothing,
//               squashed via 1 - exp(-J/2)
//   JS:         Jensen-Shannon divergence with log base 2 (in [0, 1])

#ifndef MUVE_CORE_DISTANCE_H_
#define MUVE_CORE_DISTANCE_H_

#include <cstddef>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace muve::core {

enum class DistanceKind {
  kEuclidean = 0,
  kManhattan,
  kChebyshev,
  kEarthMovers,
  kKlDivergence,
  kJensenShannon,
};

const char* DistanceKindName(DistanceKind kind);
common::Result<DistanceKind> DistanceKindFromName(std::string_view name);

// Computes the normalized distance between two equal-length probability
// distributions of length `n`.  Returns 0 for empty or singleton inputs
// where the metric is degenerate (e.g. EMD with one bin).  The dense
// cores (Euclidean/Manhattan/Chebyshev/EMD) dispatch through the SIMD
// kernel layer (common/simd/simd.h); KL and JS stay scalar
// (transcendental-bound).  Span-style view: callers pass scratch buffers
// without materializing vectors.
double Distance(DistanceKind kind, const double* p, const double* q,
                size_t n);

// Thin vector overload (tests, cold paths).  Aborts (debug) on length
// mismatch.
double Distance(DistanceKind kind, const std::vector<double>& p,
                const std::vector<double>& q);

}  // namespace muve::core

#endif  // MUVE_CORE_DISTANCE_H_
