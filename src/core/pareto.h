// Pareto-front (skyline) analysis over the three objectives.
//
// The paper collapses (D, A, S) into a weighted sum (Eq. 5), which
// requires the analyst to fix alpha weights up front.  The dominance
// view is weight-free: candidate c1 dominates c2 when c1 is at least as
// good on every objective and strictly better on one; the Pareto front
// is the set of non-dominated candidates.  Two classic facts connect the
// formulations, and both are enforced by tests:
//
//   * every weighted-sum optimum (for strictly positive weights) lies on
//     the Pareto front, so MuVE's top-1 under any such weights is always
//     a front member;
//   * the front is exactly the set of candidates that *could* be top-1
//     under some monotone preference.
//
// The front is computed from an ExplorationSession-style score table —
// i.e. it reuses the materialized (D, A, S) values and adds no query
// cost.

#ifndef MUVE_CORE_PARETO_H_
#define MUVE_CORE_PARETO_H_

#include <vector>

#include "common/status.h"
#include "core/candidate.h"
#include "core/exploration_session.h"

namespace muve::core {

// One objective triple in the dominance analysis.
struct ParetoPoint {
  View view;
  int bins = 1;
  double deviation = 0.0;
  double accuracy = 0.0;
  double usability = 0.0;
};

// True when `a` dominates `b`: >= on all three objectives, > on at least
// one.
bool Dominates(const ParetoPoint& a, const ParetoPoint& b);

// Returns the non-dominated subset of `points`, in input order.
// O(n^2) pairwise filtering — candidate tables are thousands of points.
std::vector<ParetoPoint> ParetoFront(const std::vector<ParetoPoint>& points);

// Materializes all candidate scores for `dataset` (via an
// ExplorationSession pass) and returns the Pareto front across every
// (view, bins) candidate.  `per_view` restricts the front to at most one
// candidate per non-binned view is NOT applied — dominance already
// handles redundancy; callers wanting the distinct-view constraint can
// post-filter.
common::Result<std::vector<ParetoPoint>> ComputeParetoFront(
    const data::Dataset& dataset,
    DistanceKind distance = DistanceKind::kEuclidean);

}  // namespace muve::core

#endif  // MUVE_CORE_PARETO_H_
