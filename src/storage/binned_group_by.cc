#include "storage/binned_group_by.h"

#include <cmath>

#include "common/simd/simd.h"

namespace muve::storage {

int BinIndexFor(double value, double lo, double hi, int num_bins) {
  // Single source of truth: the SIMD layer's reference semantics (every
  // vectorized bin_index_into kernel is pinned bit-exact against it).
  return common::simd::BinIndexReference(value, lo, hi, num_bins);
}

common::Result<BinnedResult> BinnedAggregate(
    const Table& table, const RowSet& rows, std::string_view dimension,
    std::string_view measure, AggregateFunction function, int num_bins,
    double lo, double hi) {
  if (num_bins < 1) {
    return common::Status::InvalidArgument(
        "number of bins must be >= 1, got " + std::to_string(num_bins));
  }
  if (hi < lo) {
    return common::Status::InvalidArgument("binning range is inverted");
  }
  MUVE_ASSIGN_OR_RETURN(const Column* dim, table.ColumnByName(dimension));
  MUVE_ASSIGN_OR_RETURN(const Column* mea, table.ColumnByName(measure));
  if (dim->type() == ValueType::kString) {
    return common::Status::TypeMismatch(
        "cannot bin string dimension '" + std::string(dimension) + "'");
  }
  if (mea->type() == ValueType::kString &&
      function != AggregateFunction::kCount) {
    return common::Status::TypeMismatch(
        "cannot aggregate string measure '" + std::string(measure) +
        "' with " + AggregateName(function));
  }

  std::vector<AggregateAccumulator> bins(
      static_cast<size_t>(num_bins), AggregateAccumulator(function));
  const bool is_count = function == AggregateFunction::kCount;
  for (uint32_t row : rows) {
    if (dim->IsNull(row)) continue;
    // SQL semantics: COUNT(M) also ignores NULL measures.
    if (mea->IsNull(row)) continue;
    const double v = dim->NumericAt(row);
    const int idx = BinIndexFor(v, lo, hi, num_bins);
    bins[static_cast<size_t>(idx)].Add(is_count ? 1.0 : mea->NumericAt(row));
  }

  BinnedResult out;
  out.lo = lo;
  out.hi = hi;
  out.num_bins = num_bins;
  out.aggregates.reserve(bins.size());
  out.row_counts.reserve(bins.size());
  for (const auto& acc : bins) {
    out.aggregates.push_back(acc.Finish());
    out.row_counts.push_back(acc.count());
  }
  return out;
}

}  // namespace muve::storage
