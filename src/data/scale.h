// The scale workload: a deterministic synthetic table that can be
// generated at any size (10^6 .. 10^8 rows) for ingest and chunk-skip
// benchmarking.
//
// Unlike the diab/nba generators (sequential RNG state), every row here
// is a pure function of (seed, row index): generating rows [0, N) in
// one shot is bit-identical to generating [0, k) and later appending
// [k, N).  That is the property the append-vs-reload differential tests
// and the ingest benchmark rest on.
//
// Columns (all integer-valued, so base-histogram delta merges are
// bit-exact — integer sums stay below 2^53 at these scales):
//   day     int64, CLUSTERED: row / rows_per_day.  Monotone with the
//           row index, so per-chunk zone maps can skip whole chunks for
//           day-range predicates — the selective-predicate story.
//   region  string in {"north","south","east","west"} (dictionary).
//   x, y    int64 dimensions (0..120 / 0..48), day-drifting means.
//   m1, m2  int64 measures (0..~2000), correlated with x / y.
//
// The bundled workload recommends over dims {x, y}, measures {m1, m2},
// with predicate "day >= <last quarter>" — selective AND clustered.

#ifndef MUVE_DATA_SCALE_H_
#define MUVE_DATA_SCALE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

#include "data/dataset.h"
#include "storage/schema.h"
#include "storage/table.h"

namespace muve::data {

inline constexpr uint64_t kScaleDefaultSeed = 0x5CA1EULL;

struct ScaleSpec {
  size_t rows = 1'000'000;
  uint64_t seed = kScaleDefaultSeed;
  // Rows per `day` value; 0 derives rows/64 (>= 1) so every size has
  // ~64 days and the default predicate keeps ~25% of rows.
  size_t rows_per_day = 0;
};

// One generated row (plain ints; the string column is an index into
// kScaleRegions so streaming writers need not allocate).
struct ScaleRow {
  int64_t day;
  uint32_t region;  // index into kScaleRegions
  int64_t x;
  int64_t y;
  int64_t m1;
  int64_t m2;
};

inline constexpr const char* kScaleRegions[4] = {"north", "south", "east",
                                                "west"};

// The row at `index` under `spec` — pure, position-independent.
ScaleRow ScaleRowAt(const ScaleSpec& spec, size_t index);

storage::Schema ScaleSchema();

// Materializes rows [begin, end) as a table (chunked storage; pass a
// small `chunk_rows` in tests to exercise multi-chunk behavior at toy
// sizes).
std::shared_ptr<storage::Table> MakeScaleTable(
    const ScaleSpec& spec, size_t begin, size_t end,
    size_t chunk_rows = storage::kDefaultChunkRows);

// The SQL predicate text the bundled workload uses ("day >= D", with D
// at the final quarter of the day domain).
std::string ScalePredicateSql(const ScaleSpec& spec);

// Full exploration workload over rows [0, spec.rows): dims {x, y},
// measures {m1, m2}, SUM/AVG, predicate ScalePredicateSql.
Dataset MakeScaleDataset(const ScaleSpec& spec,
                         size_t chunk_rows = storage::kDefaultChunkRows);

// Streams rows [begin, end) as CSV to `out` in O(1) memory (plus the
// header when `begin == 0`).  Output is byte-identical to
// WriteCsvString(MakeScaleTable(spec, begin, end)) minus the header
// when begin > 0, so chunked emission concatenates cleanly.
void WriteScaleCsv(std::ostream& out, const ScaleSpec& spec, size_t begin,
                   size_t end);

}  // namespace muve::data

#endif  // MUVE_DATA_SCALE_H_
