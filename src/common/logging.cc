#include "common/logging.h"

namespace muve::common {

namespace {
LogLevel g_threshold = LogLevel::kInfo;
}  // namespace

LogLevel GetLogThreshold() { return g_threshold; }

void SetLogThreshold(LogLevel level) { g_threshold = level; }

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARNING";
    case LogLevel::kError:
      return "ERROR";
    case LogLevel::kFatal:
      return "FATAL";
  }
  return "UNKNOWN";
}

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  stream_ << "[" << LogLevelName(level) << " " << file << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= g_threshold || level_ == LogLevel::kFatal) {
    std::cerr << stream_.str() << std::endl;
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace muve::common
