#include "core/distribution.h"

#include <cmath>

#include "common/simd/simd.h"

namespace muve::core {

double NormalizeToDistribution(const double* src, size_t n, double* dst) {
  return common::simd::ActiveKernels().normalize_into(src, n, dst);
}

std::vector<double> NormalizeToDistribution(
    const std::vector<double>& aggregates) {
  std::vector<double> p(aggregates.size());
  if (aggregates.empty()) return p;
  NormalizeToDistribution(aggregates.data(), aggregates.size(), p.data());
  return p;
}

bool IsDistribution(const std::vector<double>& p, double tolerance) {
  double total = 0.0;
  for (double v : p) {
    if (v < -tolerance || std::isnan(v)) return false;
    total += v;
  }
  return std::abs(total - 1.0) <= tolerance;
}

}  // namespace muve::core
