#include "storage/csv.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"
#include "common/parse.h"
#include "common/stopwatch.h"
#include "common/string_util.h"

namespace muve::storage {

namespace {

// Splits one logical CSV record into fields, honoring double quotes with
// "" escapes.  `pos` advances past the record (including the newline).
common::Result<std::vector<std::string>> ParseRecord(const std::string& text,
                                                     size_t* pos,
                                                     char delimiter) {
  std::vector<std::string> fields;
  std::string current;
  bool in_quotes = false;
  size_t i = *pos;
  const size_t n = text.size();
  while (i < n) {
    const char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          current.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      current.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      in_quotes = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      fields.push_back(std::move(current));
      current.clear();
      ++i;
      continue;
    }
    if (c == '\n' || c == '\r') {
      // Consume the newline (handles \r\n).
      if (c == '\r' && i + 1 < n && text[i + 1] == '\n') ++i;
      ++i;
      break;
    }
    current.push_back(c);
    ++i;
  }
  if (in_quotes) {
    return common::Status::ParseError("unterminated quoted CSV field");
  }
  fields.push_back(std::move(current));
  *pos = i;
  return fields;
}

bool ParseInt64(const std::string& text, int64_t* out) {
  auto parsed = common::ParseInt64Strict(common::Trim(text));
  if (!parsed.ok()) return false;
  *out = *parsed;
  return true;
}

// Locale-independent (common/parse.h): a CSV's "1.5" is 1.5 no matter
// what LC_NUMERIC the host process runs under, and inf/nan/hex-float
// spellings are rejected by policy (they fall through to string typing
// under inference, or a ParseError under an explicit numeric schema).
bool ParseDouble(const std::string& text, double* out) {
  auto parsed = common::ParseDoubleStrict(common::Trim(text));
  if (!parsed.ok()) return false;
  *out = *parsed;
  return true;
}

// True when `d` is integral and inside int64's representable range, so
// static_cast<int64_t>(d) is well defined.  The bounds are exact double
// values: -2^63 is representable, and the upper comparison uses 2^63
// (also representable) exclusively — a plain cast-and-compare against
// INT64_MAX would itself be UB for cells like "1e30" or "9.3e18".
bool FitsInt64Exactly(double d) {
  constexpr double kLower = -9223372036854775808.0;  // -2^63
  constexpr double kUpper = 9223372036854775808.0;   // 2^63
  return d >= kLower && d < kUpper && d == std::trunc(d);
}

common::Result<Value> ParseCell(const std::string& raw, ValueType type) {
  if (common::Trim(raw).empty()) return Value::Null();
  switch (type) {
    case ValueType::kInt64: {
      int64_t v;
      if (ParseInt64(raw, &v)) return Value(v);
      // Accept integral doubles like "3.0" (or "9e18") in an int column,
      // but only when the value actually fits int64.
      double d;
      if (ParseDouble(raw, &d) && FitsInt64Exactly(d)) {
        return Value(static_cast<int64_t>(d));
      }
      return common::Status::ParseError("cannot parse '" + raw +
                                        "' as int64");
    }
    case ValueType::kDouble: {
      double v;
      if (ParseDouble(raw, &v)) return Value(v);
      return common::Status::ParseError("cannot parse '" + raw +
                                        "' as double");
    }
    case ValueType::kString:
      return Value(raw);
    case ValueType::kNull:
      return Value::Null();
  }
  return common::Status::Internal("bad ValueType");
}

// Infers the narrowest type that parses every non-empty cell of a column.
ValueType InferType(const std::vector<std::vector<std::string>>& records,
                    size_t col) {
  bool all_int = true;
  bool all_double = true;
  bool any_non_empty = false;
  for (const auto& rec : records) {
    if (col >= rec.size()) continue;
    const std::string& cell = rec[col];
    if (common::Trim(cell).empty()) continue;
    any_non_empty = true;
    int64_t iv;
    double dv;
    if (!ParseInt64(cell, &iv)) all_int = false;
    if (!ParseDouble(cell, &dv)) all_double = false;
    if (!all_double) break;
  }
  if (!any_non_empty) return ValueType::kString;
  if (all_int) return ValueType::kInt64;
  if (all_double) return ValueType::kDouble;
  return ValueType::kString;
}

}  // namespace

common::Result<Table> ReadCsvString(const std::string& text,
                                    const CsvOptions& options,
                                    CsvLoadStats* stats) {
  common::Stopwatch timer;
  size_t pos = 0;
  if (text.empty()) {
    return common::Status::ParseError("empty CSV input");
  }
  if (text.size() > options.max_bytes) {
    return common::Status::IoError(
        "CSV input is " + std::to_string(text.size()) +
        " bytes, exceeds max_bytes=" + std::to_string(options.max_bytes));
  }
  MUVE_ASSIGN_OR_RETURN(const std::vector<std::string> header,
                        ParseRecord(text, &pos, options.delimiter));

  std::vector<std::vector<std::string>> records;
  // One record per newline (quoted embedded newlines over-count, blank
  // trailing lines slightly so; both only over-reserve).
  records.reserve(static_cast<size_t>(
      std::count(text.begin() + static_cast<ptrdiff_t>(std::min(pos, text.size())),
                 text.end(), '\n') +
      1));
  // Poll cadence for options.exec: cheap relative to parsing ~4K records
  // yet fine-grained enough that a cancel lands within milliseconds.
  constexpr size_t kExecPollRows = 4096;
  while (pos < text.size()) {
    if (options.exec != nullptr && records.size() % kExecPollRows == 0 &&
        options.exec->Expired()) {
      return options.exec->ExpiryStatus();
    }
    const size_t before = pos;
    MUVE_ASSIGN_OR_RETURN(std::vector<std::string> rec,
                          ParseRecord(text, &pos, options.delimiter));
    if (pos == before) break;  // no progress; defensive
    // Skip fully blank trailing lines.
    if (rec.size() == 1 && common::Trim(rec[0]).empty()) continue;
    if (rec.size() != header.size()) {
      return common::Status::ParseError(
          "CSV record has " + std::to_string(rec.size()) + " fields, header has " +
          std::to_string(header.size()));
    }
    records.push_back(std::move(rec));
  }

  Schema schema;
  if (options.schema.has_value()) {
    const Schema& want = *options.schema;
    if (want.num_fields() != header.size()) {
      return common::Status::ParseError(
          "schema arity does not match CSV header");
    }
    for (size_t i = 0; i < header.size(); ++i) {
      if (!common::EqualsIgnoreCase(common::Trim(header[i]),
                                    want.field(i).name)) {
        return common::Status::ParseError(
            "CSV header '" + header[i] + "' does not match schema field '" +
            want.field(i).name + "'");
      }
    }
    schema = want;
  } else {
    for (size_t i = 0; i < header.size(); ++i) {
      const std::string name(common::Trim(header[i]));
      if (name.empty()) {
        return common::Status::ParseError("empty CSV header name");
      }
      MUVE_RETURN_IF_ERROR(
          schema.AddField(Field(name, InferType(records, i))));
    }
  }

  Table table(schema);
  table.Reserve(records.size());
  std::vector<Value> row(schema.num_fields());
  for (const auto& rec : records) {
    if (options.exec != nullptr &&
        table.num_rows() % kExecPollRows == 0 && options.exec->Expired()) {
      return options.exec->ExpiryStatus();
    }
    for (size_t i = 0; i < rec.size(); ++i) {
      MUVE_ASSIGN_OR_RETURN(row[i], ParseCell(rec[i], schema.field(i).type));
    }
    MUVE_RETURN_IF_ERROR(table.AppendRow(row));
  }
  if (stats != nullptr) {
    stats->rows = static_cast<int64_t>(table.num_rows());
    stats->bytes = static_cast<int64_t>(text.size());
    stats->parse_ms = timer.ElapsedMillis();
  }
  return table;
}

common::Result<Table> ReadCsvFile(const std::string& path,
                                  const CsvOptions& options,
                                  CsvLoadStats* stats) {
  common::Stopwatch timer;
  // Injected read failure: model a disk that disappears under us.  The
  // caller sees the same IoError a real ENXIO would produce, so the whole
  // Result<> propagation chain (CLI exit code included) is testable
  // without actual hardware faults.
  if (MUVE_FAILPOINT("csv.read") == common::FailpointAction::kError) {
    return common::Status::IoError("failpoint csv.read: injected read error");
  }
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return common::Status::IoError("cannot open file: " + path);
  }
  // Pre-size the buffer from the file length: one allocation + one read
  // instead of stream-buffer chunk growth.
  const std::streamoff size = in.tellg();
  if (size < 0) {
    return common::Status::IoError("cannot stat file: " + path);
  }
  // Size guard BEFORE the allocation: a >2 GiB (by default) file must not
  // drag the process through an allocation of that size just to be
  // rejected, and std::streamoff → size_t narrowing below stays safe.
  if (static_cast<uint64_t>(size) > options.max_bytes) {
    return common::Status::IoError(
        "file " + path + " is " + std::to_string(size) +
        " bytes, exceeds max_bytes=" + std::to_string(options.max_bytes));
  }
  in.seekg(0, std::ios::beg);
  std::string text(static_cast<size_t>(size), '\0');
  if (size > 0 && !in.read(text.data(), size)) {
    return common::Status::IoError("read failed: " + path);
  }
  const double io_ms = timer.ElapsedMillis();
  MUVE_ASSIGN_OR_RETURN(Table table, ReadCsvString(text, options, stats));
  if (stats != nullptr) stats->parse_ms += io_ms;
  return table;
}

namespace {

std::string EscapeCsvField(const std::string& field, char delimiter) {
  const bool needs_quotes =
      field.find(delimiter) != std::string::npos ||
      field.find('"') != std::string::npos ||
      field.find('\n') != std::string::npos ||
      field.find('\r') != std::string::npos;
  if (!needs_quotes) return field;
  std::string out = "\"";
  for (char c : field) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

std::string WriteCsvString(const Table& table, char delimiter) {
  std::ostringstream out;
  const Schema& schema = table.schema();
  for (size_t c = 0; c < schema.num_fields(); ++c) {
    if (c > 0) out << delimiter;
    out << EscapeCsvField(schema.field(c).name, delimiter);
  }
  out << "\n";
  for (size_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < schema.num_fields(); ++c) {
      if (c > 0) out << delimiter;
      out << EscapeCsvField(table.At(r, c).ToString(), delimiter);
    }
    out << "\n";
  }
  return out.str();
}

common::Status WriteCsvFile(const Table& table, const std::string& path,
                            char delimiter) {
  std::ofstream out(path, std::ios::binary);
  if (!out) {
    return common::Status::IoError("cannot open file for write: " + path);
  }
  out << WriteCsvString(table, delimiter);
  if (!out) {
    return common::Status::IoError("write failed: " + path);
  }
  return common::Status::OK();
}

}  // namespace muve::storage
