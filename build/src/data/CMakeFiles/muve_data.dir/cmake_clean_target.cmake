file(REMOVE_RECURSE
  "libmuve_data.a"
)
