
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/candidate.cc" "src/core/CMakeFiles/muve_core.dir/candidate.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/candidate.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/muve_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/distance.cc" "src/core/CMakeFiles/muve_core.dir/distance.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/distance.cc.o.d"
  "/root/repo/src/core/distribution.cc" "src/core/CMakeFiles/muve_core.dir/distribution.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/distribution.cc.o.d"
  "/root/repo/src/core/exec_stats.cc" "src/core/CMakeFiles/muve_core.dir/exec_stats.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/exec_stats.cc.o.d"
  "/root/repo/src/core/exploration_session.cc" "src/core/CMakeFiles/muve_core.dir/exploration_session.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/exploration_session.cc.o.d"
  "/root/repo/src/core/fidelity.cc" "src/core/CMakeFiles/muve_core.dir/fidelity.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/fidelity.cc.o.d"
  "/root/repo/src/core/horizontal_search.cc" "src/core/CMakeFiles/muve_core.dir/horizontal_search.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/horizontal_search.cc.o.d"
  "/root/repo/src/core/objectives.cc" "src/core/CMakeFiles/muve_core.dir/objectives.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/objectives.cc.o.d"
  "/root/repo/src/core/pareto.cc" "src/core/CMakeFiles/muve_core.dir/pareto.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/pareto.cc.o.d"
  "/root/repo/src/core/partitioner.cc" "src/core/CMakeFiles/muve_core.dir/partitioner.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/partitioner.cc.o.d"
  "/root/repo/src/core/recommend_sql.cc" "src/core/CMakeFiles/muve_core.dir/recommend_sql.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/recommend_sql.cc.o.d"
  "/root/repo/src/core/recommender.cc" "src/core/CMakeFiles/muve_core.dir/recommender.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/recommender.cc.o.d"
  "/root/repo/src/core/search_options.cc" "src/core/CMakeFiles/muve_core.dir/search_options.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/search_options.cc.o.d"
  "/root/repo/src/core/top_k_tracker.cc" "src/core/CMakeFiles/muve_core.dir/top_k_tracker.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/top_k_tracker.cc.o.d"
  "/root/repo/src/core/utility.cc" "src/core/CMakeFiles/muve_core.dir/utility.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/utility.cc.o.d"
  "/root/repo/src/core/view.cc" "src/core/CMakeFiles/muve_core.dir/view.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/view.cc.o.d"
  "/root/repo/src/core/view_evaluator.cc" "src/core/CMakeFiles/muve_core.dir/view_evaluator.cc.o" "gcc" "src/core/CMakeFiles/muve_core.dir/view_evaluator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/data/CMakeFiles/muve_data.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/muve_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/muve_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/muve_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
