// Predicate-keyed selection-vector cache: cross-request sharing of WHERE
// filtering work.
//
// `muved` sessions repeatedly ask for the same (dataset, predicate) row
// selections — same analyst query from many users, or the same predicate
// spelled with its AND/OR operands permuted.  Filtering is a full-table
// scan per request; this cache stores the resulting selection vector
// (storage::RowSet) keyed by the caller's composed string — by convention
// `<dataset> \x01 <epoch> \x01 CanonicalPredicateKey(pred)` — so the scan
// runs once per distinct selection per epoch and every later request
// copies the rows instead of rescanning.
//
// Epoch-based invalidation: the cache itself never inspects keys.  The
// owner (server/muved_server.cc) bumps a per-dataset epoch on any ingest
// or explicit invalidation, making stale entries unreachable; they age
// out through normal LRU eviction.
//
// Same concurrency shape as BaseHistogramCache: 16-way shard-locked LRU
// under a byte budget, entries immutable once inserted and handed out as
// shared_ptr<const>, so eviction never invalidates a selection a request
// is still consuming.  Unlike BaseHistogramCache there is no build-
// under-lock path — filtering needs the table and a bound predicate, so
// callers Get, scan on miss, then Put (first insert wins).
//
// Stats contract (pinned by tests/storage/selection_cache_test.cc):
// hits + misses == lookups, always.

#ifndef MUVE_STORAGE_SELECTION_CACHE_H_
#define MUVE_STORAGE_SELECTION_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "storage/table.h"

namespace muve::storage {

class SelectionCache {
 public:
  struct Options {
    // Total byte budget across shards.  Selection vectors are 4 bytes a
    // row, so the default holds ~2M cached selected rows.
    size_t max_bytes = size_t{8} << 20;  // 8 MiB
    size_t num_shards = 16;
  };

  struct Stats {
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
    int64_t bytes = 0;  // currently retained
  };

  // Two overloads instead of one defaulted argument (same reason as
  // BaseHistogramCache: the nested struct is incomplete at the point a
  // `= Options()` default would be evaluated).
  SelectionCache();
  explicit SelectionCache(Options options);

  // The cached selection for `key`, or nullptr.  Counts one lookup and
  // one hit or miss; a hit refreshes LRU order.
  std::shared_ptr<const RowSet> Get(const std::string& key);

  // Inserts `rows` under `key`.  First insert wins: a concurrent filler
  // of the same key keeps the existing entry (both were filtered from
  // identical table state — the epoch in the key pins that).
  void Put(const std::string& key, std::shared_ptr<const RowSet> rows);

  // Drops every entry.  Outstanding shared_ptrs stay valid.
  void Clear();

  // Aggregated across shards.
  Stats TotalStats() const;

  size_t max_bytes() const { return options_.max_bytes; }

 private:
  struct Shard {
    mutable std::mutex mu;
    // Front = most recently used.
    std::list<std::string> lru;
    struct Entry {
      std::shared_ptr<const RowSet> rows;
      std::list<std::string>::iterator lru_it;
      size_t bytes = 0;
    };
    std::unordered_map<std::string, Entry> entries;
    size_t bytes = 0;
    int64_t lookups = 0;
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t insertions = 0;
    int64_t evictions = 0;
  };

  Shard& ShardFor(const std::string& key);
  const Shard& ShardFor(const std::string& key) const;

  Options options_;
  size_t per_shard_budget_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace muve::storage

#endif  // MUVE_STORAGE_SELECTION_CACHE_H_
