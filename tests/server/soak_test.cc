// Socket-layer soak: a bounded storm of well-behaved, overloading, and
// actively hostile traffic against an in-process muved with deliberately
// tight limits, followed by an exact accounting audit.
//
// What "passes" means here (DESIGN.md §14):
//   * the server still answers after the storm — no wedged gate, no dead
//     accept loop;
//   * the admission ledger balances EXACTLY at quiescence:
//       offered == admitted + shed_queue_full + shed_timeout
//                + shed_deadline + rejected_stopping
//     (an off-by-one means a slot or counter leaked under contention);
//   * after Stop(), the process returns to its pre-soak /proc/self/task
//     thread count and /proc/self/fd descriptor count — handler threads
//     and sockets are reclaimed, not leaked.
//
// Runtime is bounded by MUVE_SOAK_MS (default 1500 ms — a smoke level
// that still drives thousands of admissions; CI's soak leg raises it).
// When MUVE_SOAK_REPORT names a file, the final ledger is written there
// as JSON so CI can archive the counter-balance evidence.
//
// Labeled tsan+faults: the interesting failures are exactly the races a
// -DMUVE_SANITIZE=thread build catches.

#include <dirent.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "server/client.h"
#include "server/json.h"
#include "server/muved_server.h"
#include "server/protocol.h"

namespace muve::server {
namespace {

using Clock = std::chrono::steady_clock;

int64_t EnvInt(const char* name, int64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  return std::strtoll(value, nullptr, 10);
}

// Counts entries under a /proc/self directory.  The count includes ".",
// ".." and (for fd) the directory stream's own descriptor — a constant
// bias, so before/after comparisons are exact.
int CountProcEntries(const char* path) {
  DIR* dir = ::opendir(path);
  if (dir == nullptr) return -1;
  int count = 0;
  while (::readdir(dir) != nullptr) ++count;
  ::closedir(dir);
  return count;
}

int CountFds() { return CountProcEntries("/proc/self/fd"); }
int CountThreads() { return CountProcEntries("/proc/self/task"); }

// Names of every live thread (for the leak-check failure message).
std::string DescribeThreads() {
  std::string out;
  DIR* dir = ::opendir("/proc/self/task");
  if (dir == nullptr) return out;
  while (struct dirent* entry = ::readdir(dir)) {
    if (entry->d_name[0] == '.') continue;
    std::string comm_path =
        std::string("/proc/self/task/") + entry->d_name + "/comm";
    std::ifstream comm(comm_path);
    std::string name;
    std::getline(comm, name);
    out += std::string(entry->d_name) + ":" + name + " ";
  }
  ::closedir(dir);
  return out;
}

// Polls `count` until it returns `target` (kernel-side teardown of
// sockets can lag a close by a scheduling quantum).
bool SettleTo(int target, int (*count)(), int budget_ms) {
  for (int waited = 0; waited < budget_ms; waited += 20) {
    if (count() == target) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  return count() == target;
}

void BestEffortSend(int fd, const void* data, size_t len) {
  (void)::send(fd, data, len, MSG_NOSIGNAL | MSG_DONTWAIT);
}

JsonValue Op(const std::string& op) {
  JsonValue r = JsonValue::Object();
  r.Set("op", JsonValue::String(op));
  return r;
}

// ---------------------------------------------------------------------------
// Hostile acts.  Each opens its own connection, misbehaves, and leaves;
// none of them may take the server (or this process) down.

void ChaosTornFrame(int port) {
  auto fd = DialLocal(port);
  if (!fd.ok()) return;
  BestEffortSend(*fd, "\x00\x00", 2);  // header fragment, then hang up
  ::close(*fd);
}

void ChaosOversizedPrefix(int port) {
  auto fd = DialLocal(port);
  if (!fd.ok()) return;
  BestEffortSend(*fd, "\xff\xff\xff\xff", 4);  // 4 GiB promise
  ::close(*fd);
}

void ChaosMidFrameStall(int port, std::mt19937_64* rng) {
  auto fd = DialLocal(port);
  if (!fd.ok()) return;
  const unsigned char header[4] = {0, 0, 0, 64};  // promise 64 bytes
  BestEffortSend(*fd, header, 4);
  BestEffortSend(*fd, "{{{{{{{{{{{{{{{{", 16);  // deliver a quarter
  // Sometimes outlives the server's frame timeout (slowloris caught),
  // sometimes hangs up first (torn frame) — both paths get exercised.
  std::this_thread::sleep_for(std::chrono::milliseconds(1 + (*rng)() % 120));
  ::close(*fd);
}

void ChaosSilentSitter(int port) {
  auto fd = DialLocal(port);
  if (!fd.ok()) return;
  // Past the server's idle timeout: the reaper should hang up on us.
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  ::close(*fd);
}

void ChaosRstClose(int port) {
  auto fd = DialLocal(port);
  if (!fd.ok()) return;
  (void)WriteMessage(*fd, Op("ping"));
  struct linger hard = {1, 0};  // close() sends RST, not FIN
  ::setsockopt(*fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
  ::close(*fd);
}

void ChaosNeverReadingWriter(int port, std::mt19937_64* rng) {
  auto fd = DialLocal(port);
  if (!fd.ok()) return;
  for (int i = 0; i < 4; ++i) (void)WriteMessage(*fd, Op("ping"));
  std::this_thread::sleep_for(std::chrono::milliseconds(1 + (*rng)() % 20));
  ::close(*fd);  // responses still queued server-side — never read
}

void ChaosConnectAndLeave(int port) {
  auto fd = DialLocal(port);
  if (fd.ok()) ::close(*fd);
}

struct SoakTally {
  int64_t ok = 0;
  int64_t degraded = 0;
  int64_t sheds = 0;
  int64_t transport = 0;
  int64_t other_errors = 0;
};

// One well-behaved-but-demanding client: retrying mixed traffic, heavy
// on deadline-bound NBA recommends that hold execution slots long enough
// to keep the tiny gate saturated.
void WorkloadThread(int port, int seed, const std::atomic<bool>* stop,
                    SoakTally* tally) {
  RetryPolicy policy;
  policy.max_attempts = 3;
  policy.base_backoff_ms = 2;
  policy.max_backoff_ms = 20;
  policy.jitter_seed = static_cast<uint64_t>(seed) * 0x9e3779b97f4a7c15ULL + 1;
  RetryingClient client(port, policy);
  int64_t i = 0;
  while (!stop->load(std::memory_order_relaxed)) {
    JsonValue request;
    switch (i++ % 8) {
      case 0:
        request = Op("ping");
        break;
      case 1:
        request = Op("health");
        break;
      case 2: {  // fast toy recommend
        request = Op("recommend");
        request.Set("dataset", JsonValue::String("toy"));
        request.Set("k", JsonValue::Int(3));
        request.Set("include_timings", JsonValue::Bool(true));
        break;
      }
      default: {  // slot-holding NBA recommend, bounded by its deadline
        request = Op("recommend");
        request.Set("dataset", JsonValue::String("nba"));
        request.Set("k", JsonValue::Int(5));
        request.Set("deadline_ms", JsonValue::Double(i % 7 == 0 ? 0.0 : 25.0));
        break;
      }
    }
    auto response = client.Call(request);
    if (!response.ok()) {
      ++tally->transport;
      continue;
    }
    if (IsOverloadedResponse(*response)) {
      ++tally->sheds;
      continue;
    }
    const JsonValue* ok = response->Find("ok");
    if (ok != nullptr && ok->is_bool() && ok->bool_value()) {
      ++tally->ok;
      const JsonValue* degraded = response->Find("degraded");
      if (degraded != nullptr && degraded->is_bool() &&
          degraded->bool_value()) {
        ++tally->degraded;
      }
    } else {
      ++tally->other_errors;
    }
  }
  tally->sheds += static_cast<int64_t>(client.stats().sheds_seen);
  tally->transport += static_cast<int64_t>(client.stats().transport_errors);
}

void ChaosThread(int port, int seed, const std::atomic<bool>* stop) {
  std::mt19937_64 rng(static_cast<uint64_t>(seed) * 131071u + 7u);
  while (!stop->load(std::memory_order_relaxed)) {
    switch (rng() % 7) {
      case 0: ChaosTornFrame(port); break;
      case 1: ChaosOversizedPrefix(port); break;
      case 2: ChaosMidFrameStall(port, &rng); break;
      case 3: ChaosRstClose(port); break;
      case 4: ChaosNeverReadingWriter(port, &rng); break;
      case 5: ChaosSilentSitter(port); break;
      default: ChaosConnectAndLeave(port); break;
    }
  }
}

TEST(MuvedSoakTest, StormThenExactAccountingAndNoLeaks) {
  const int64_t soak_ms = EnvInt("MUVE_SOAK_MS", 1500);

  // Warm lazy per-process machinery before taking baselines: a
  // sanitizer runtime spawns its background thread on the first
  // pthread_create, and that thread (correctly) never exits.
  std::thread([] {}).join();

  // Baselines before any server state exists.
  const int fds_before = CountFds();
  const int threads_before = CountThreads();
  ASSERT_GT(fds_before, 0);
  ASSERT_GT(threads_before, 0);

  ServerOptions options;
  options.port = 0;
  // Tight enough that the workload alone overloads it: one execution
  // slot, one queue seat, six clients whose traffic is 60% recommends.
  options.max_concurrent = 1;
  options.max_queue = 1;
  options.queue_timeout_ms = 10;
  options.idle_timeout_ms = 250;   // ChaosSilentSitter outsits this
  options.frame_timeout_ms = 60;   // ChaosMidFrameStall outsits this
  options.write_timeout_ms = 200;
  options.max_connections = 32;
  {
    MuvedServer server(options);
    ASSERT_TRUE(server.Start().ok());
    const int port = server.port();

    std::atomic<bool> stop{false};
    constexpr int kWorkers = 6;
    constexpr int kChaos = 3;
    std::vector<SoakTally> tallies(kWorkers);
    std::vector<std::thread> threads;
    threads.reserve(kWorkers + kChaos);
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back(WorkloadThread, port, w, &stop, &tallies[w]);
    }
    for (int c = 0; c < kChaos; ++c) {
      threads.emplace_back(ChaosThread, port, c, &stop);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(soak_ms));
    stop.store(true, std::memory_order_relaxed);
    for (auto& t : threads) t.join();

    // 1. Still alive: a fresh session gets a real answer.  (Retrying:
    // the accept-time cap may briefly count chaos corpses until the
    // accept loop's next reap pass.)
    RetryPolicy policy;
    policy.max_attempts = 20;
    policy.base_backoff_ms = 10;
    policy.max_backoff_ms = 100;
    RetryingClient prober(port, policy);
    auto pong = prober.Call(Op("ping"));
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_TRUE(pong->Find("ok")->bool_value()) << pong->Write();
    prober.Disconnect();

    // 1b. Deterministic saturation.  The chaotic storm usually sheds on
    // its own, but on a slow single-core host a lucky schedule can
    // drain every queue before it overflows.  Pin the gate regardless:
    // four simultaneous slot-holding recommends (non-cacheable via
    // include_timings, so none can bypass admission through the result
    // cache; one-shot clients, so every attempt hits the gate exactly
    // once) against one slot and one queue seat must shed the excess —
    // the admitted run holds its slot for ~deadline_ms, a window no
    // scheduler stagger outlasts.
    {
      constexpr int kBurst = 4;
      std::vector<std::thread> burst;
      burst.reserve(kBurst);
      for (int b = 0; b < kBurst; ++b) {
        burst.emplace_back([port]() {
          RetryPolicy one_shot;
          one_shot.max_attempts = 1;
          RetryingClient client(port, one_shot);
          JsonValue request = Op("recommend");
          request.Set("dataset", JsonValue::String("nba"));
          request.Set("scheme", JsonValue::String("hc-linear"));
          request.Set("k", JsonValue::Int(5));
          request.Set("deadline_ms", JsonValue::Double(200.0));
          request.Set("include_timings", JsonValue::Bool(true));
          (void)client.Call(request);
        });
      }
      for (auto& t : burst) t.join();
    }

    // 2. The ledger balances exactly at quiescence.
    const auto counters = server.counters();
    const int64_t accounted =
        counters.requests_admitted + counters.requests_shed_queue_full +
        counters.requests_shed_timeout + counters.requests_shed_deadline +
        counters.requests_rejected_stopping;
    EXPECT_EQ(counters.requests_offered, accounted)
        << "admission ledger leaked: offered=" << counters.requests_offered
        << " admitted=" << counters.requests_admitted
        << " shed_full=" << counters.requests_shed_queue_full
        << " shed_timeout=" << counters.requests_shed_timeout
        << " shed_deadline=" << counters.requests_shed_deadline
        << " rejected=" << counters.requests_rejected_stopping;
    EXPECT_GT(counters.requests_offered, 0);
    EXPECT_GT(counters.requests_admitted, 0);
    // Six clients contending for one slot and one queue seat must shed:
    // a shed-free storm means the gate was not actually exercised.
    EXPECT_GT(counters.requests_shed_queue_full +
                  counters.requests_shed_timeout +
                  counters.requests_shed_deadline,
              0);

    SoakTally total;
    for (const auto& t : tallies) {
      total.ok += t.ok;
      total.degraded += t.degraded;
      total.sheds += t.sheds;
      total.transport += t.transport;
      total.other_errors += t.other_errors;
    }
    EXPECT_GT(total.ok, 0);
    // Strict protocol traffic never yields a non-shed error.
    EXPECT_EQ(total.other_errors, 0);

    if (const char* report = std::getenv("MUVE_SOAK_REPORT");
        report != nullptr && *report != '\0') {
      JsonValue summary = JsonValue::Object();
      summary.Set("soak_ms", JsonValue::Int(soak_ms));
      summary.Set("offered", JsonValue::Int(counters.requests_offered));
      summary.Set("admitted", JsonValue::Int(counters.requests_admitted));
      summary.Set("shed_queue_full",
                  JsonValue::Int(counters.requests_shed_queue_full));
      summary.Set("shed_timeout",
                  JsonValue::Int(counters.requests_shed_timeout));
      summary.Set("shed_deadline",
                  JsonValue::Int(counters.requests_shed_deadline));
      summary.Set("rejected_stopping",
                  JsonValue::Int(counters.requests_rejected_stopping));
      summary.Set("ledger_balanced",
                  JsonValue::Bool(counters.requests_offered == accounted));
      summary.Set("connections_accepted",
                  JsonValue::Int(counters.connections_accepted));
      summary.Set("connections_shed",
                  JsonValue::Int(counters.connections_shed));
      summary.Set("idle_timeouts", JsonValue::Int(counters.idle_timeouts));
      summary.Set("frame_timeouts", JsonValue::Int(counters.frame_timeouts));
      summary.Set("write_timeouts", JsonValue::Int(counters.write_timeouts));
      summary.Set("client_ok", JsonValue::Int(total.ok));
      summary.Set("client_degraded", JsonValue::Int(total.degraded));
      summary.Set("client_sheds", JsonValue::Int(total.sheds));
      summary.Set("client_transport_errors", JsonValue::Int(total.transport));
      std::ofstream out(report, std::ios::trunc);
      out << summary.Write() << "\n";
      ASSERT_TRUE(out.good()) << "could not write " << report;
    }

    server.Stop();
  }

  // 3. Everything the storm created is gone: handler threads and every
  // socket (server, client, and chaos casualties alike).
  EXPECT_TRUE(SettleTo(threads_before, CountThreads, 5000))
      << "thread count " << CountThreads() << " != baseline " << threads_before
      << " — live: " << DescribeThreads();
  EXPECT_TRUE(SettleTo(fds_before, CountFds, 5000))
      << "fd count " << CountFds() << " != baseline " << fds_before;
}

}  // namespace
}  // namespace muve::server
