#include "core/utility.h"

#include <cmath>

#include "common/logging.h"
#include "common/string_util.h"

namespace muve::core {

common::Status Weights::Validate() const {
  const double values[] = {deviation, accuracy, usability};
  for (const double v : values) {
    if (v < 0.0 || v > 1.0 || std::isnan(v)) {
      return common::Status::InvalidArgument(
          "alpha weights must lie in [0, 1]; got " + ToString());
    }
  }
  const double sum = deviation + accuracy + usability;
  if (std::abs(sum - 1.0) > 1e-6) {
    return common::Status::InvalidArgument(
        "alpha weights must sum to 1; got " + ToString());
  }
  return common::Status::OK();
}

std::string Weights::ToString() const {
  return "(aD=" + common::FormatDouble(deviation, 3) +
         ", aA=" + common::FormatDouble(accuracy, 3) +
         ", aS=" + common::FormatDouble(usability, 3) + ")";
}

double Usability(int bins) {
  MUVE_DCHECK(bins >= 1) << "bins must be >= 1";
  return 1.0 / static_cast<double>(bins);
}

double Utility(const Weights& w, double deviation, double accuracy,
               double usability) {
  return w.deviation * deviation + w.accuracy * accuracy +
         w.usability * usability;
}

double UtilityUpperBound(const Weights& w, double usability) {
  return w.deviation + w.accuracy + w.usability * usability;
}

}  // namespace muve::core
