file(REMOVE_RECURSE
  "CMakeFiles/muve_viz.dir/bar_chart.cc.o"
  "CMakeFiles/muve_viz.dir/bar_chart.cc.o.d"
  "CMakeFiles/muve_viz.dir/svg_chart.cc.o"
  "CMakeFiles/muve_viz.dir/svg_chart.cc.o.d"
  "libmuve_viz.a"
  "libmuve_viz.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_viz.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
