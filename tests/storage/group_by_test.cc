#include "storage/group_by.h"

#include <gtest/gtest.h>

#include "storage/table.h"

namespace muve::storage {
namespace {

class GroupByTest : public ::testing::Test {
 protected:
  GroupByTest()
      : table_(Schema({{"dim", ValueType::kInt64},
                       {"m", ValueType::kDouble},
                       {"label", ValueType::kString}})) {
    Append(2, 10.0);
    Append(1, 1.0);
    Append(2, 20.0);
    Append(3, 5.0);
    Append(1, 3.0);
  }

  void Append(int64_t d, double m) {
    ASSERT_TRUE(
        table_.AppendRow({Value(d), Value(m), Value("x")}).ok());
  }

  Table table_;
};

TEST_F(GroupByTest, SumGroupsSortedByKey) {
  auto result = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim",
                                 "m", AggregateFunction::kSum);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups(), 3u);
  EXPECT_EQ(result->keys[0], Value(int64_t{1}));
  EXPECT_EQ(result->keys[1], Value(int64_t{2}));
  EXPECT_EQ(result->keys[2], Value(int64_t{3}));
  EXPECT_DOUBLE_EQ(result->aggregates[0], 4.0);
  EXPECT_DOUBLE_EQ(result->aggregates[1], 30.0);
  EXPECT_DOUBLE_EQ(result->aggregates[2], 5.0);
  EXPECT_EQ(result->row_counts[1], 2u);
}

TEST_F(GroupByTest, RestrictedRowSet) {
  const RowSet rows = {0, 1};  // only first two rows
  auto result = GroupByAggregate(table_, rows, "dim", "m",
                                 AggregateFunction::kSum);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->num_groups(), 2u);
  EXPECT_DOUBLE_EQ(result->aggregates[0], 1.0);   // key 1
  EXPECT_DOUBLE_EQ(result->aggregates[1], 10.0);  // key 2
}

TEST_F(GroupByTest, AvgAndCount) {
  auto avg = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim", "m",
                              AggregateFunction::kAvg);
  ASSERT_TRUE(avg.ok());
  EXPECT_DOUBLE_EQ(avg->aggregates[1], 15.0);

  auto count = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim",
                                "m", AggregateFunction::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->aggregates[0], 2.0);
}

TEST_F(GroupByTest, NullDimensionRowsSkipped) {
  ASSERT_TRUE(
      table_.AppendRow({Value::Null(), Value(99.0), Value("x")}).ok());
  auto result = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim",
                                 "m", AggregateFunction::kSum);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 3u);
  double total = 0;
  for (double g : result->aggregates) total += g;
  EXPECT_DOUBLE_EQ(total, 39.0);  // 99 not included
}

TEST_F(GroupByTest, NullMeasureSkippedExceptCount) {
  ASSERT_TRUE(
      table_.AppendRow({Value(int64_t{1}), Value::Null(), Value("x")}).ok());
  auto sum = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim", "m",
                              AggregateFunction::kSum);
  ASSERT_TRUE(sum.ok());
  EXPECT_DOUBLE_EQ(sum->aggregates[0], 4.0);  // unchanged

  // COUNT(m) also skips NULL measures per SQL semantics.
  auto count = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim",
                                "m", AggregateFunction::kCount);
  ASSERT_TRUE(count.ok());
  EXPECT_DOUBLE_EQ(count->aggregates[0], 2.0);
}

TEST_F(GroupByTest, StringMeasureOnlyCountable) {
  auto sum = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim",
                              "label", AggregateFunction::kSum);
  EXPECT_FALSE(sum.ok());
  auto count = GroupByAggregate(table_, AllRows(table_.num_rows()), "dim",
                                "label", AggregateFunction::kCount);
  EXPECT_TRUE(count.ok());
}

TEST_F(GroupByTest, UnknownColumnsError) {
  EXPECT_FALSE(GroupByAggregate(table_, AllRows(5), "nope", "m",
                                AggregateFunction::kSum)
                   .ok());
  EXPECT_FALSE(GroupByAggregate(table_, AllRows(5), "dim", "nope",
                                AggregateFunction::kSum)
                   .ok());
}

TEST_F(GroupByTest, EmptyRowSetYieldsNoGroups) {
  auto result =
      GroupByAggregate(table_, RowSet{}, "dim", "m", AggregateFunction::kSum);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->num_groups(), 0u);
}

}  // namespace
}  // namespace muve::storage
