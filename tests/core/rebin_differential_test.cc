// Differential oracle for the base-histogram prefix-sum cache: the
// cached evaluator must produce the SAME objectives as the direct-scan
// evaluator, which serves as ground truth (the VizRec/Zeng framing: a
// recommendation loop is only trustworthy if validated against an
// oracle).  ~200 fuzzed (dataset, view, b, distance, alpha)
// configurations, plus recommender-level cache-on/off runs at 1 and 8
// threads.
//
// Exactness contract being pinned (see DESIGN.md §7):
//   * COUNT — bit-identical (integer counts, identical row-to-bin
//     assignment by construction).
//   * SUM / AVG over integer-valued measures — bit-identical: every
//     per-value partial sum is exactly representable, so the cache's
//     re-association (value order instead of row order) is lossless.
//   * SUM / AVG over fractional measures, STD / VAR — equal within 1e-9
//     relative tolerance (re-association / moment-form rounding).
//   * MIN / MAX — cache-ineligible; both evaluators run the direct scan,
//     so objectives are trivially identical (the gate is what's tested).
//
// Seeding: per-case seeds derive from MUVE_FUZZ_SEED (fixed default) via
// tests/fuzz_util.h; every failure prints the seeds to reproduce it.

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "core/recommender.h"
#include "core/view_evaluator.h"
#include "data/dataset.h"
#include "fuzz_util.h"
#include "storage/predicate.h"

namespace muve::core {
namespace {

struct FuzzConfig {
  bool integral_measures = false;   // floor() every measure value
  bool moment_functions = false;    // include STD/VAR in the workload
  bool minmax_functions = false;    // include MIN/MAX (cache-ineligible)
};

// Random exploration dataset: 1-3 integer dimensions, optional
// categorical, 1-3 measures with sporadic NULLs, selector sel in {0,1,2}.
data::Dataset RandomDataset(uint64_t seed, const FuzzConfig& config) {
  common::Rng rng(seed);
  const int num_numeric = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const bool with_categorical = rng.Bernoulli(0.3);
  const int num_measures = 1 + static_cast<int>(rng.UniformInt(0, 2));
  const size_t rows = 30 + static_cast<size_t>(rng.UniformInt(0, 90));

  storage::Schema schema;
  data::Dataset ds;
  for (int d = 0; d < num_numeric; ++d) {
    const std::string name = "dim" + std::to_string(d);
    MUVE_CHECK(schema
                   .AddField({name, storage::ValueType::kInt64,
                              storage::FieldRole::kDimension})
                   .ok());
    ds.dimensions.push_back(name);
  }
  if (with_categorical) {
    MUVE_CHECK(schema
                   .AddField({"cat", storage::ValueType::kString,
                              storage::FieldRole::kCategoricalDimension})
                   .ok());
    ds.categorical_dimensions.push_back("cat");
  }
  MUVE_CHECK(schema.AddField({"sel", storage::ValueType::kInt64}).ok());
  for (int m = 0; m < num_measures; ++m) {
    const std::string name = "m" + std::to_string(m);
    MUVE_CHECK(schema
                   .AddField({name, storage::ValueType::kDouble,
                              storage::FieldRole::kMeasure})
                   .ok());
    ds.measures.push_back(name);
  }

  auto table = std::make_shared<storage::Table>(schema);
  const char* cats[] = {"p", "q", "r"};
  std::vector<int64_t> ranges(static_cast<size_t>(num_numeric));
  for (auto& r : ranges) r = 4 + rng.UniformInt(0, 36);
  for (size_t i = 0; i < rows; ++i) {
    std::vector<storage::Value> row;
    for (int d = 0; d < num_numeric; ++d) {
      row.emplace_back(rng.UniformInt(0, ranges[static_cast<size_t>(d)]));
    }
    if (with_categorical) row.emplace_back(cats[rng.UniformInt(0, 2)]);
    row.emplace_back(rng.UniformInt(0, 2));  // sel
    for (int m = 0; m < num_measures; ++m) {
      if (rng.Bernoulli(0.05)) {
        row.emplace_back();  // NULL measure
      } else {
        double v = rng.Bernoulli(0.1)   ? 0.0
                   : rng.Bernoulli(0.1) ? rng.Uniform(-5, 0)
                                        : rng.Uniform(0, 20);
        if (config.integral_measures) v = std::floor(v);
        row.emplace_back(v);
      }
    }
    MUVE_CHECK(table->AppendRow(row).ok());
  }

  ds.name = "rebin-fuzz" + std::to_string(seed);
  ds.table = table;
  ds.functions = {storage::AggregateFunction::kSum,
                  storage::AggregateFunction::kAvg,
                  storage::AggregateFunction::kCount};
  if (config.moment_functions) {
    ds.functions.push_back(storage::AggregateFunction::kStd);
    ds.functions.push_back(storage::AggregateFunction::kVar);
  }
  if (config.minmax_functions) {
    ds.functions.push_back(storage::AggregateFunction::kMin);
    ds.functions.push_back(storage::AggregateFunction::kMax);
  }
  ds.query_predicate_sql = "sel = 1";
  auto pred = storage::MakeComparison("sel", storage::CompareOp::kEq,
                                      storage::Value(int64_t{1}));
  auto selected = storage::Filter(*table, pred.get());
  MUVE_CHECK(selected.ok());
  ds.target_rows = std::move(selected).value();
  if (ds.target_rows.empty()) ds.target_rows = {0};
  ds.all_rows = storage::AllRows(table->num_rows());
  return ds;
}

Weights RandomWeights(common::Rng& rng) {
  const double d = rng.Uniform(0.01, 1);
  const double a = rng.Uniform(0.01, 1);
  const double s = rng.Uniform(0.01, 1);
  const double total = d + a + s;
  return Weights{d / total, a / total, s / total};
}

// Whether a cached probe of `function` must be bit-identical to the
// direct scan on this dataset (per the contract at the top of the file).
bool MustBeBitExact(storage::AggregateFunction function, bool integral) {
  switch (function) {
    case storage::AggregateFunction::kCount:
    case storage::AggregateFunction::kMin:
    case storage::AggregateFunction::kMax:
      return true;  // COUNT: exact moments; MIN/MAX: both run direct.
    case storage::AggregateFunction::kSum:
    case storage::AggregateFunction::kAvg:
      return integral;
    case storage::AggregateFunction::kStd:
    case storage::AggregateFunction::kVar:
      return false;  // Welford vs moment form.
  }
  return false;
}

// === Evaluator-level differential: ~200 (dataset, view, b, distance,
// alpha) configurations.  40 parameterized cases x 5 probes each. ===

class RebinDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RebinDifferentialTest, CachedObjectivesMatchDirectOracle) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0xD1FFULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed * 31337);

  FuzzConfig config;
  config.integral_measures = (GetParam() % 2) == 0;
  config.moment_functions = rng.Bernoulli(0.5);
  config.minmax_functions = rng.Bernoulli(0.3);
  const data::Dataset ds = RandomDataset(seed, config);
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok()) << space.status().ToString();

  ViewEvaluator::Options direct_options;
  ViewEvaluator::Options cached_options;
  cached_options.use_base_histogram_cache = true;
  // A handful of cases also sample, proving the cache keys the SAMPLED
  // row sets (same sampling draw on both sides).
  if (rng.Bernoulli(0.25)) {
    const double fraction = 0.4 + rng.Uniform(0, 0.5);
    direct_options.sample_fraction = fraction;
    cached_options.sample_fraction = fraction;
    direct_options.sample_seed = seed;
    cached_options.sample_seed = seed;
  }

  const std::vector<View>& views = space->views();
  for (int probe = 0; probe < 5; ++probe) {
    const View& view = views[rng.UniformInt(0, views.size() - 1)];
    const DimensionInfo& dim = space->dimension_info(view.dimension);
    const int bins =
        1 + static_cast<int>(rng.UniformInt(0, dim.max_bins - 1));
    const DistanceKind distance =
        static_cast<DistanceKind>(rng.UniformInt(0, 5));
    direct_options.distance = distance;
    cached_options.distance = distance;
    // Fresh evaluators per probe so each (view, b, distance, alpha)
    // configuration is independent; histogram sharing across many probes
    // is pinned by RebinDifferentialStatsTest below.
    ViewEvaluator direct_probe(ds, *space, direct_options);
    ViewEvaluator cached_probe(ds, *space, cached_options);

    const double d_direct = direct_probe.EvaluateDeviation(view, bins);
    const double d_cached = cached_probe.EvaluateDeviation(view, bins);
    const double a_direct = direct_probe.EvaluateAccuracy(view, bins);
    const double a_cached = cached_probe.EvaluateAccuracy(view, bins);

    const std::string label =
        view.Label() + " b=" + std::to_string(bins) +
        " distance=" + std::to_string(static_cast<int>(distance)) +
        (config.integral_measures ? " [integral]" : " [fractional]");
    if (MustBeBitExact(view.function, config.integral_measures)) {
      EXPECT_EQ(d_cached, d_direct) << "deviation " << label;
      EXPECT_EQ(a_cached, a_direct) << "accuracy " << label;
    } else {
      EXPECT_NEAR(d_cached, d_direct, 1e-9 * (1.0 + std::abs(d_direct)))
          << "deviation " << label;
      EXPECT_NEAR(a_cached, a_direct, 1e-9 * (1.0 + std::abs(a_direct)))
          << "accuracy " << label;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebinDifferentialTest,
                         ::testing::Range<uint64_t>(1, 41));

// One cached evaluator probing a whole S-list must scan each (A, M) side
// once; the direct evaluator scans per probe.  This is the observable
// form of the O(1)-re-binning claim the bench relies on.
TEST(RebinDifferentialStatsTest, CachedEvaluatorScansEachSideOnce) {
  const uint64_t seed = testutil::FuzzSeed(12345);
  FuzzConfig config;
  config.integral_measures = true;
  const data::Dataset ds = RandomDataset(seed, config);
  auto space = ViewSpace::Create(ds);
  ASSERT_TRUE(space.ok());

  ViewEvaluator::Options cached_options;
  cached_options.use_base_histogram_cache = true;
  ViewEvaluator direct(ds, *space, {});
  ViewEvaluator cached(ds, *space, cached_options);

  const View* numeric_view = nullptr;
  for (const View& view : space->views()) {
    if (!space->dimension_info(view.dimension).categorical) {
      numeric_view = &view;
      break;
    }
  }
  ASSERT_NE(numeric_view, nullptr);
  const DimensionInfo& dim = space->dimension_info(numeric_view->dimension);
  for (int bins = 1; bins <= dim.max_bins; ++bins) {
    EXPECT_EQ(cached.EvaluateDeviation(*numeric_view, bins),
              direct.EvaluateDeviation(*numeric_view, bins));
    EXPECT_EQ(cached.EvaluateAccuracy(*numeric_view, bins),
              direct.EvaluateAccuracy(*numeric_view, bins));
  }
  // Cached: 2 builds (target + comparison side; the raw series reuses the
  // target-side histogram), each one row scan.  Direct: a scan per probe.
  EXPECT_EQ(cached.stats().base_builds, 2);
  EXPECT_GT(cached.stats().base_cache_hits, 0);
  EXPECT_EQ(cached.stats().rows_scanned,
            static_cast<int64_t>(ds.target_rows.size() +
                                 ds.all_rows.size()));
  // Direct: every one of the max_bins probes rescans both sides (plus
  // one raw scan); cached: those two side scans happen once, total.
  EXPECT_GE(direct.stats().rows_scanned,
            dim.max_bins * cached.stats().rows_scanned);
  EXPECT_EQ(direct.stats().base_builds, 0);
  EXPECT_EQ(direct.stats().base_cache_hits, 0);
}

// === Recommender-level differential: whole Linear-Linear searches with
// the cache on vs off, serial and at 8 threads. ===

class RebinRecommenderTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RebinRecommenderTest, TopKIdenticalWithCacheOnAndOff) {
  const uint64_t seed = testutil::FuzzSeed(GetParam() ^ 0x5EC0ULL);
  SCOPED_TRACE(testutil::FuzzTrace(GetParam(), seed));
  common::Rng rng(seed * 811);

  FuzzConfig config;
  config.integral_measures = (GetParam() % 2) == 0;
  config.moment_functions = rng.Bernoulli(0.4);
  config.minmax_functions = rng.Bernoulli(0.4);
  const data::Dataset ds = RandomDataset(seed, config);
  auto recommender = Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok()) << recommender.status().ToString();

  SearchOptions base;
  base.weights = RandomWeights(rng);
  base.k = 1 + static_cast<int>(rng.UniformInt(0, 5));
  base.distance = static_cast<DistanceKind>(rng.UniformInt(0, 5));
  base.horizontal = HorizontalStrategy::kLinear;
  base.vertical = VerticalStrategy::kLinear;

  for (const int threads : {1, 8}) {
    SearchOptions with_cache = base;
    with_cache.base_histogram_cache = true;
    with_cache.num_threads = threads;
    SearchOptions without_cache = base;
    without_cache.base_histogram_cache = false;
    without_cache.num_threads = threads;

    auto r_on = recommender->Recommend(with_cache);
    auto r_off = recommender->Recommend(without_cache);
    ASSERT_TRUE(r_on.ok()) << r_on.status().ToString();
    ASSERT_TRUE(r_off.ok()) << r_off.status().ToString();

    ASSERT_EQ(r_on->views.size(), r_off->views.size())
        << "threads=" << threads;
    const bool all_exact =
        config.integral_measures && !config.moment_functions;
    for (size_t i = 0; i < r_on->views.size(); ++i) {
      SCOPED_TRACE("threads=" + std::to_string(threads) + " rank " +
                   std::to_string(i));
      EXPECT_EQ(r_on->views[i].view.Key(), r_off->views[i].view.Key());
      EXPECT_EQ(r_on->views[i].bins, r_off->views[i].bins);
      if (all_exact) {
        // Bit-identical objectives => bit-identical utilities.
        EXPECT_EQ(r_on->views[i].utility, r_off->views[i].utility);
      } else {
        EXPECT_NEAR(r_on->views[i].utility, r_off->views[i].utility,
                    1e-9 * (1.0 + std::abs(r_off->views[i].utility)));
      }
    }
    // The observable saving: cache-on scans strictly fewer rows while
    // the query counters stay identical (the cache changes HOW a query
    // is served, never whether it is charged).
    EXPECT_EQ(r_on->stats.target_queries, r_off->stats.target_queries)
        << "threads=" << threads;
    EXPECT_EQ(r_on->stats.comparison_queries,
              r_off->stats.comparison_queries)
        << "threads=" << threads;
    EXPECT_LT(r_on->stats.rows_scanned, r_off->stats.rows_scanned)
        << "threads=" << threads;
    EXPECT_GT(r_on->stats.base_builds, 0) << "threads=" << threads;
    EXPECT_EQ(r_off->stats.base_builds, 0) << "threads=" << threads;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RebinRecommenderTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace muve::core
