// muved wire protocol: length-prefixed JSON frames over TCP.
//
// Frame layout (both directions):
//
//   +----------------+----------------------+
//   | 4 bytes, big-  | N bytes of UTF-8     |
//   | endian uint32 N| JSON (one object)    |
//   +----------------+----------------------+
//
// N must be in [1, kMaxFrameBytes].  Requests are objects with an "op"
// field ("ping", "use", "defaults", "recommend", "shutdown" — see
// README "muved" for the full field tables); responses always carry
// "ok" (bool) and echo "op".  Errors are
//
//   {"ok":false,"error":{"code":"<StatusCodeName>",
//                        "exit_code":<ExitCodeForStatus>,
//                        "message":"..."}}
//
// — the same typed-code table muve_cli exits with, so a scripted client
// can branch on cause identically over the wire and at the shell.
//
// This header also carries the blocking socket helpers both muved and
// the muve_loadgen client use.  All I/O loops over EINTR; a frame read
// distinguishes clean EOF (kNotFound — peer closed between frames) from
// a truncated frame or oversized length (kParseError / kIoError).

#ifndef MUVE_SERVER_PROTOCOL_H_
#define MUVE_SERVER_PROTOCOL_H_

#include <cstdint>
#include <string>

#include "common/status.h"
#include "server/json.h"

namespace muve::server {

// Hard cap on one frame's payload: large enough for any recommendation
// response, small enough that a hostile length prefix cannot make the
// server allocate gigabytes.
constexpr uint32_t kMaxFrameBytes = 16u * 1024u * 1024u;

// Reads exactly one frame's payload from `fd` into `*payload`.
//   kNotFound   — clean EOF before any length byte (peer hung up).
//   kParseError — length prefix of 0 or > kMaxFrameBytes (the connection
//                 cannot be resynchronized afterwards).
//   kIoError    — read error or EOF mid-frame.
common::Status ReadFrame(int fd, std::string* payload);

// Writes one frame (length prefix + payload).  kInvalidArgument when the
// payload exceeds kMaxFrameBytes; kIoError on short/failed writes.
common::Status WriteFrame(int fd, std::string_view payload);

// Convenience: WriteFrame(message.Write()).
common::Status WriteMessage(int fd, const JsonValue& message);

// Builds the protocol's error response for `status` (see header comment).
JsonValue ErrorResponse(const common::Status& status);

// Builds an ok response skeleton {"ok":true,"op":<op>}.
JsonValue OkResponse(std::string_view op);

// Client-side: connects to 127.0.0.1:`port` (muved binds loopback only),
// returning the connected fd.  The caller owns/closes it.
common::Result<int> DialLocal(int port);

// One blocking request/response exchange on an open connection.
common::Result<JsonValue> RoundTrip(int fd, const JsonValue& request);

}  // namespace muve::server

#endif  // MUVE_SERVER_PROTOCOL_H_
