file(REMOVE_RECURSE
  "CMakeFiles/fig05_alpha_s_cost.dir/bench/fig05_alpha_s_cost.cpp.o"
  "CMakeFiles/fig05_alpha_s_cost.dir/bench/fig05_alpha_s_cost.cpp.o.d"
  "bench/fig05_alpha_s_cost"
  "bench/fig05_alpha_s_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig05_alpha_s_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
