// Histogram construction over numeric series.
//
// Section III-A grounds MuVE's binned views in the database literature on
// histograms (Ioannidis; Jagadish et al.; Cormode et al.): a binned view
// is an equi-width histogram over the dimension, chosen over the more
// accurate non-uniform shapes because only equi-width bins render as a
// standard bar chart.  This module implements the three classic
// partitioning schemes so that claim is checkable in this codebase:
//
//   * equi-width  — uniform bucket width (what binned views use);
//   * equi-depth  — uniform mass per bucket (quantile boundaries);
//   * V-optimal   — minimum total SSE partition of the *sorted value
//                   series* into b buckets, via the O(n^2 b) dynamic
//                   program of Jagadish et al. (VLDB'98).
//
// The SSE helpers let tests and the `ablate_histogram` bench verify the
// textbook ordering SSE(V-optimal) <= SSE(equi-depth-ish) and
// SSE(V-optimal) <= SSE(equi-width) on real series.

#ifndef MUVE_STORAGE_HISTOGRAM_H_
#define MUVE_STORAGE_HISTOGRAM_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace muve::storage {

// One histogram bucket over positions [begin, end) of the input series,
// summarized by the mean of its values.
struct HistogramBucket {
  size_t begin = 0;  // first index (inclusive)
  size_t end = 0;    // last index (exclusive)
  double lo = 0.0;   // first value in the bucket
  double hi = 0.0;   // last value in the bucket
  double mean = 0.0;
  double sse = 0.0;  // sum squared error of values vs mean

  size_t count() const { return end - begin; }
};

struct Histogram {
  enum class Kind { kEquiWidth, kEquiDepth, kVOptimal };

  Kind kind = Kind::kEquiWidth;
  std::vector<HistogramBucket> buckets;

  // Total SSE across buckets (the approximation error the paper's
  // accuracy objective is built from).
  double TotalSse() const;

  std::string ToString() const;
};

const char* HistogramKindName(Histogram::Kind kind);

// Builds a histogram with (at most) `num_buckets` buckets over `values`.
// Input need not be sorted; a sorted copy is made internally (bucket
// indexes refer to the sorted order).  Errors: empty input or
// num_buckets < 1.
//
// Equi-width splits the value range into equal-width intervals (empty
// intervals produce no bucket).  Equi-depth puts ceil(n/b) values per
// bucket.  V-optimal minimizes total SSE exactly by dynamic programming —
// O(n^2 b) time, O(n b) space; intended for the n <= a-few-thousand
// series that view recommendation produces.
common::Result<Histogram> BuildHistogram(Histogram::Kind kind,
                                         std::vector<double> values,
                                         int num_buckets);

// SSE of approximating the sorted `values[begin..end)` by their mean.
// Exposed for tests; computed in O(1) from prefix sums inside the
// builders.
double SegmentSse(const std::vector<double>& sorted_values, size_t begin,
                  size_t end);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_HISTOGRAM_H_
