#include "core/objectives.h"

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "common/simd/simd.h"

namespace muve::core {

double AccuracyFromSeries(const std::vector<double>& raw_keys,
                          const std::vector<double>& raw_aggregates,
                          const storage::BinnedResult& binned) {
  MUVE_DCHECK(raw_keys.size() == raw_aggregates.size());
  const size_t t = raw_keys.size();
  if (t == 0) return 1.0;
  MUVE_DCHECK(binned.num_bins >= 1);

  const auto& kernels = common::simd::ActiveKernels();

  // Bin index per distinct key (bit-exact across dispatch levels).
  std::vector<int32_t> bin_of_key(t);
  kernels.bin_index_into(raw_keys.data(), t, binned.lo, binned.hi,
                         binned.num_bins, bin_of_key.data());

  // n_x: observed distinct values per bin (scatter; stays scalar).
  std::vector<size_t> distinct_per_bin(
      static_cast<size_t>(binned.num_bins), 0);
  for (size_t j = 0; j < t; ++j) {
    ++distinct_per_bin[static_cast<size_t>(bin_of_key[j])];
  }

  // Per-key representative (gather + the same divide as the historical
  // loop), then the relative-SSE reduction over the dense arrays.  In
  // scalar dispatch this computes bit-identically to the historical
  // fused loop: the per-element ops and their order are unchanged, the
  // g == 0 keys are skipped inside the kernel.
  std::vector<double> representative(t);
  for (size_t j = 0; j < t; ++j) {
    const size_t bin = static_cast<size_t>(bin_of_key[j]);
    representative[j] = binned.aggregates[bin] /
                        static_cast<double>(distinct_per_bin[bin]);
  }
  const double r = kernels.relative_sse(raw_aggregates.data(),
                                        representative.data(), t);
  const double accuracy = 1.0 - r / static_cast<double>(t);
  return std::clamp(accuracy, 0.0, 1.0);
}

}  // namespace muve::core
