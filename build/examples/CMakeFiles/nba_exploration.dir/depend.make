# Empty dependencies file for nba_exploration.
# This may be replaced when dependencies are built.
