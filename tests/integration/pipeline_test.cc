// Cross-module integration tests: the full pipeline from data generation
// through CSV round-trips, SQL, and recommendation.

#include <gtest/gtest.h>

#include "core/fidelity.h"
#include "core/recommend_sql.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "data/nba.h"
#include "sql/executor.h"
#include "storage/csv.h"
#include "storage/predicate.h"

namespace muve {
namespace {

// Recommendations computed from a dataset and from its CSV round-trip
// must be identical: CSV export/import is lossless for the workload.
TEST(PipelineTest, CsvRoundTripPreservesRecommendations) {
  const data::Dataset original = data::WithWorkloadSize(
      data::MakeDiabDataset(), 3, 3, 3);

  const std::string csv = storage::WriteCsvString(*original.table);
  storage::CsvOptions options;
  options.schema = original.table->schema();
  auto reread = storage::ReadCsvString(csv, options);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();

  data::Dataset roundtrip = original;
  roundtrip.table =
      std::make_shared<storage::Table>(std::move(reread).value());
  auto pred = storage::MakeComparison("Outcome", storage::CompareOp::kEq,
                                      storage::Value(int64_t{1}));
  auto rows = storage::Filter(*roundtrip.table, pred.get());
  ASSERT_TRUE(rows.ok());
  roundtrip.target_rows = std::move(rows).value();
  roundtrip.all_rows = storage::AllRows(roundtrip.table->num_rows());
  ASSERT_EQ(roundtrip.target_rows, original.target_rows);

  auto rec_a = core::Recommender::Create(original);
  auto rec_b = core::Recommender::Create(roundtrip);
  ASSERT_TRUE(rec_a.ok());
  ASSERT_TRUE(rec_b.ok());
  core::SearchOptions search;
  auto a = rec_a->Recommend(search);
  auto b = rec_b->Recommend(search);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->views.size(), b->views.size());
  for (size_t i = 0; i < a->views.size(); ++i) {
    EXPECT_EQ(a->views[i].view.Key(), b->views[i].view.Key());
    EXPECT_EQ(a->views[i].bins, b->views[i].bins);
    EXPECT_DOUBLE_EQ(a->views[i].utility, b->views[i].utility);
  }
}

// The SQL front end and the programmatic API agree on the binned view of
// the paper's V_{i,b} query shape.
TEST(PipelineTest, SqlBinnedViewMatchesEngineKernel) {
  const data::Dataset nba = data::MakeNbaDataset();
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("players", nba.table->Clone()).ok());

  auto via_sql = sql::ExecuteSql(
      "SELECT MP, SUM(3PAr) FROM players WHERE Team = 'GSW' "
      "GROUP BY MP NUMBER OF BINS 3",
      catalog);
  ASSERT_TRUE(via_sql.ok()) << via_sql.status().ToString();
  ASSERT_EQ(via_sql->num_rows(), 3u);

  auto via_engine = storage::BinnedAggregate(
      *nba.table, nba.target_rows, "MP", "3PAr",
      storage::AggregateFunction::kSum, 3, 0.0, 1440.0);
  ASSERT_TRUE(via_engine.ok());
  for (size_t b = 0; b < 3; ++b) {
    auto cell = via_sql->At(b, 2).ToDouble();
    ASSERT_TRUE(cell.ok());
    EXPECT_NEAR(*cell, via_engine->aggregates[b], 1e-9) << "bin " << b;
  }
}

// Golden regression: the default-seed DIAB recommendation is stable.
// If a deliberate algorithm change shifts these values, refresh them and
// note the cause in the commit; an unexplained diff is a bug.
TEST(PipelineTest, GoldenDiabRecommendation) {
  auto recommender = core::Recommender::Create(
      data::WithWorkloadSize(data::MakeDiabDataset(), 3, 3, 3));
  ASSERT_TRUE(recommender.ok());
  core::SearchOptions options;  // paper defaults
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok());
  ASSERT_EQ(rec->views.size(), 5u);
  // All top views are single-bin under the default aS = 0.6 (see
  // DESIGN.md note on the usability term pinning optimal b).
  for (const core::ScoredView& v : rec->views) {
    EXPECT_LE(v.bins, 2);
    EXPECT_GT(v.utility, 0.6);
    EXPECT_LE(v.utility, 1.0);
  }
  // Deterministic across runs.
  auto again = recommender->Recommend(options);
  ASSERT_TRUE(again.ok());
  for (size_t i = 0; i < rec->views.size(); ++i) {
    EXPECT_EQ(rec->views[i].view.Key(), again->views[i].view.Key());
    EXPECT_DOUBLE_EQ(rec->views[i].utility, again->views[i].utility);
  }
}

// Golden regression: the NBA Example-1 run surfaces a 3PAr view on top.
TEST(PipelineTest, GoldenNbaExampleOneViewWins) {
  auto recommender = core::Recommender::Create(
      data::WithWorkloadSize(data::MakeNbaDataset(), 3, 3, 3));
  ASSERT_TRUE(recommender.ok());
  core::SearchOptions options;
  options.weights = core::Weights{0.6, 0.2, 0.2};
  auto rec = recommender->Recommend(options);
  ASSERT_TRUE(rec.ok());
  ASSERT_FALSE(rec->views.empty());
  EXPECT_EQ(rec->views.front().view.measure, "3PAr");
  EXPECT_GE(rec->views.front().deviation, 0.3);
}

// RECOMMEND through SQL equals the programmatic recommender for the same
// workload definition.
TEST(PipelineTest, SqlRecommendMatchesProgrammaticApi) {
  const data::Dataset nba = data::MakeNbaDataset();
  sql::Catalog catalog;
  ASSERT_TRUE(catalog.RegisterTable("players", nba.table->Clone()).ok());
  auto via_sql = core::RecommendSql(
      "RECOMMEND TOP 4 VIEWS FROM players WHERE Team = 'GSW' USING MUVE "
      "WEIGHTS (0.6, 0.2, 0.2)",
      catalog);
  ASSERT_TRUE(via_sql.ok()) << via_sql.status().ToString();

  // Programmatic equivalent: same roles-derived workload.
  data::Dataset ds = nba;
  ds.dimensions =
      nba.table->schema().FieldNamesWithRole(storage::FieldRole::kDimension);
  ds.categorical_dimensions = nba.table->schema().FieldNamesWithRole(
      storage::FieldRole::kCategoricalDimension);
  ds.measures =
      nba.table->schema().FieldNamesWithRole(storage::FieldRole::kMeasure);
  auto recommender = core::Recommender::Create(ds);
  ASSERT_TRUE(recommender.ok());
  core::SearchOptions options;
  options.k = 4;
  options.weights = core::Weights{0.6, 0.2, 0.2};
  auto direct = recommender->Recommend(options);
  ASSERT_TRUE(direct.ok());

  ASSERT_EQ(via_sql->views.size(), direct->views.size());
  for (size_t i = 0; i < direct->views.size(); ++i) {
    EXPECT_NEAR(via_sql->views[i].utility, direct->views[i].utility, 1e-9);
  }
}

}  // namespace
}  // namespace muve
