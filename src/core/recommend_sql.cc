#include "core/recommend_sql.h"

#include <memory>

#include "common/stopwatch.h"
#include "common/string_util.h"
#include "sql/parser.h"
#include "storage/predicate.h"

namespace muve::core {

namespace {

common::Result<SearchOptions> OptionsFromStatement(
    const sql::RecommendStatement& stmt) {
  SearchOptions options;
  options.k = stmt.top_k;
  options.weights = Weights{stmt.alpha_d, stmt.alpha_a, stmt.alpha_s};
  MUVE_ASSIGN_OR_RETURN(options.distance,
                        DistanceKindFromName(stmt.distance));

  const std::string scheme = common::ToUpper(stmt.scheme);
  if (scheme == "LINEAR") {
    options.horizontal = HorizontalStrategy::kLinear;
    options.vertical = VerticalStrategy::kLinear;
  } else if (scheme == "HC") {
    options.horizontal = HorizontalStrategy::kHillClimbing;
    options.vertical = VerticalStrategy::kLinear;
  } else if (scheme == "MUVE_LINEAR") {
    options.horizontal = HorizontalStrategy::kMuve;
    options.vertical = VerticalStrategy::kLinear;
  } else if (scheme == "MUVE") {
    options.horizontal = HorizontalStrategy::kMuve;
    options.vertical = VerticalStrategy::kMuve;
  } else {
    return common::Status::InvalidArgument(
        "unknown recommendation scheme '" + stmt.scheme +
        "' (expected LINEAR, HC, MUVE_LINEAR, or MUVE)");
  }
  return options;
}

}  // namespace

common::Result<Recommendation> ExecuteRecommend(sql::RecommendStatement& stmt,
                                                const sql::Catalog& catalog) {
  MUVE_ASSIGN_OR_RETURN(const storage::Table* table,
                        catalog.GetTable(stmt.table_name));
  if (stmt.where == nullptr) {
    return common::Status::InvalidArgument(
        "RECOMMEND requires a WHERE predicate selecting the analyzed "
        "subset D_Q");
  }

  data::Dataset dataset;
  dataset.name = stmt.table_name;
  // The catalog owns the table and outlives the recommendation; alias it
  // without taking ownership.
  dataset.table = std::shared_ptr<const storage::Table>(
      table, [](const storage::Table*) {});
  dataset.dimensions =
      table->schema().FieldNamesWithRole(storage::FieldRole::kDimension);
  dataset.categorical_dimensions = table->schema().FieldNamesWithRole(
      storage::FieldRole::kCategoricalDimension);
  dataset.measures =
      table->schema().FieldNamesWithRole(storage::FieldRole::kMeasure);
  dataset.functions = {storage::AggregateFunction::kSum,
                       storage::AggregateFunction::kAvg,
                       storage::AggregateFunction::kCount};
  if ((dataset.dimensions.empty() && dataset.categorical_dimensions.empty()) ||
      dataset.measures.empty()) {
    return common::Status::InvalidArgument(
        "table '" + stmt.table_name +
        "' has no dimension/measure role annotations; RECOMMEND needs a "
        "schema with FieldRole::kDimension and kMeasure fields");
  }
  dataset.query_predicate_sql = stmt.where->ToString();
  // Setup accounting: the predicate scan selecting D_Q runs through the
  // selection-vector kernels; its eliminated-row count and wall-clock are
  // reported on the recommendation's ExecStats as one-off setup cost.
  common::Stopwatch filter_timer;
  storage::FilterStats filter_stats;
  MUVE_ASSIGN_OR_RETURN(
      dataset.target_rows,
      storage::Filter(*table, stmt.where.get(), nullptr, &filter_stats));
  dataset.predicate_rows_filtered =
      filter_stats.rows_in - filter_stats.rows_out;
  dataset.chunks_skipped = filter_stats.chunks_skipped;
  dataset.setup_time_ms = filter_timer.ElapsedMillis();
  dataset.all_rows = storage::AllRows(table->num_rows());
  if (dataset.target_rows.empty()) {
    return common::Status::InvalidArgument(
        "RECOMMEND predicate selects no rows");
  }

  MUVE_ASSIGN_OR_RETURN(const SearchOptions options,
                        OptionsFromStatement(stmt));
  MUVE_ASSIGN_OR_RETURN(Recommender recommender,
                        Recommender::Create(std::move(dataset)));
  return recommender.Recommend(options);
}

common::Result<Recommendation> RecommendSql(const std::string& sql,
                                            const sql::Catalog& catalog) {
  MUVE_ASSIGN_OR_RETURN(sql::Statement stmt, sql::Parse(sql));
  if (stmt.kind != sql::Statement::Kind::kRecommend) {
    return common::Status::InvalidArgument("statement is not RECOMMEND");
  }
  return ExecuteRecommend(stmt.recommend, catalog);
}

}  // namespace muve::core
