# Empty compiler generated dependencies file for horizontal_search_test.
# This may be replaced when dependencies are built.
