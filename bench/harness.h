// Shared support for the figure-reproduction benchmarks.
//
// Each `fig*` binary regenerates one figure of the paper's evaluation
// (Section VI): it sweeps the figure's parameter, runs the figure's
// schemes through the Recommender, and prints the measured series as an
// aligned table — cost in milliseconds (the paper's wall-clock cost
// metric, Eq. 7), operation counts, and fidelity where the figure reports
// it.  Absolute numbers differ from the paper's Java/PostgreSQL testbed;
// the *shape* (who wins, by what factor, where crossovers fall) is the
// reproduction target, recorded in EXPERIMENTS.md.

#ifndef MUVE_BENCH_HARNESS_H_
#define MUVE_BENCH_HARNESS_H_

#include <string>
#include <utility>
#include <vector>

#include "core/recommender.h"
#include "core/search_options.h"

namespace muve::bench {

// ---------------------------------------------------------------------------
// Bench session: standardized flags + machine-readable artifacts.
//
// Every bench main starts with
//
//   int main(int argc, char** argv) {
//     muve::bench::InitBench(&argc, argv);
//     ...
//
// which parses the shared flags (consuming them from argv, so benches
// with their own flags — or google-benchmark flags — see only the rest):
//
//   --repeat=N        repetitions per configuration (overrides the
//                     MUVE_BENCH_REPS environment variable)
//   --json-out[=path] after the run, write a machine-readable artifact.
//                     Default path: <repo-root>/BENCH_<bench-name>.json
//                     where <bench-name> is the binary's basename.
//   --smoke           reduced workload (benches that support it; exposed
//                     via CurrentBenchOptions().smoke)
//
// The JSON schema is shared by every bench:
//
//   { "bench":   "<name>",
//     "git_sha": "<short sha or 'unknown'>",
//     "config":  { "repetitions": N, "simd": "<dispatch>", "smoke": bool,
//                  "args": "<original argv>" },
//     "results": [ ... ] }
//
// results[] entries come from two sources: every TablePrinter::Print call
// appends a {"type":"table", "title", "headers", "rows"} entry
// automatically, and benches with structured numeric output (e.g.
// kernel_bench) append {"type":"record", ...} entries via
// RecordJsonResult.  The artifact is written by FinishBench, which
// InitBench registers with atexit — benches need no explicit teardown.
// ---------------------------------------------------------------------------

struct BenchOptions {
  int repeat = 0;          // 0 = MUVE_BENCH_REPS / built-in default
  bool json = false;       // --json-out given
  std::string json_path;   // resolved output path (when json)
  bool smoke = false;      // --smoke given
};

// Parses and consumes the shared flags from argv (shifting the rest
// down and updating *argc).  Unknown flags are left in argv for the
// bench's own parsing.  Registers FinishBench with atexit.
const BenchOptions& InitBench(int* argc, char** argv);

// The options parsed by InitBench (defaults if InitBench was not called).
const BenchOptions& CurrentBenchOptions();

// Appends one {"type":"record", "label": ..., ...} entry to the JSON
// results[] array.  String fields are escaped; numeric fields are
// emitted as JSON numbers.  No-op unless --json-out is active.
void RecordJsonResult(
    const std::string& label,
    const std::vector<std::pair<std::string, std::string>>& str_fields,
    const std::vector<std::pair<std::string, double>>& num_fields);

// Writes the BENCH_<name>.json artifact if --json-out is active.
// Idempotent; called automatically at exit.
void FinishBench();

// `git rev-parse --short HEAD` at the repo root, or "unknown".
std::string GitShaOrUnknown();

// Minimal JSON string escaping (quotes, backslashes, control chars).
std::string JsonEscape(const std::string& text);

// Number of repetitions per configuration (the paper averages 10 runs).
// Priority: --repeat flag, then the MUVE_BENCH_REPS environment
// variable, then 5.
int Repetitions();

struct RunResult {
  double cost_ms = 0.0;         // mean TotalCostMillis over repetitions
  double cost_ms_median = 0.0;  // median over repetitions
  double cost_ms_min = 0.0;     // min over repetitions
  core::ExecStats stats;  // from the last repetition
  core::Recommendation recommendation;  // from the last repetition
};

// Runs `options` against `recommender` Repetitions() times after one
// unrecorded warmup run, reporting mean/median/min cost.  Aborts on
// configuration errors (benchmark misuse).
RunResult RunScheme(const core::Recommender& recommender,
                    const core::SearchOptions& options);

// Convenience constructors for the paper's scheme combinations.
core::SearchOptions LinearLinear();
core::SearchOptions HcLinear();
core::SearchOptions MuveLinear();
core::SearchOptions MuveMuve();

// Simple aligned-column table printer for figure series.  When the
// MUVE_BENCH_CSV_DIR environment variable names a directory, every
// printed table is also written there as <slugified-title>.csv for
// external plotting.
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> headers);

  void AddRow(std::vector<std::string> cells);
  // Renders to stdout with a title line (and exports CSV when enabled).
  void Print(const std::string& title) const;

 private:
  void MaybeExportCsv(const std::string& title) const;
  void MaybeRecordJson(const std::string& title) const;

  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

// Formats `value` ms with 3 decimals.
std::string Ms(double value);
// Formats a [0,1] fidelity as a percentage with 1 decimal.
std::string Pct(double fraction);

}  // namespace muve::bench

#endif  // MUVE_BENCH_HARNESS_H_
