#include "core/distance.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/simd/simd.h"
#include "common/string_util.h"

namespace muve::core {

namespace {

constexpr double kSmoothingEpsilon = 1e-9;

// The dense cores (squared-L2 / L1 / Linf / prefix-sum EMD) dispatch
// through the SIMD kernel table; the normalization wrappers stay here.

double Euclidean(const double* p, const double* q, size_t n) {
  const double sum = common::simd::ActiveKernels().squared_l2_diff(p, q, n);
  return std::sqrt(sum) / std::sqrt(2.0);
}

double Manhattan(const double* p, const double* q, size_t n) {
  return common::simd::ActiveKernels().abs_diff_sum(p, q, n) / 2.0;
}

double Chebyshev(const double* p, const double* q, size_t n) {
  return common::simd::ActiveKernels().max_abs_diff(p, q, n);
}

double EarthMovers(const double* p, const double* q, size_t n) {
  if (n <= 1) return 0.0;
  // 1-D EMD with unit ground distance between adjacent bins equals the
  // sum of absolute prefix-sum differences; max is (b - 1) (all mass moved
  // across the whole axis).
  const double total =
      common::simd::ActiveKernels().prefix_abs_diff_sum(p, q, n - 1);
  return total / static_cast<double>(n - 1);
}

// KL and JS are transcendental-bound (log per element); they keep the
// scalar loops.

double KlOneWay(const double* p, const double* q, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pi = p[i] + kSmoothingEpsilon;
    const double qi = q[i] + kSmoothingEpsilon;
    sum += pi * std::log(pi / qi);
  }
  return std::max(0.0, sum);
}

double KlSymmetric(const double* p, const double* q, size_t n) {
  const double j = KlOneWay(p, q, n) + KlOneWay(q, p, n);
  // Squash the unbounded Jeffreys divergence into [0, 1).
  return 1.0 - std::exp(-j / 2.0);
}

double JensenShannon(const double* p, const double* q, size_t n) {
  double sum = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const double pi = p[i] + kSmoothingEpsilon;
    const double qi = q[i] + kSmoothingEpsilon;
    const double mi = (pi + qi) / 2.0;
    sum += 0.5 * pi * std::log2(pi / mi) + 0.5 * qi * std::log2(qi / mi);
  }
  return std::clamp(sum, 0.0, 1.0);
}

}  // namespace

const char* DistanceKindName(DistanceKind kind) {
  switch (kind) {
    case DistanceKind::kEuclidean:
      return "EUCLIDEAN";
    case DistanceKind::kManhattan:
      return "MANHATTAN";
    case DistanceKind::kChebyshev:
      return "CHEBYSHEV";
    case DistanceKind::kEarthMovers:
      return "EMD";
    case DistanceKind::kKlDivergence:
      return "KL";
    case DistanceKind::kJensenShannon:
      return "JS";
  }
  return "?";
}

common::Result<DistanceKind> DistanceKindFromName(std::string_view name) {
  const std::string upper = common::ToUpper(name);
  if (upper == "EUCLIDEAN" || upper == "L2") return DistanceKind::kEuclidean;
  if (upper == "MANHATTAN" || upper == "L1" || upper == "TV") {
    return DistanceKind::kManhattan;
  }
  if (upper == "CHEBYSHEV" || upper == "LINF") return DistanceKind::kChebyshev;
  if (upper == "EMD" || upper == "EARTHMOVERS") {
    return DistanceKind::kEarthMovers;
  }
  if (upper == "KL" || upper == "KLDIVERGENCE") {
    return DistanceKind::kKlDivergence;
  }
  if (upper == "JS" || upper == "JENSENSHANNON") {
    return DistanceKind::kJensenShannon;
  }
  return common::Status::NotFound("unknown distance function: " +
                                  std::string(name));
}

double Distance(DistanceKind kind, const double* p, const double* q,
                size_t n) {
  if (n == 0) return 0.0;
  switch (kind) {
    case DistanceKind::kEuclidean:
      return Euclidean(p, q, n);
    case DistanceKind::kManhattan:
      return Manhattan(p, q, n);
    case DistanceKind::kChebyshev:
      return Chebyshev(p, q, n);
    case DistanceKind::kEarthMovers:
      return EarthMovers(p, q, n);
    case DistanceKind::kKlDivergence:
      return KlSymmetric(p, q, n);
    case DistanceKind::kJensenShannon:
      return JensenShannon(p, q, n);
  }
  return 0.0;
}

double Distance(DistanceKind kind, const std::vector<double>& p,
                const std::vector<double>& q) {
  MUVE_DCHECK(p.size() == q.size()) << "distribution length mismatch";
  return Distance(kind, p.data(), q.data(), p.size());
}

}  // namespace muve::core
