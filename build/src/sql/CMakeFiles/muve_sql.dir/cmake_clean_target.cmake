file(REMOVE_RECURSE
  "libmuve_sql.a"
)
