#include "core/exploration_session.h"

#include <gtest/gtest.h>

#include "core/recommender.h"
#include "test_util.h"

namespace muve::core {
namespace {

TEST(ExplorationSessionTest, MatchesLinearLinearForEveryWeightSetting) {
  auto session = ExplorationSession::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(session.ok());
  auto recommender = Recommender::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(recommender.ok());

  const Weights settings[] = {
      Weights::PaperDefault(), Weights{0.6, 0.2, 0.2},
      Weights{0.2, 0.6, 0.2},  Weights::Equal(),
      Weights::DeviationOnly(), Weights{0.05, 0.05, 0.9},
  };
  for (const Weights& weights : settings) {
    auto via_session = session->Recommend(weights, 4);
    ASSERT_TRUE(via_session.ok()) << weights.ToString();

    SearchOptions options;
    options.horizontal = HorizontalStrategy::kLinear;
    options.vertical = VerticalStrategy::kLinear;
    options.weights = weights;
    options.k = 4;
    auto via_recommender = recommender->Recommend(options);
    ASSERT_TRUE(via_recommender.ok());

    ASSERT_EQ(via_session->size(), via_recommender->views.size())
        << weights.ToString();
    for (size_t i = 0; i < via_session->size(); ++i) {
      EXPECT_NEAR((*via_session)[i].utility,
                  via_recommender->views[i].utility, 1e-12)
          << weights.ToString() << " rank " << i;
    }
  }
}

TEST(ExplorationSessionTest, ReRankingIsFreeAfterMaterialization) {
  auto session = ExplorationSession::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session->Recommend(Weights::PaperDefault(), 3).ok());
  const int64_t queries_after_first = session->stats().target_queries +
                                      session->stats().comparison_queries;
  EXPECT_GT(queries_after_first, 0);
  // Ten more weight settings: zero additional queries.
  for (int i = 1; i <= 10; ++i) {
    const double d = 0.05 * i;
    ASSERT_TRUE(
        session->Recommend(Weights{d, 0.5 - d / 2, 0.5 - d / 2}, 3).ok());
  }
  EXPECT_EQ(session->stats().target_queries +
                session->stats().comparison_queries,
            queries_after_first);
  EXPECT_EQ(session->materialized_distances(), 1u);
}

TEST(ExplorationSessionTest, PerDistanceMaterialization) {
  auto session = ExplorationSession::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session
                  ->Recommend(Weights::PaperDefault(), 2,
                              DistanceKind::kEuclidean)
                  .ok());
  EXPECT_EQ(session->materialized_distances(), 1u);
  ASSERT_TRUE(session
                  ->Recommend(Weights::PaperDefault(), 2,
                              DistanceKind::kEarthMovers)
                  .ok());
  EXPECT_EQ(session->materialized_distances(), 2u);
  // Re-using a distance does not re-materialize.
  ASSERT_TRUE(session
                  ->Recommend(Weights::Equal(), 2,
                              DistanceKind::kEarthMovers)
                  .ok());
  EXPECT_EQ(session->materialized_distances(), 2u);
}

TEST(ExplorationSessionTest, HandlesCategoricalDimensions) {
  data::Dataset ds = testutil::MakeToyDataset();
  ds.categorical_dimensions = {"grp"};
  auto session = ExplorationSession::Create(ds);
  ASSERT_TRUE(session.ok()) << session.status().ToString();
  auto rec = session->Recommend(Weights{0.8, 0.1, 0.1}, 10);
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  bool saw_categorical = false;
  for (const ScoredView& v : *rec) {
    if (v.view.dimension == "grp") {
      saw_categorical = true;
      EXPECT_DOUBLE_EQ(v.accuracy, 1.0);
    }
  }
  EXPECT_TRUE(saw_categorical);
}

TEST(ExplorationSessionTest, InvalidInputsRejected) {
  auto session = ExplorationSession::Create(testutil::MakeToyDataset());
  ASSERT_TRUE(session.ok());
  EXPECT_FALSE(session->Recommend(Weights{0.9, 0.9, 0.9}, 3).ok());
  EXPECT_FALSE(session->Recommend(Weights::PaperDefault(), 0).ok());
}

}  // namespace
}  // namespace muve::core
