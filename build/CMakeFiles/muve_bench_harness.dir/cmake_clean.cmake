file(REMOVE_RECURSE
  "CMakeFiles/muve_bench_harness.dir/bench/harness.cc.o"
  "CMakeFiles/muve_bench_harness.dir/bench/harness.cc.o.d"
  "libmuve_bench_harness.a"
  "libmuve_bench_harness.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
