// Equi-width binned aggregation (the paper's binned views, Definition 1).
//
// `SELECT A, F(M) FROM ... GROUP BY A NUMBER OF BINS b` partitions the
// numeric dimension A's range [lo, hi] into b equal-width, non-overlapping
// bins and aggregates the measure per bin.  Target and comparison views of
// the same candidate must share the binning range, so the range is an
// explicit input here (the caller derives it from the full database D_B).

#ifndef MUVE_STORAGE_BINNED_GROUP_BY_H_
#define MUVE_STORAGE_BINNED_GROUP_BY_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "storage/aggregate.h"
#include "storage/table.h"

namespace muve::storage {

// Result of a binned aggregation: one slot per bin, empty bins hold 0.
struct BinnedResult {
  double lo = 0.0;      // range start (inclusive)
  double hi = 0.0;      // range end (inclusive; last bin is closed)
  int num_bins = 0;
  std::vector<double> aggregates;  // size num_bins
  std::vector<size_t> row_counts;  // rows landing in each bin

  double bin_width() const {
    return num_bins == 0 ? 0.0 : (hi - lo) / static_cast<double>(num_bins);
  }
  // [start, end) of `bin` (last bin is closed at hi).
  double BinStart(int bin) const { return lo + bin_width() * bin; }
  double BinEnd(int bin) const { return lo + bin_width() * (bin + 1); }
};

// Maps `value` to its bin index for range [lo, hi] with `num_bins` bins.
// Values outside the range clamp to the first/last bin (robustness against
// floating-point edge effects; the recommendation pipeline always bins with
// the enclosing database range, so clamping is a no-op there).
int BinIndexFor(double value, double lo, double hi, int num_bins);

// Bins `rows` of `table` on `dimension` into `num_bins` bins over
// [lo, hi] and aggregates `measure` with `function`.  NULL handling
// matches GroupByAggregate.  Errors: non-numeric dimension, num_bins < 1,
// or hi < lo.
common::Result<BinnedResult> BinnedAggregate(
    const Table& table, const RowSet& rows, std::string_view dimension,
    std::string_view measure, AggregateFunction function, int num_bins,
    double lo, double hi);

}  // namespace muve::storage

#endif  // MUVE_STORAGE_BINNED_GROUP_BY_H_
