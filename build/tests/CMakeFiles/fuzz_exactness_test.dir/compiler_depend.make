# Empty compiler generated dependencies file for fuzz_exactness_test.
# This may be replaced when dependencies are built.
