// Figure 13: view refinement and view skipping approximations (DIAB).
//
// Paper findings to reproduce: Linear-Linear(S) is cheaper than plain
// Linear-Linear (one horizontal search per dimension instead of per
// view), and Linear-Linear(R) with def = 4 is cheapest (horizontal search
// only for the k views selected in the def-bin first pass).  Both hold
// ~95% fidelity.

#include <iostream>

#include "core/fidelity.h"
#include "core/recommender.h"
#include "data/diab.h"
#include "common/logging.h"
#include "common/string_util.h"
#include "harness.h"

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  using muve::bench::Ms;
  using muve::bench::Pct;
  using muve::bench::RunScheme;

  std::cout << "=== Figure 13: refinement and skipping approximations "
               "(DIAB) ===\n";
  const muve::data::Dataset dataset = muve::data::WithWorkloadSize(muve::data::MakeDiabDataset(), 3, 3, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  auto plain = muve::bench::LinearLinear();
  auto skipping = muve::bench::LinearLinear();
  skipping.approximation = muve::core::VerticalApproximation::kSkipping;
  auto refinement = muve::bench::LinearLinear();
  refinement.approximation = muve::core::VerticalApproximation::kRefinement;
  refinement.refinement_default_bins = 4;

  const auto r_plain = RunScheme(*recommender, plain);
  const auto r_skip = RunScheme(*recommender, skipping);
  const auto r_refine = RunScheme(*recommender, refinement);

  const auto& opt = r_plain.recommendation.views;
  muve::bench::TablePrinter table(
      {"scheme", "cost(ms)", "vs Linear-Linear", "fidelity",
       "fully probed"});
  table.AddRow({"Linear-Linear", Ms(r_plain.cost_ms), "-", Pct(1.0),
                std::to_string(r_plain.stats.fully_probed)});
  table.AddRow({"Linear-Linear(S)", Ms(r_skip.cost_ms),
                Pct(1.0 - r_skip.cost_ms / r_plain.cost_ms),
                Pct(muve::core::Fidelity(opt, r_skip.recommendation.views)),
                std::to_string(r_skip.stats.fully_probed)});
  table.AddRow(
      {"Linear-Linear(R), def=4", Ms(r_refine.cost_ms),
       Pct(1.0 - r_refine.cost_ms / r_plain.cost_ms),
       Pct(muve::core::Fidelity(opt, r_refine.recommendation.views)),
       std::to_string(r_refine.stats.fully_probed)});
  table.Print("Figure 13 — DIAB: vertical approximations (paper default "
              "weights, k = 5), mean of " +
              std::to_string(muve::bench::Repetitions()) + " runs");

  // Sensitivity of refinement to the `def` parameter (Section IV-C1 notes
  // a moderate number of bins works best).
  muve::bench::TablePrinter def_table({"def", "cost(ms)", "fidelity"});
  for (const int def : {2, 4, 8, 16, 32}) {
    auto options = refinement;
    options.refinement_default_bins = def;
    const auto r = RunScheme(*recommender, options);
    def_table.AddRow({std::to_string(def), Ms(r.cost_ms),
                      Pct(muve::core::Fidelity(opt, r.recommendation.views))});
  }
  def_table.Print("Refinement default-binning sensitivity (DIAB)");
  return 0;
}
