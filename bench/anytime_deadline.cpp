// Extension bench: the anytime curve of deadline-bounded search.
//
// Sweeps --deadline-ms across a budget ladder for the exhaustive
// Linear-Linear baseline and the pruned MuVE-MuVE scheme on the NBA
// workload, and reports what each budget buys: recovered utility as a
// fraction of the unbounded run's U(V_rec) (the paper's fidelity-style
// metric applied to the anytime contract), views fully searched, bin
// probes skipped, and elapsed wall-clock.  The interesting shape: the
// curve is concave — most of the recommendation's utility is recovered
// long before the full search finishes, and MuVE's pruning shifts the
// whole curve left (its early probes already chase the S-list's
// high-usability candidates).
//
// Elapsed time should track min(deadline, unbounded elapsed) closely:
// overshoot beyond a poll boundary means a missing boundary check
// somewhere in the strategy loops.

#include <algorithm>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "core/recommender.h"
#include "data/nba.h"
#include "harness.h"

namespace {

struct SchemeSpec {
  std::string label;
  muve::core::SearchOptions options;
};

}  // namespace

int main(int argc, char** argv) {
  muve::bench::InitBench(&argc, argv);
  std::cout << "=== Extension: anytime deadline sweep (NBA, 13 measures) "
               "===\n";
  const muve::data::Dataset dataset =
      muve::data::WithWorkloadSize(muve::data::MakeNbaDataset(), 3, 13, 3);
  auto recommender = muve::core::Recommender::Create(dataset);
  MUVE_CHECK(recommender.ok()) << recommender.status().ToString();

  std::vector<SchemeSpec> schemes;
  schemes.push_back({"Linear-Linear", muve::bench::LinearLinear()});
  schemes.push_back({"MuVE-MuVE", muve::bench::MuveMuve()});

  std::ostringstream json;
  json << "{\n  \"schemes\": [";
  bool first_scheme = true;

  for (const SchemeSpec& spec : schemes) {
    // Unbounded reference run: the utility every budget is measured
    // against, and the elapsed time that anchors the budget ladder.
    muve::core::SearchOptions unbounded = spec.options;
    muve::common::Stopwatch full_timer;
    auto full = recommender->Recommend(unbounded);
    const double full_elapsed = full_timer.ElapsedMillis();
    MUVE_CHECK(full.ok()) << full.status().ToString();
    const double full_utility = full->TotalUtility();

    // Budget ladder: fixed small steps plus fractions of the unbounded
    // elapsed, so the sweep adapts to the host's speed.
    std::vector<double> budgets = {0.0, 0.25, 0.5, 1.0, 2.0};
    for (const double frac : {0.1, 0.25, 0.5, 0.75, 1.0, 2.0}) {
      budgets.push_back(full_elapsed * frac);
    }
    std::sort(budgets.begin(), budgets.end());

    muve::bench::TablePrinter table(
        {"deadline(ms)", "elapsed(ms)", "recovered U", "fraction",
         "views done", "bins skipped", "degraded"});
    if (!first_scheme) json << ",";
    first_scheme = false;
    json << "\n    {\"scheme\": \"" << spec.label
         << "\", \"unbounded_elapsed_ms\": " << full_elapsed
         << ", \"unbounded_utility\": " << full_utility
         << ", \"points\": [";

    for (size_t b = 0; b < budgets.size(); ++b) {
      muve::core::SearchOptions options = spec.options;
      options.deadline_ms = budgets[b];
      muve::common::Stopwatch timer;
      auto rec = recommender->Recommend(options);
      const double elapsed = timer.ElapsedMillis();
      MUVE_CHECK(rec.ok()) << rec.status().ToString();
      const double recovered = rec->TotalUtility();
      const double fraction =
          full_utility > 0 ? recovered / full_utility : 1.0;
      const auto& comp = rec->stats.completeness;

      table.AddRow({muve::bench::Ms(budgets[b]), muve::bench::Ms(elapsed),
                    muve::common::FormatDouble(recovered, 3),
                    muve::common::FormatDouble(fraction * 100.0, 1) + "%",
                    std::to_string(comp.views_fully_searched),
                    std::to_string(comp.bins_pruned_by_deadline),
                    comp.degraded ? "yes" : "no"});
      json << (b == 0 ? "" : ", ") << "{\"deadline_ms\": " << budgets[b]
           << ", \"elapsed_ms\": " << elapsed
           << ", \"recovered_utility\": " << recovered
           << ", \"fraction\": " << fraction
           << ", \"views_fully_searched\": " << comp.views_fully_searched
           << ", \"bins_pruned\": " << comp.bins_pruned_by_deadline
           << ", \"degraded\": " << (comp.degraded ? "true" : "false")
           << "}";
    }
    json << "]}";
    table.Print(spec.label + ": utility recovered per deadline budget");
    std::cout << "\n";
  }
  json << "\n  ]\n}";
  std::cout << "JSON:\n" << json.str() << "\n";
  return 0;
}
