// The probe engine: executes the queries behind the deviation and
// accuracy objectives and charges their costs (Section III-C).
//
// Every search strategy funnels its objective evaluations through a
// ViewEvaluator so that
//   * costs are measured uniformly (C_t / C_c / C_d / C_a wall-clock into
//     ExecStats, observations into the CostModel driving MuVE's probe-
//     order priority rule), and
//   * objective values are deterministic — the same (view, bins) pair
//     always yields the same deviation/accuracy, which is what makes the
//     exact schemes (Linear, MuVE) provably return identical top-k sets.
//
// Caching policy (documented deviations from re-executing every query):
//   * The raw (non-binned) target series needed by the accuracy objective
//     is computed once per view and cached; its computation time is
//     charged to C_a on first use.
//   * Within one candidate (view, bins), the binned target result is
//     reused between the deviation and accuracy probes when
//     `reuse_target_within_candidate` is set (default on).  This is a
//     strict optimization that cannot change any objective value.

#ifndef MUVE_CORE_VIEW_EVALUATOR_H_
#define MUVE_CORE_VIEW_EVALUATOR_H_

#include <memory>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/exec_context.h"
#include "common/simd/aligned.h"
#include "core/cost_model.h"
#include "core/distance.h"
#include "core/exec_stats.h"
#include "core/utility.h"
#include "core/view.h"
#include "data/dataset.h"
#include "storage/base_histogram_cache.h"
#include "storage/binned_group_by.h"
#include "storage/fused_scan.h"

namespace muve::common {
class ThreadPool;
}  // namespace muve::common

namespace muve::core {

struct ViewEvaluatorOptions {
  DistanceKind distance = DistanceKind::kEuclidean;
  bool reuse_target_within_candidate = true;

  // Sampling-based approximation (the third optimization family cited in
  // Section II-A alongside sharing and pruning): when < 1, every probe
  // runs over a deterministic uniform row sample of D_Q and D_B of this
  // fraction, trading recommendation fidelity for proportionally cheaper
  // scans.  Objective values become estimates; fidelity is measured by
  // bench/ablate_sampling.
  double sample_fraction = 1.0;
  uint64_t sample_seed = 0x5A3D1E;

  // Base-histogram prefix-sum cache (the sharing optimization of Section
  // II-A, realized in storage/base_histogram_cache): when on, every
  // numeric-dimension probe whose aggregate is servable from moments
  // (SUM/COUNT/AVG/STD/VAR over a non-string measure) builds ONE
  // finest-granularity histogram per (row set, A, M) side and derives
  // each b-bin view by prefix-sum coarsening — O(d) fine bins instead of a
  // full row scan.  COUNT/SUM over integer measures are bit-identical to
  // the direct scan; AVG/STD/VAR agree to FP tolerance (see
  // tests/core/rebin_differential_test.cc, which pins this contract).
  //
  // Off by default at the evaluator level: unit tests of the direct path
  // assert exact query/row counters.  SearchOptions turns it on for
  // recommendation runs (`base_histogram_cache`, default true).
  bool use_base_histogram_cache = false;
  // The shared store.  The Recommender creates one per Recommend() call
  // and hands it to every pool worker's evaluator — safe because all
  // those evaluators probe identical row sets (same dataset, same
  // sampling draw).  When null and use_base_histogram_cache is set, the
  // evaluator creates a private cache of default size.
  std::shared_ptr<storage::BaseHistogramCache> base_cache;

  // Fused miss batching (the fused scan engine on the demand path): when
  // a probe misses the base cache, build the histograms of EVERY still-
  // missing eligible measure of that (dimension, side) in one fused
  // traversal instead of one scan per (A, M).  Identical histograms —
  // only the build schedule changes.  Off = per-pair builds (the PR 2
  // behavior), kept for differential tests.
  bool fused_miss_batching = true;

  // Rows per morsel for fused builds through this evaluator; 0 = engine
  // default.  Miss-batch builds run inline (no pool — they fire inside
  // worker lanes); PrewarmBaseHistograms takes the pool explicitly.
  size_t fused_morsel_size = 0;

  // Coalesce identical concurrent fused passes on the cache into one
  // single-flight scan (matters when `base_cache` is shared across
  // requests; see SearchOptions::fused_coalescing).  A parked pass is
  // charged as ExecStats::fused_coalesced instead of a build.
  bool fused_coalescing = true;

  // Execution control (deadline / cancellation / row budget), or nullptr
  // for an unbounded run.  The evaluator never aborts a probe mid-flight
  // — in-flight work completes so results stay well-formed — but it (a)
  // charges every row-set traversal into the context's row budget, (b)
  // skips prewarm sides once expired, and (c) lets an expired context
  // abort *fused* builds between morsels (the probe then falls back to a
  // direct single-pair build, so the answer is still produced).  The
  // strategies poll the same context at their own boundaries; see
  // common/exec_context.h.  Must outlive the evaluator.
  common::ExecContext* exec = nullptr;
};

class ViewEvaluator {
 public:
  using Options = ViewEvaluatorOptions;

  // `dataset` and `space` must outlive the evaluator.
  ViewEvaluator(const data::Dataset& dataset, const ViewSpace& space,
                Options options = {});

  // D(V_{i,b}) (Eq. 2): executes the binned target and comparison queries,
  // normalizes both into distributions, and computes the distance.
  // Charges C_t + C_c + C_d.  For a categorical dimension `bins` is
  // ignored: the target and comparison group-bys are aligned on the
  // comparison view's group set (the SeeDB setting).
  double EvaluateDeviation(const View& view, int bins);

  // A(V_{i,b}) (Eq. 4): executes the binned target query (and, once per
  // view, the raw target query) and computes the relative-SSE accuracy.
  // Charges C_t + C_a.  Categorical views have no binning approximation
  // and always score 1.0 (charged as a zero-cost accuracy evaluation).
  double EvaluateAccuracy(const View& view, int bins);

  // The candidate's usability objective: 1/bins for numeric dimensions
  // (Eq. 3), 1/(distinct groups) for categorical ones.
  double CandidateUsability(const View& view, int bins) const;

  // Shared-scan batch evaluation (SeeDB's shared-computation
  // optimization): scores deviation and accuracy for every view of a
  // same-dimension batch at bin count `bins` using ONE target scan, ONE
  // comparison scan, and (first time per view) one shared raw scan.
  // Values are identical to the per-view probes.  Numeric dimensions
  // only; all views must share one dimension.
  struct BatchScores {
    std::vector<double> deviations;
    std::vector<double> accuracies;
  };
  BatchScores EvaluateSharedBatch(const std::vector<View>& views, int bins);

  // MuVE's probe-order priority rule (Section IV-A3): true when
  //   alpha_A / (C_t + C_a)  >  alpha_D / (C_t + C_c + C_d)
  // under the current cost estimates.  With no observations yet the rule
  // falls back to deviation-first.
  bool AccuracyFirst(const Weights& weights) const;

  const ViewSpace& space() const { return space_; }
  const data::Dataset& dataset() const { return dataset_; }
  // The run's execution-control context (nullptr = unbounded).  The
  // strategies reach it through their evaluator so no search-function
  // signature had to change.
  common::ExecContext* exec() const { return options_.exec; }
  ExecStats& stats() { return stats_; }
  const ExecStats& stats() const { return stats_; }
  const CostModel& cost_model() const { return cost_model_; }

  // Fused cache prewarm: ONE fused pass per side (target rows, then
  // comparison rows) builds the base histogram of every cache-eligible
  // (A, M) pair that is not cached yet — the whole candidate space costs
  // two row-set traversals instead of |A| x |M| per-pair build scans.
  // The pass splits into morsels on `pool` when provided (must not be
  // mid-ParallelFor; the Recommender calls this before any strategy
  // fan-out).  Wall-clock is charged to C_t / C_c respectively and rows
  // to build_rows_scanned, but no per-probe cost-model observation is
  // recorded (a fused pass is not a representative probe) and no query
  // counters move — probe accounting stays comparable cache on/off.
  // No-op when the cache is off.
  void PrewarmBaseHistograms(common::ThreadPool* pool = nullptr);

  // Clears stats and cost observations (caches are kept: they hold pure
  // data, not accounting state).  Used between benchmark repetitions.
  void ResetAccounting();

  // Drops all caches as well; used when a fresh cold-cache run is needed.
  void ResetAll();

  // Row sets all probes scan: the dataset's own when sample_fraction is
  // 1, deterministic samples otherwise.  Exposed (read-only) so tests can
  // assert the sampling invariant sample(D_Q) = D_Q ∩ sample(D_B).
  const storage::RowSet& target_rows() const { return target_rows_; }
  const storage::RowSet& all_rows() const { return all_rows_; }

 private:
  struct RawSeries {
    std::vector<double> keys;
    std::vector<double> aggregates;
  };

  storage::BinnedResult ExecuteBinnedTarget(const View& view, int bins);
  storage::BinnedResult ExecuteBinnedComparison(const View& view, int bins);
  double EvaluateCategoricalDeviation(const View& view);
  const RawSeries& RawTargetSeries(const View& view);
  // Normalizes both aggregate series into the reusable aligned
  // distribution buffers (dist_p_ / dist_q_) and returns their distance —
  // the shared tail of every deviation probe.  No per-probe allocation.
  double NormalizedSeriesDistance(const std::vector<double>& target_aggs,
                                  const std::vector<double>& comparison_aggs);

  // Whether (view, any b) probes can be served by prefix-sum coarsening:
  // cache on, numeric dimension, moment-servable function, numeric
  // measure.  Ineligible probes (MIN/MAX, categorical, string measures)
  // keep using the direct scans.
  bool CacheEligible(const View& view) const;
  // The base histogram of `view`'s (A, M) pair over the target or
  // comparison row set, built through the shared cache.  Charges the
  // build's row scan into rows_scanned / base_builds on a miss and
  // base_cache_hits otherwise; wall-clock is charged by the caller (the
  // whole probe, build included, lands on the triggering cost kind).
  std::shared_ptr<const storage::BaseHistogram> BaseFor(const View& view,
                                                        bool target_side);
  // The cache-eligible (A, M) pairs of one side that are NOT cached yet,
  // as fused build requests.  `dimension` restricts to one dimension
  // (miss batching); nullptr covers the whole view space (prewarm).
  std::vector<storage::BaseHistogramCache::FusedPairRequest> MissingPairs(
      const std::string* dimension, bool target_side) const;
  // Runs one fused build over `request` and charges its accounting
  // (base_builds / fused_builds / rows_scanned / build_rows_scanned /
  // morsels_dispatched).  Wall-clock is charged by the caller.  An
  // aborted build (expired context, injected fault) charges nothing and
  // caches nothing; the caller's GetOrBuild then builds the single pair
  // it needs directly.
  void RunFusedBuild(
      storage::BaseHistogramCache::FusedHistogramBuildRequest request);
  // Row-scan charging: stats counters plus the exec context's budget.
  void ChargeProbeRows(int64_t rows);
  void ChargeBuildRows(int64_t rows);

  const data::Dataset& dataset_;
  const ViewSpace& space_;
  Options options_;
  storage::RowSet target_rows_;
  storage::RowSet all_rows_;
  ExecStats stats_;
  CostModel cost_model_;

  // Per-view raw target series cache (accuracy objective input).
  std::unordered_map<std::string, RawSeries> raw_cache_;
  // Base-histogram store (shared across workers when handed in via
  // Options::base_cache; private otherwise).  Null when the cache is off.
  std::shared_ptr<storage::BaseHistogramCache> base_cache_;
  // Reusable fused-scan arena (dictionaries, key arrays, morsel
  // partials): builds through this evaluator stop allocating per build.
  storage::FusedScanScratch fused_scratch_;
  // Reusable 64-byte-aligned distribution buffers for the deviation
  // probes (see NormalizedSeriesDistance); sized to the largest series
  // seen, never shrunk.
  common::simd::AlignedVector<double> dist_p_;
  common::simd::AlignedVector<double> dist_q_;
  // One-entry binned-target cache for within-candidate reuse.
  std::string cached_target_key_;
  int cached_target_bins_ = -1;
  std::optional<storage::BinnedResult> cached_target_;
};

}  // namespace muve::core

#endif  // MUVE_CORE_VIEW_EVALUATOR_H_
