# Empty dependencies file for exploration_session_test.
# This may be replaced when dependencies are built.
