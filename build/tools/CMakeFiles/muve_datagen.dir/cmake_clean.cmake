file(REMOVE_RECURSE
  "CMakeFiles/muve_datagen.dir/muve_datagen.cpp.o"
  "CMakeFiles/muve_datagen.dir/muve_datagen.cpp.o.d"
  "muve_datagen"
  "muve_datagen.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/muve_datagen.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
