// The MuVE recommender facade (Definition 2): given a dataset workload
// and a SearchH-SearchV configuration, return the top-k binned views by
// the hybrid multi-objective utility, plus the run's cost accounting.

#ifndef MUVE_CORE_RECOMMENDER_H_
#define MUVE_CORE_RECOMMENDER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "core/candidate.h"
#include "core/exec_stats.h"
#include "core/search_options.h"
#include "core/view.h"
#include "core/view_evaluator.h"
#include "data/dataset.h"

namespace muve::core {

struct Recommendation {
  std::vector<ScoredView> views;  // utility-descending, at most k entries
  ExecStats stats;
  std::string scheme;  // paper naming, e.g. "MuVE-MuVE"

  // Sum of recommended utilities (the fidelity metric's U(V_rec)).
  double TotalUtility() const;

  std::string ToString() const;
};

// One recommendation engine per dataset workload.  Construction enumerates
// the view space and derives dimension binning ranges; each Recommend()
// call runs with a fresh evaluator per pool worker (cold caches, zeroed
// cost accounting) so scheme costs are comparable.
//
// Threading model (options.num_threads): every vertical strategy runs on
// a shared work-stealing pool (common::ThreadPool) —
//   * vertical Linear (Linear-Linear, HC-Linear, MuVE-Linear): one
//     horizontal search per view, views dealt across workers.  Per-view
//     searches are independent (HC seeds by view index), so parallel
//     runs recommend exactly the serial views.  Linear and HC match
//     probe counters too; horizontal MuVE's probe-order priority rule
//     adapts to each evaluator's cost observations, so per-worker
//     evaluators may order the two probes differently than the serial
//     evaluator did — shifting the target/comparison query mix without
//     changing any per-view outcome.
//   * vertical MuVE: the round-robin's rounds stay sequential (they ARE
//     the algorithm), but all views inside one round evaluate in
//     parallel against a SharedTopKTracker threshold snapshot.  The
//     snapshot may lag, so parallel runs can prune *less* than serial
//     ones — never unsoundly more — and the top-k utilities are exactly
//     the serial ones.
//   * shared scans and view skipping: one per-dimension batch per task.
//   * view refinement: the first (def-bin) pass fans out per view; the
//     k-view refinement pass stays serial.
// Reported time components sum *work* across workers — the paper's
// total-cost metric (Eq. 7) — not elapsed wall-clock;
// ExecStats::num_workers records the pool width.
//
// Execution control (options.deadline_ms / cancel_token /
// max_rows_scanned): every Recommend() is *anytime* — when a bound trips
// mid-run the strategies stop starting probes at their next work
// boundary and the call still returns OK with the best top-k found so
// far; ExecStats::completeness reports how partial the run was
// (degraded flag, first cause as a StatusCode, views fully searched,
// bin probes skipped).  A run whose bounds never trip is bit-identical
// to the unbounded run (pinned by tests/core/deadline_test.cc).  Errors
// (invalid options, worker-task exceptions converted to kInternal) are
// the only non-OK returns.
class Recommender {
 public:
  static common::Result<Recommender> Create(data::Dataset dataset);

  common::Result<Recommendation> Recommend(const SearchOptions& options) const;

  const ViewSpace& space() const { return space_; }
  const data::Dataset& dataset() const { return dataset_; }

 private:
  Recommender(data::Dataset dataset, ViewSpace space)
      : dataset_(std::move(dataset)), space_(std::move(space)) {}

  data::Dataset dataset_;
  ViewSpace space_;
};

}  // namespace muve::core

#endif  // MUVE_CORE_RECOMMENDER_H_
