// muved — the long-lived MuVE recommendation server.
//
// One MuvedServer owns the shared state every request rides on: the
// dataset/recommender registry (a Recommender per (dataset, predicate),
// built once and shared by every session that asks for it) and the
// admission gate that caps how many Recommend() calls execute at once —
// excess requests queue FIFO-ish on a condition variable instead of
// oversubscribing the machine.  The gate is BOUNDED (max_queue waiters,
// queue_timeout_ms each, deadline-aware): overload is answered with a
// typed `unavailable` shed frame carrying retry_after_ms, never with an
// unbounded invisible backlog (DESIGN.md §14).
//
// Each accepted TCP connection IS one session: a dedicated handler
// thread with per-session defaults (dataset, k, alpha weights, scheme)
// that serves length-prefixed JSON request frames (server/protocol.h)
// strictly one at a time, in order.  Connections themselves are
// lifecycle-managed: idle_timeout_ms bounds silence between frames,
// frame_timeout_ms bounds a frame's arrival once started (slowloris),
// write_timeout_ms bounds a response write against a never-reading
// peer, and max_connections caps live sessions at accept time.
//
// Per-request execution control maps protocol fields straight onto the
// engine's SearchOptions: `deadline_ms` → SearchOptions::deadline_ms,
// `max_rows` → max_rows_scanned, and every connection's in-flight
// request holds a CancellationToken that Stop() trips so shutdown never
// waits out a long deadline.  Degraded (deadline/budget-tripped)
// requests still answer ok:true with the best partial top-k plus a
// completeness block — the protocol mirror of the engine's anytime
// contract.
//
// Shutdown (Stop(), or the "shutdown" op relayed through RequestStop):
//   1. stop accepting — the listen socket closes;
//   2. admission waiters are woken and answer `cancelled`;
//   3. every session socket gets SHUT_RD, so handlers finish the request
//      they are on (its response is still written) and then exit;
//   4. all handler threads are joined.
// In-flight work is drained, never abandoned mid-write.
//
// Binds 127.0.0.1 only: muved has no authentication and must not be
// exposed beyond the host.

#ifndef MUVE_SERVER_MUVED_SERVER_H_
#define MUVE_SERVER_MUVED_SERVER_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <list>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/recommender.h"
#include "server/json.h"
#include "storage/aggregate.h"
#include "storage/base_histogram_cache.h"
#include "storage/catalog.h"
#include "storage/selection_cache.h"

namespace muve::server {

struct ServerOptions {
  // TCP port to bind on 127.0.0.1; 0 picks an ephemeral port (read it
  // back via port() — the integration tests run this way).
  int port = 0;

  // Admission cap: Recommend() calls executing concurrently.  Requests
  // beyond the cap wait in the gate (the wait is reported back as
  // queue_ms when timings are requested).
  int max_concurrent = 4;

  // --- Overload control (DESIGN.md §14) ---
  //
  // The admission gate is BOUNDED: at most `max_queue` requests may wait
  // for a slot, each for at most `queue_timeout_ms`.  A request that
  // cannot be queued — the queue is full, its own deadline has already
  // expired, or its wait times out — is shed with a typed `unavailable`
  // error frame carrying `retry_after_ms` (protocol.h:
  // OverloadedResponse) instead of waiting unboundedly.  Under overload
  // the server degrades by answering fast instead of by growing an
  // invisible backlog.

  // Waiters allowed at the admission gate.  0 = no waiting room: any
  // request arriving while all slots are busy is shed immediately.
  int max_queue = 64;

  // Longest one request may wait at the gate before being shed.
  // 0 = wait indefinitely (the pre-overload-control behavior; the muved
  // tool sets a production default).
  int queue_timeout_ms = 0;

  // --- Connection lifecycle (DESIGN.md §14) ---
  //
  // Read-side poll() timeouts per connection (protocol.h FrameTimeouts).
  // All default 0 = off so library/test embedders keep blocking
  // semantics; the muved tool sets production defaults.

  // Longest a connected session may sit silent between frames before the
  // server drops it (reclaims its handler thread and fd).
  int idle_timeout_ms = 0;

  // Once a frame's first byte arrives, the budget for the rest of the
  // frame — the anti-slowloris bound.  A client trickling bytes or
  // stalling mid-frame is disconnected within this window.
  int frame_timeout_ms = 0;

  // Budget for writing one response frame.  A peer that never reads
  // (full socket buffer) cannot pin a handler thread past this.
  int write_timeout_ms = 0;

  // Accept-time cap on live connections.  An accept beyond the cap is
  // answered with one `unavailable` frame and closed (close-after-error)
  // so the client sees a typed shed, not a silent RST.  0 = unlimited.
  int max_connections = 0;

  // Upper bound a request's "threads" field may ask for.
  int max_request_threads = 8;

  // Distinct (dataset, predicate) recommenders kept resident; building
  // past the cap evicts the oldest so hostile predicate churn cannot
  // grow the registry without bound.
  size_t max_recommenders = 32;

  // Honor the {"op":"shutdown"} request (the loadgen/CI smoke path).
  // Off = only signals/Stop() end the server.
  bool allow_shutdown_op = true;

  // --- Cross-request shared execution (DESIGN.md §13) ---
  //
  // Three independently toggleable layers; all default on.  Every key
  // includes the dataset's epoch, so {"op":"invalidate"} makes stale
  // entries unreachable without coordinating with in-flight requests.

  // Canonical-predicate → selection-vector cache: identical (and
  // permuted-operand) WHERE clauses filter the table once per epoch.
  bool enable_selection_cache = true;

  // One base-histogram store per registry entry, handed to Recommend()
  // via SearchOptions::shared_base_cache: the second request on a
  // (dataset, predicate) prewarms from cache instead of rescanning, and
  // concurrent cold requests coalesce into single-flight fused scans.
  bool enable_shared_base_cache = true;

  // Canonical top-k response cache: an unbounded (no deadline_ms /
  // max_rows, no timings) recommend with the same resolved parameters is
  // answered byte-identically from the first response, zero rows
  // touched.
  bool enable_result_cache = true;

  // LRU cap on cached responses.
  size_t result_cache_entries = 256;
};

class MuvedServer {
 public:
  explicit MuvedServer(ServerOptions options);
  ~MuvedServer();

  MuvedServer(const MuvedServer&) = delete;
  MuvedServer& operator=(const MuvedServer&) = delete;

  // Binds, listens, and starts the accept thread.  Fails (kIoError) if
  // the port is taken.
  common::Status Start();

  // The bound port (valid after Start; resolves port 0 requests).
  int port() const { return port_; }

  // Asynchronous stop request: makes Wait() return.  Safe from any
  // thread, including a session handler (the "shutdown" op uses it).
  void RequestStop();

  // Blocks until RequestStop() (or a previous Stop()).
  void Wait();

  // Graceful shutdown; see the header comment.  Idempotent; blocks
  // until every handler thread is joined.
  void Stop();

  struct Counters {
    int64_t connections_accepted = 0;
    int64_t requests_served = 0;
    int64_t errors_returned = 0;
    int64_t recommends_executed = 0;
    // Cross-request sharing: recommends answered from / stored into the
    // result cache.  hits + recommends_executed counts every successful
    // recommend (a hit skips execution entirely).
    int64_t result_cache_hits = 0;
    int64_t result_cache_stores = 0;

    // Admission accounting.  Every recommend that reaches the gate is
    // *offered* and leaves through exactly one of the outcome counters —
    // the soak harness asserts the balance exactly:
    //
    //   requests_offered == requests_admitted + requests_shed_queue_full
    //                     + requests_shed_timeout + requests_shed_deadline
    //                     + requests_rejected_stopping
    int64_t requests_offered = 0;
    int64_t requests_admitted = 0;
    int64_t requests_shed_queue_full = 0;   // no waiting room left
    int64_t requests_shed_timeout = 0;      // waited queue_timeout_ms
    int64_t requests_shed_deadline = 0;     // own deadline already spent
    int64_t requests_rejected_stopping = 0;  // server shutting down
    int64_t queue_peak_depth = 0;           // high-water mark of waiters

    // Connection lifecycle accounting.
    int64_t connections_shed = 0;    // accept-time max_connections shed
    int64_t connections_reaped = 0;  // finished handlers joined+freed
    int64_t idle_timeouts = 0;       // sessions dropped for silence
    int64_t frame_timeouts = 0;      // sessions dropped mid-frame (slowloris)
    int64_t write_timeouts = 0;      // responses abandoned (peer not reading)

    // Catalog / incremental-ingest accounting.
    int64_t tables_created = 0;   // `create` ops that succeeded
    int64_t tables_dropped = 0;   // `drop` ops that succeeded
    int64_t appends_executed = 0;  // `append` ops that succeeded
    int64_t rows_ingested = 0;     // rows those appends added
    // Cached base histograms patched by delta merge instead of rebuilt,
    // and zone-map chunk skips while filtering appended rows through
    // resident target predicates.
    int64_t delta_merges = 0;
    int64_t ingest_chunks_skipped = 0;
  };
  Counters counters() const;

 private:
  struct Session;
  struct Connection;

  // One resident (dataset, canonical predicate, epoch) unit of shared
  // state: the recommender plus the base-histogram store every request
  // on this entry shares (SearchOptions::shared_base_cache).
  struct RegistryEntry {
    // dataset \x01 epoch \x01 canonical-predicate — the composed prefix
    // the selection and result caches also key under.
    std::string key;
    std::string dataset;
    std::shared_ptr<const core::Recommender> recommender;
    std::shared_ptr<storage::BaseHistogramCache> base_cache;
  };

  void AcceptLoop();
  void HandleConnection(Connection* conn);
  JsonValue Dispatch(const JsonValue& request, Session* session,
                     Connection* conn);
  JsonValue HandlePing(const JsonValue& request);
  JsonValue HandleUse(const JsonValue& request, Session* session);
  JsonValue HandleDefaults(const JsonValue& request, Session* session);
  JsonValue HandleRecommend(const JsonValue& request, Session* session,
                            Connection* conn);
  JsonValue HandleHealth(const JsonValue& request);
  JsonValue HandleStats(const JsonValue& request);
  JsonValue HandleInvalidate(const JsonValue& request);
  JsonValue HandleCreate(const JsonValue& request);
  JsonValue HandleAppend(const JsonValue& request);
  JsonValue HandleDrop(const JsonValue& request);
  JsonValue HandleShutdown(Session* session);

  // The exploration workload attached to a catalog table: which columns
  // are dimensions/measures, the aggregate functions in play, and the
  // table's default analyst predicate ("" = none; recommends must then
  // pass one).  Built-ins carry their paper workloads; `create` derives
  // one from the request.
  struct WorkloadSpec {
    std::vector<std::string> dimensions;
    std::vector<std::string> measures;
    std::vector<storage::AggregateFunction> functions;
    std::vector<std::string> categorical_dimensions;
    std::string default_predicate;
  };

  // Registers `ds` (table + workload) into the catalog; used for the
  // built-ins (toy|nba|diab) at construction and by `create`.
  common::Status RegisterDataset(const std::string& name,
                                 storage::Table table, WorkloadSpec spec);

  // Purges registry entries / cached results / shared base caches of
  // `dataset`.  `keep_bases` leaves base caches resident (the append
  // path: they are about to be delta-patched and stay valid under the
  // preserved base_epoch).
  void PurgeDataset(const std::string& dataset, bool keep_bases);

  // Registry: returns (building on first use) the shared recommender for
  // catalog table `dataset` filtered by `predicate` ("" = the table's
  // default analyst predicate).  Lookup is by CANONICAL predicate under
  // the table's current data_epoch, so operand-permuted spellings of one
  // WHERE clause share an entry.
  common::Result<RegistryEntry> GetRecommender(const std::string& dataset,
                                               const std::string& predicate);

  // The base-histogram store shared by every epoch-generation of one
  // (dataset, canonical predicate): keyed under the table's base_epoch,
  // which Catalog::Append PRESERVES — cached bases survive appends (they
  // are delta-patched) while data_epoch-keyed state invalidates.
  std::shared_ptr<storage::BaseHistogramCache> GetOrCreateBaseCache(
      const std::string& dataset, uint64_t base_epoch,
      const std::string& canonical, const std::string& predicate_sql);

  // Result cache (epoch-keyed canonical responses, LRU).
  bool LookupResult(const std::string& key, JsonValue* response);
  void StoreResult(const std::string& key, const JsonValue& response);

  // How one request left the admission gate (see Counters for the exact
  // balance invariant these map onto).
  enum class Admission {
    kAdmitted,
    kShedQueueFull,     // max_queue waiters already queued
    kShedDeadline,      // the request's own deadline had already expired
    kShedQueueTimeout,  // waited queue_timeout_ms without a slot freeing
    kRejectedStopping,  // server shutting down
  };

  // Bounded, deadline-aware admission.  `remaining_deadline_ms` is the
  // request's unspent deadline budget (< 0 = unbounded): a request that
  // would have to queue with none left is shed instead of parked.  On
  // kAdmitted, `queue_ms` gets the wait and `queue_depth` the number of
  // waiters still queued at admit time.  Each outcome has already been
  // counted into Counters when this returns.
  Admission AdmitRequest(double remaining_deadline_ms, double* queue_ms,
                         int64_t* queue_depth);
  void ReleaseRequest();

  // RAII release of one admitted slot: HandleRecommend holds one of
  // these across Recommend() so a throw (failpoint-injected or real)
  // between admission and response cannot leak the slot.
  class SlotGuard {
   public:
    explicit SlotGuard(MuvedServer* server) : server_(server) {}
    ~SlotGuard() {
      if (server_ != nullptr) server_->ReleaseRequest();
    }
    SlotGuard(const SlotGuard&) = delete;
    SlotGuard& operator=(const SlotGuard&) = delete;

   private:
    MuvedServer* server_;
  };

  // The retry_after_ms hint stamped into every overloaded frame.
  int64_t RetryAfterHintMs() const;

  // Milliseconds since Start() (0 before it).
  int64_t UptimeMs() const;

  const ServerOptions options_;
  int port_ = 0;
  int listen_fd_ = -1;

  std::thread accept_thread_;
  std::atomic<bool> stopping_{false};

  // Stop()/Wait() coordination.
  std::mutex stop_mu_;
  std::condition_variable stop_cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;

  // Live connections (handler threads + their sockets).
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<Connection>> conns_;

  // Admission gate.  `queued_` counts waiters parked on gate_cv_; it is
  // what max_queue bounds.
  std::mutex gate_mu_;
  std::condition_variable gate_cv_;
  int in_flight_ = 0;
  int queued_ = 0;

  // Set by Start(); UptimeMs() and the health/stats ops read it.
  std::chrono::steady_clock::time_point started_at_{};
  bool started_ = false;

  // Registry entries, insertion-ordered for oldest-first eviction.
  std::mutex registry_mu_;
  std::vector<RegistryEntry> registry_;

  // The table store: named tables with MVCC snapshots and per-table
  // epochs (storage/catalog.h).  data_epoch bumps on append/invalidate
  // and keys the registry + selection/result caches; base_epoch keys the
  // base-histogram stores and survives appends.
  storage::Catalog catalog_;

  // Per-table workload specs, keyed by table name.
  std::mutex specs_mu_;
  std::unordered_map<std::string, WorkloadSpec> specs_;

  // Shared base-histogram stores, keyed dataset \x01 base_epoch \x01
  // canonical-predicate.  The stored predicate SQL is what the append
  // path rebinds to filter appended rows for the target side.
  struct SharedBaseCache {
    std::shared_ptr<storage::BaseHistogramCache> cache;
    std::string dataset;
    std::string predicate_sql;  // "" = no target-side predicate
  };
  std::mutex base_caches_mu_;
  std::unordered_map<std::string, SharedBaseCache> base_caches_;

  // Serializes `append` ops server-wide: catalog publish + delta patch
  // form one unit, so patches land in publish order and never interleave
  // (recommends are unaffected — they read snapshots, never this lock).
  std::mutex ingest_mu_;

  // Cross-request caches.  The selection cache is its own shard-locked
  // store; the result cache is a small mutex-guarded LRU of canonical
  // JSON responses (a stored JsonValue re-serializes to the exact bytes
  // of the first response — the writer is canonical).
  storage::SelectionCache selection_cache_;
  std::mutex results_mu_;
  std::list<std::string> results_lru_;  // front = most recently used
  struct ResultEntry {
    JsonValue response;
    std::list<std::string>::iterator lru_it;
  };
  std::unordered_map<std::string, ResultEntry> results_;

  mutable std::mutex counters_mu_;
  Counters counters_;
};

}  // namespace muve::server

#endif  // MUVE_SERVER_MUVED_SERVER_H_
