#include "storage/value.h"

#include <gtest/gtest.h>

namespace muve::storage {
namespace {

TEST(ValueTest, Types) {
  EXPECT_EQ(Value().type(), ValueType::kNull);
  EXPECT_EQ(Value(int64_t{3}).type(), ValueType::kInt64);
  EXPECT_EQ(Value(3.5).type(), ValueType::kDouble);
  EXPECT_EQ(Value("hi").type(), ValueType::kString);
  EXPECT_TRUE(Value().is_null());
  EXPECT_TRUE(Value(int64_t{1}).is_numeric());
  EXPECT_TRUE(Value(1.0).is_numeric());
  EXPECT_FALSE(Value("x").is_numeric());
}

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value(int64_t{1}), Value(1.0));
  EXPECT_EQ(Value(1.0), Value(int64_t{1}));
  EXPECT_NE(Value(int64_t{1}), Value(1.5));
}

TEST(ValueTest, NullEquality) {
  EXPECT_EQ(Value::Null(), Value::Null());
  EXPECT_NE(Value::Null(), Value(int64_t{0}));
  EXPECT_NE(Value(""), Value::Null());
}

TEST(ValueTest, OrderingWithinNumerics) {
  EXPECT_LT(Value(int64_t{1}), Value(2.5));
  EXPECT_LT(Value(-1.0), Value(int64_t{0}));
  EXPECT_FALSE(Value(int64_t{2}) < Value(int64_t{2}));
}

TEST(ValueTest, OrderingAcrossKinds) {
  // null < numerics < strings.
  EXPECT_LT(Value::Null(), Value(int64_t{-100}));
  EXPECT_LT(Value(int64_t{100}), Value("a"));
  EXPECT_LT(Value("a"), Value("b"));
}

TEST(ValueTest, EqualValuesHashEqual) {
  EXPECT_EQ(Value(int64_t{7}).Hash(), Value(7.0).Hash());
  EXPECT_EQ(Value("abc").Hash(), Value("abc").Hash());
}

TEST(ValueTest, ToDouble) {
  EXPECT_DOUBLE_EQ(*Value(int64_t{4}).ToDouble(), 4.0);
  EXPECT_DOUBLE_EQ(*Value(2.5).ToDouble(), 2.5);
  EXPECT_FALSE(Value("x").ToDouble().ok());
  EXPECT_FALSE(Value::Null().ToDouble().ok());
}

TEST(ValueTest, ToStringRendering) {
  EXPECT_EQ(Value::Null().ToString(), "");
  EXPECT_EQ(Value(int64_t{-3}).ToString(), "-3");
  EXPECT_EQ(Value("hey").ToString(), "hey");
  EXPECT_EQ(Value(2.0).ToString(), "2.0");
  EXPECT_EQ(Value(2.5).ToString(), "2.500000");
}

TEST(ValueTest, TypedAccessors) {
  EXPECT_EQ(Value(int64_t{9}).AsInt64(), 9);
  EXPECT_DOUBLE_EQ(Value(1.5).AsDoubleExact(), 1.5);
  EXPECT_EQ(Value("s").AsString(), "s");
}

}  // namespace
}  // namespace muve::storage
