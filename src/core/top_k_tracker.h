// Top-k tracking with the paper's distinct-view constraint (Section IV-B):
// the recommendation list holds at most one binned view per non-binned
// view, so the tracker keeps the best scored candidate *per view* and
// exposes the k-th best of those as the vertical pruning threshold.
//
// `TopKTracker` is the single-threaded core; `SharedTopKTracker` wraps it
// for the thread pool: updates are mutex-guarded, while the pruning
// threshold is re-published into an atomic after every update so workers
// read a wait-free snapshot.  The snapshot may lag (it is never *ahead*),
// which keeps parallel pruning sound: the threshold only grows, so any
// candidate pruned against a stale value would also be pruned against the
// current one.

#ifndef MUVE_CORE_TOP_K_TRACKER_H_
#define MUVE_CORE_TOP_K_TRACKER_H_

#include <atomic>
#include <limits>
#include <mutex>
#include <optional>
#include <set>
#include <vector>

#include "core/candidate.h"

namespace muve::core {

class TopKTracker {
 public:
  TopKTracker(int k, size_t num_views)
      : k_(k), bests_(num_views) {}

  // Records `scored` as view `view_index`'s candidate; keeps the better
  // of old and new.
  void Update(size_t view_index, const ScoredView& scored);

  // Lower bound a candidate must beat to change the final top-k: the k-th
  // largest per-view best utility, or -infinity while fewer than k views
  // have a fully-evaluated best (pruning would be unsound earlier).
  double Threshold() const;

  // Number of views with a best so far.
  size_t num_views_scored() const { return utilities_.size(); }

  // The current top-k per-view bests, utility-descending.  Ties break by
  // ascending view index (then ascending bin count), which makes the
  // ranking a pure function of the per-view bests — the order candidates
  // were recorded in (serial sweep or parallel merge) cannot leak into
  // the output.
  std::vector<ScoredView> TopK() const;

 private:
  int k_;
  std::vector<std::optional<ScoredView>> bests_;
  std::multiset<double> utilities_;  // per-view best utilities
};

// Thread-safe wrapper used by every parallel vertical strategy: one
// shared instance per recommendation run, updated by all pool workers.
class SharedTopKTracker {
 public:
  SharedTopKTracker(int k, size_t num_views)
      : tracker_(k, num_views),
        threshold_(-std::numeric_limits<double>::infinity()) {}

  void Update(size_t view_index, const ScoredView& scored) {
    std::lock_guard<std::mutex> lock(mu_);
    tracker_.Update(view_index, scored);
    threshold_.store(tracker_.Threshold(), std::memory_order_release);
  }

  // Wait-free conservative snapshot of the pruning threshold (see file
  // comment); monotone non-decreasing over the run.
  double Threshold() const {
    return threshold_.load(std::memory_order_acquire);
  }

  size_t num_views_scored() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tracker_.num_views_scored();
  }

  std::vector<ScoredView> TopK() const {
    std::lock_guard<std::mutex> lock(mu_);
    return tracker_.TopK();
  }

 private:
  mutable std::mutex mu_;
  TopKTracker tracker_;
  std::atomic<double> threshold_;
};

}  // namespace muve::core

#endif  // MUVE_CORE_TOP_K_TRACKER_H_
